"""Declarative world builder for user-defined scenarios.

The calibrated case study (:mod:`repro.testbed.build`) reproduces the
paper; :class:`WorldBuilder` is for everyone else — model *your* campus,
*your* providers, *your* policies, and run the same planners, selectors
and benchmarks against it:

    b = WorldBuilder(seed=7)
    b.add_site("eth", 47.3769, 8.5417, "Zurich")
    edu = b.autonomous_system("eth-campus")
    geant = b.autonomous_system("geant")
    b.customer(provider=geant, customer=edu)
    client = b.campus("eth", asn=edu, site="eth", access_bps=mbps(100))
    ...
    world = b.build()

The builder handles the bookkeeping the raw APIs expect: address
allocation, border routers, inter-AS link wiring, DNS registration, and
validation at ``build()`` time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cloud.provider import CloudProvider, UploadProtocol
from repro.core.world import World
from repro.errors import TopologyError
from repro.geo.coords import GeoPoint
from repro.geo.sites import Site, SiteKind, SITES, register_site
from repro.net.address import PrefixAllocator
from repro.net.asn import ASGraph, AutonomousSystem
from repro.net.crosstraffic import CrossTrafficConfig, start_sources
from repro.net.dns import DnsResolver
from repro.net.engine import NetworkEngine
from repro.net.policy import PbrRule, PolicyTable
from repro.net.routing import Router
from repro.net.tcp import TcpModel
from repro.net.topology import Link, Node, NodeKind, Topology
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer
from repro.units import mbps, ms

__all__ = ["WorldBuilder"]


class WorldBuilder:
    """Accumulates a scenario, then wires and validates a :class:`World`."""

    def __init__(self, seed: int = 0, trace: bool = False):
        self.seed = seed
        self.trace = trace
        self._asn_counter = itertools.count(64512)  # private ASN range
        self._prefix_counter = itertools.count(0)
        self.topology = Topology()
        self.as_graph = ASGraph()
        self.policy = PolicyTable()
        self._allocators: Dict[int, PrefixAllocator] = {}
        self._hosts: Dict[str, str] = {}
        self._dtns: List[Tuple[str, str, Optional[float], Optional[int]]] = []
        self._providers: List[CloudProvider] = []
        self._cross: List[CrossTrafficConfig] = []
        self._built = False

    # -- identity helpers ------------------------------------------------------

    def add_site(self, key: str, lat: float, lon: float, city: str,
                 kind: SiteKind = SiteKind.CLIENT) -> Site:
        """Register a geographic site usable by campuses/providers."""
        return register_site(Site(key, kind, GeoPoint(lat, lon), city))

    def autonomous_system(self, name: str, number: Optional[int] = None) -> int:
        """Declare an AS; returns its number (auto-assigned if omitted)."""
        if number is None:
            number = next(self._asn_counter)
        self.as_graph.add_as(AutonomousSystem(number, name))
        self._allocators[number] = PrefixAllocator(
            f"10.{next(self._prefix_counter) % 200 + 1}.0.0/16"
        )
        return number

    def _addr(self, asn: int) -> str:
        alloc = self._allocators.get(asn)
        if alloc is None:
            raise TopologyError(f"AS{asn} was not declared via autonomous_system()")
        return alloc.host()

    # -- relationships & policy -------------------------------------------------

    def customer(self, provider: int, customer: int) -> "WorldBuilder":
        self.as_graph.add_customer(provider, customer)
        return self

    def peer(self, a: int, b: int) -> "WorldBuilder":
        self.as_graph.add_peering(a, b)
        return self

    def export_filter(self, announcer: int, neighbor: int, allow) -> "WorldBuilder":
        self.as_graph.set_export_filter(announcer, neighbor, allow)
        return self

    def pbr(self, node: str, out_link: str, src_prefixes: Sequence[str] = (),
            dest_asns: Sequence[int] = (), description: str = "") -> "WorldBuilder":
        self.policy.install(PbrRule(
            node=node, out_link=out_link,
            src_prefixes=frozenset(src_prefixes),
            dest_asns=frozenset(dest_asns),
            description=description,
        ))
        return self

    # -- structure ---------------------------------------------------------------

    def router(self, name: str, asn: int, site: str = "",
               hostname: str = "", responds_to_traceroute: bool = True,
               firewall_per_flow_bps: Optional[float] = None) -> str:
        """Add a router (or middlebox, when it has a firewall cap)."""
        kind = NodeKind.MIDDLEBOX if firewall_per_flow_bps else NodeKind.ROUTER
        self.topology.add_node(Node(
            name, kind, asn, self._addr(asn), hostname=hostname,
            site_name=site, responds_to_traceroute=responds_to_traceroute,
            firewall_per_flow_bps=firewall_per_flow_bps,
        ))
        return name

    def campus(self, site_key: str, asn: int, access_bps: float,
               site: Optional[str] = None, host_name: Optional[str] = None,
               access_delay_s: float = ms(0.2)) -> str:
        """A client campus: one host behind one border router.

        Registers the host under *site_key* in ``world.hosts`` so planners
        can address it by site.
        """
        site = site if site is not None else site_key
        if site not in SITES:
            raise TopologyError(
                f"unknown site {site!r}; call add_site() first"
            )
        host = host_name or f"{site_key}-host"
        border = f"{site_key}-border"
        self.topology.add_node(Node(host, NodeKind.HOST, asn, self._addr(asn),
                                    site_name=site))
        self.topology.add_node(Node(border, NodeKind.ROUTER, asn, self._addr(asn),
                                    site_name=site))
        self.topology.add_link(Link(host, border, capacity_bps=access_bps,
                                    delay_s=access_delay_s))
        self._hosts[site_key] = host
        return host

    def link(self, a: str, b: str, capacity_bps: float, delay_s: float,
             loss: float = 0.0, policer_bps: Optional[Dict[str, float]] = None,
             name: str = "") -> str:
        link = Link(a, b, capacity_bps=capacity_bps, delay_s=delay_s, loss=loss,
                    policer_bps=policer_bps or {}, name=name)
        self.topology.add_link(link)
        return link.name

    def dtn(self, site_key: str, asn: int, attach_to: str, uplink_bps: float,
            site: Optional[str] = None, capacity_bytes: Optional[float] = None,
            max_sessions: Optional[int] = None,
            uplink_delay_s: float = ms(0.2)) -> str:
        """A data-transfer node attached to an existing router."""
        site = site if site is not None else site_key
        host = f"{site_key}-dtn"
        self.topology.add_node(Node(host, NodeKind.HOST, asn, self._addr(asn),
                                    site_name=site))
        self.topology.add_link(Link(host, attach_to, capacity_bps=uplink_bps,
                                    delay_s=uplink_delay_s))
        self._hosts[site_key] = host
        self._dtns.append((site_key, host, capacity_bytes, max_sessions))
        return host

    def provider(self, name: str, asn: int, attach_to: str, protocol: UploadProtocol,
                 site: str, display_name: str = "", peering_bps: float = mbps(1000),
                 peering_delay_s: float = ms(1)) -> CloudProvider:
        """A cloud provider: one frontend host peered off *attach_to*.

        The caller is responsible for the AS relationship between the
        provider's AS and the rest of the graph (usually ``peer``).
        """
        frontend = f"{name}-frontend"
        self.topology.add_node(Node(frontend, NodeKind.HOST, asn, self._addr(asn),
                                    hostname=f"storage.{name}.example",
                                    site_name=site))
        self.topology.add_link(Link(attach_to, frontend, capacity_bps=peering_bps,
                                    delay_s=peering_delay_s))
        provider = CloudProvider(
            name=name,
            display_name=display_name or name,
            api_hostname=f"api.{name}.example",
            auth_hostname=f"auth.{name}.example",
            frontend_nodes=[frontend],
            protocol=protocol,
        )
        self._providers.append(provider)
        return provider

    def add_pop(self, provider: CloudProvider, asn: int, attach_to: str, site: str,
                peering_bps: float = mbps(1000), peering_delay_s: float = ms(1)) -> str:
        """Add another point of presence to *provider*.

        Geo-DNS steers each client to its nearest POP, so multi-POP
        providers reproduce the paper's observation that vendors deploy
        POPs "to provide better network performance to the clients".
        """
        if provider not in self._providers:
            raise TopologyError(f"provider {provider.name!r} was not created by this builder")
        index = len(provider.frontend_nodes) + 1
        frontend = f"{provider.name}-frontend{index}"
        self.topology.add_node(Node(frontend, NodeKind.HOST, asn, self._addr(asn),
                                    hostname=f"storage{index}.{provider.name}.example",
                                    site_name=site))
        self.topology.add_link(Link(attach_to, frontend, capacity_bps=peering_bps,
                                    delay_s=peering_delay_s))
        provider.frontend_nodes.append(frontend)
        return frontend

    def cross_traffic(self, link_name: str, from_node: str, utilization: float = 0.0,
                      mean_flow_bytes: float = 4e6,
                      elephant_rate_bps: Optional[float] = None,
                      elephant_on_s: float = 30.0, elephant_off_s: float = 30.0,
                      elephant_flows: int = 1) -> "WorldBuilder":
        self._cross.append(CrossTrafficConfig(
            link_name=link_name, from_node=from_node, utilization=utilization,
            mean_flow_bytes=mean_flow_bytes, elephant_rate_bps=elephant_rate_bps,
            elephant_on_s=elephant_on_s, elephant_off_s=elephant_off_s,
            elephant_flows=elephant_flows,
        ))
        return self

    # -- assembly --------------------------------------------------------------

    def build(self) -> World:
        """Validate everything and return the wired :class:`World`."""
        if self._built:
            raise TopologyError("WorldBuilder.build() may only be called once")
        self._built = True
        self.topology.validate()
        self.as_graph.validate()

        sim = Simulator()
        rng = RngRegistry(self.seed)
        tracer = Tracer(enabled=self.trace)
        router = Router(self.topology, self.as_graph, self.policy)
        dns = DnsResolver(self.topology)
        engine = NetworkEngine(sim, self.topology, tracer=tracer)
        world = World(
            sim=sim, topology=self.topology, as_graph=self.as_graph,
            policy=self.policy, router=router, dns=dns, engine=engine,
            tcp=TcpModel(), rng=rng, tracer=tracer, seed=self.seed,
        )
        for provider in self._providers:
            world.add_provider(provider)
        world.hosts.update(self._hosts)
        for site_key, host, capacity, max_sessions in self._dtns:
            world.add_dtn(site_key, host, capacity, max_sessions)
        if self._cross:
            start_sources(self._cross, sim, engine, rng.stream)
        return world
