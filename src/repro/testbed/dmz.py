"""Science DMZ scenario: firewall bottlenecks and their bypass.

The paper's future work — "expand the functionality of our routing
detours to deal with firewall bottlenecks (like Science DMZ)" — and its
citation [2] (Dart et al., SC'13) motivate this variant of the testbed:

* the UAlberta campus firewall (``ww-fw.cs.ualberta.ca``, visible in the
  paper's Fig. 6 traceroute) gets a realistic **per-flow stateful
  inspection cap**: campus firewalls are provisioned for many small
  flows, and a single bulk transfer through one tops out far below the
  WAN capacity;
* a second DTN, ``ualberta-dtn-dmz``, hangs directly off the campus
  core — *outside* the firewall — the Science DMZ design pattern.

Detours via the in-firewall DTN inherit the cap on their second leg;
detours via the DMZ DTN do not.
"""

from __future__ import annotations

from typing import Optional

from repro.core.world import World
from repro.net.topology import Link, Node, NodeKind
from repro.testbed.build import AS_NUMBERS, build_case_study
from repro.testbed.params import CaseStudyParams
from repro.units import mbps, ms

__all__ = ["build_science_dmz_world", "DMZ_DTN_SITE"]

#: Site key under which the DMZ DTN registers in ``world.dtns``.
DMZ_DTN_SITE = "ualberta-dmz"


def build_science_dmz_world(
    seed: int = 0,
    per_flow_cap_bps: float = mbps(20),
    params: Optional[CaseStudyParams] = None,
    cross_traffic: bool = True,
    trace: bool = False,
) -> World:
    """The case-study world with a firewall cap and a Science DMZ DTN.

    Parameters
    ----------
    per_flow_cap_bps:
        Stateful-inspection throughput ceiling per flow transiting the
        UAlberta campus firewall.  20 Mbit/s is a typical mid-2010s
        campus appliance figure for a single bulk TCP flow.
    """
    if per_flow_cap_bps <= 0:
        raise ValueError("firewall cap must be positive")
    world = build_case_study(seed=seed, params=params, trace=trace,
                             cross_traffic=cross_traffic)

    # 1. the campus firewall now inspects (and throttles) bulk flows
    world.topology.node("ualberta-fw").firewall_per_flow_bps = per_flow_cap_bps

    # 2. a DTN in the Science DMZ: attached to the campus core, in front
    #    of the firewall, mirroring the Dart et al. design pattern
    world.topology.add_node(Node(
        "ualberta-dtn-dmz", NodeKind.HOST, AS_NUMBERS["ualberta"],
        "129.128.11.10", hostname="dtn-dmz.scidmz.ualberta.ca",
        site_name="ualberta",
    ))
    world.topology.add_link(Link(
        "ualberta-core", "ualberta-dtn-dmz",
        capacity_bps=mbps(1000), delay_s=ms(0.2),
    ))
    world.hosts[DMZ_DTN_SITE] = "ualberta-dtn-dmz"
    world.add_dtn(DMZ_DTN_SITE, "ualberta-dtn-dmz")

    # topology changed after the router was built
    world.router.invalidate()
    return world
