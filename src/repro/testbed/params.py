"""Calibration parameters for the case-study testbed.

Every rate below is derived from the paper's measurements (October and
November 2015), working backwards from 100 MB transfer times — see
DESIGN.md Sec. 6 for the full derivation table.  Keeping them in one
dataclass lets the ablation benchmarks perturb a single knob (e.g. the
Pacific Wave policer rate) while holding everything else fixed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro import units
from repro.units import mbps

__all__ = ["CaseStudyParams", "DEFAULT_PARAMS"]


@dataclass(frozen=True)
class CaseStudyParams:
    """All tunable rates/delays/noise levels of the case-study world."""

    # -- access-link capacities (bps) -----------------------------------------
    #: UBC PlanetLab node uplink — "the outgoing bandwidth at UBC is not
    #: really the bottleneck here" (supports ~42 Mbps to UAlberta).
    ubc_access_bps: float = mbps(45)
    #: UMich PlanetLab node uplink.
    umich_access_bps: float = mbps(40)
    #: Purdue PlanetLab node uplink — the shaped ~5 Mbps that bottlenecks
    #: every Purdue transfer except the truly congested peerings.
    purdue_access_bps: float = mbps(5.3)
    #: UCLA PlanetLab node uplink — "the network bottleneck is (we
    #: speculate) UCLA's outgoing bandwidth from that PlanetLab node".
    ucla_access_bps: float = mbps(1.35)
    #: UAlberta cluster uplink (never the bottleneck).
    ualberta_access_bps: float = mbps(1000)

    # -- the Pacific Wave artifact ---------------------------------------------
    #: Rate limit on the pacificwave -> Google egress taken (only) by
    #: PlanetLab-sourced traffic from UBC: the paper's headline 87 s.
    pacificwave_policer_bps: float = mbps(9.6)

    # -- research-network peerings (bps) -------------------------------------
    canarie_google_bps: float = mbps(52)     # UAlberta -> Drive in ~17 s
    canarie_i2_bps: float = mbps(8)          # UBC -> UMich in ~105 s
    canarie_microsoft_bps: float = mbps(34.5)  # UBC/UAlberta -> OneDrive ~25 s
    canarie_dropbox_bps: float = mbps(13.8)  # UBC/UAlberta -> Dropbox ~60 s
    i2_google_bps: float = mbps(34)          # UMich -> Drive ~25 s (TR-CPS)
    i2_microsoft_bps: float = mbps(21.5)     # UMich -> OneDrive ~39 s
    i2_dropbox_bps: float = mbps(12.3)       # UMich -> Dropbox ~68 s

    # -- commodity transit (bps) -----------------------------------------------
    #: TransitA's congested Google interconnect: Purdue -> Drive at ~1 Mbps
    #: effective with huge variance (Table III).
    transita_google_bps: float = mbps(2.2)
    #: TransitA's congested Microsoft interconnect: Purdue -> OneDrive ~2 Mbps
    #: with sigma ~30% (Table IV).
    transita_microsoft_bps: float = mbps(3.6)
    transita_dropbox_bps: float = mbps(25)   # Purdue -> Dropbox pinned by access
    transitb_peering_bps: float = mbps(20)   # UCLA's provider: clean peerings

    # -- backbone capacities (bps) -------------------------------------------
    backbone_bps: float = mbps(2000)
    campus_bps: float = mbps(1000)
    datacenter_bps: float = mbps(10000)

    # -- cross-traffic ---------------------------------------------------------
    #: Background load on the Purdue PlanetLab uplink (run-to-run variance
    #: on everything Purdue-sourced, detours included).  Large, infrequent
    #: flows give the paper-scale sigmas of Table IV.
    purdue_uplink_utilization: float = 0.25
    purdue_uplink_mean_flow_bytes: float = 20.0 * units.MB
    ucla_uplink_utilization: float = 0.05
    ucla_uplink_mean_flow_bytes: float = 1.0 * units.MB
    canarie_i2_utilization: float = 0.10
    transita_dropbox_utilization: float = 0.10
    #: ON/OFF elephants on the congested TransitA interconnects.
    transita_google_elephant_bps: float = mbps(2.2)
    transita_google_elephant_on_s: float = 50.0
    transita_google_elephant_off_s: float = 12.0
    transita_google_elephant_flows: int = 2
    transita_google_mice_utilization: float = 0.08
    transita_microsoft_elephant_bps: float = mbps(3.0)
    transita_microsoft_elephant_on_s: float = 50.0
    transita_microsoft_elephant_off_s: float = 35.0
    transita_microsoft_elephant_flows: int = 2
    transita_microsoft_mice_utilization: float = 0.05

    # -- per-run multiplicative capacity jitter (lognormal sigma) --------------
    capacity_jitter_sigma: float = 0.03
    congested_capacity_jitter_sigma: float = 0.10

    def with_overrides(self, **kwargs) -> "CaseStudyParams":
        """A copy with selected knobs changed (for ablations)."""
        return replace(self, **kwargs)


DEFAULT_PARAMS = CaseStudyParams()
