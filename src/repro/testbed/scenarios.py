"""Experiment scenario helpers: the paper's client/provider/route matrix."""

from __future__ import annotations

from typing import List, Tuple, Union

from repro.core.routes import DetourRoute, DirectRoute, Route
from repro.transfer.files import PAPER_SIZES_MB

__all__ = ["CLIENTS", "PROVIDERS", "VIAS", "paper_route_set", "experiment_label", "PAPER_SIZES_MB"]

#: The three vantage points of Secs. III-A/B/C.
CLIENTS: Tuple[str, ...] = ("ubc", "purdue", "ucla")

#: The three services of Sec. II.
PROVIDERS: Tuple[str, ...] = ("gdrive", "dropbox", "onedrive")

#: Candidate intermediate nodes (Sec. III-A): "our computing cluster
#: (non-PlanetLab) at the University of Alberta (UAlberta) and a PlanetLab
#: node at the University of Michigan (UMich)".
VIAS: Tuple[str, ...] = ("ualberta", "umich")


def paper_route_set(client: str) -> List[Route]:
    """Direct + the paper's two detours (excluding a self-detour)."""
    routes: List[Route] = [DirectRoute()]
    routes.extend(DetourRoute(via) for via in VIAS if via != client)
    return routes


def experiment_label(client: str, provider: str, route: Union[Route, str],
                     size_mb: float) -> str:
    """Stable label for one experiment cell (drives its derived seed).

    *route* may be a :class:`Route` or its canonical ``describe()``
    string, so the campaign layer can label cells it has not yet
    materialized into route objects.
    """
    descr = route if isinstance(route, str) else route.describe()
    return f"{client}->{provider} [{descr}] {size_mb:g}MB"
