"""Automated calibration validation.

Checks the built world against the DESIGN.md Sec. 6 targets (derived
from the paper's tables) by running quick noise-free transfers, and
reports per-path deviations.  Used by `repro.cli validate`, by CI-style
tests, and whenever someone turns a calibration knob and wants to know
what else moved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.executor import PlanExecutor
from repro.core.routes import DirectRoute, TransferPlan
from repro.core.world import World
from repro.testbed.build import build_case_study
from repro.testbed.params import CaseStudyParams
from repro.transfer.files import FileSpec
from repro.transfer.rsync import RsyncSession
from repro.units import mb

__all__ = ["CalibrationCheck", "validate_calibration", "render_validation"]

#: (kind, src site/host, dst provider/site, paper target seconds for 100 MB)
_TARGETS: List[Tuple[str, str, str, float]] = [
    ("api", "ubc", "gdrive", 87.0),
    ("api", "ubc", "dropbox", 60.0),
    ("api", "ubc", "onedrive", 25.0),
    ("api", "ualberta", "gdrive", 17.0),
    ("api", "ualberta", "dropbox", 60.0),
    ("api", "ualberta", "onedrive", 24.0),
    ("api", "umich", "gdrive", 25.0),
    ("api", "umich", "dropbox", 68.0),
    ("api", "umich", "onedrive", 39.0),
    ("api", "purdue", "dropbox", 178.0),
    ("rsync", "ubc", "ualberta", 19.0),
    ("rsync", "ubc", "umich", 105.0),
    ("rsync", "purdue", "ualberta", 178.0),
    ("rsync", "purdue", "umich", 158.0),
]


@dataclass(frozen=True)
class CalibrationCheck:
    """One calibrated path's target vs quick measurement."""

    kind: str
    src: str
    dst: str
    target_s: float
    measured_s: float

    @property
    def ratio(self) -> float:
        return self.measured_s / self.target_s

    def ok(self, tolerance: float = 0.35) -> bool:
        return abs(self.ratio - 1.0) <= tolerance

    def render(self, tolerance: float = 0.35) -> str:
        status = "ok" if self.ok(tolerance) else "DRIFTED"
        return (f"{self.kind:>5} {self.src:>9} -> {self.dst:<9} "
                f"target {self.target_s:6.1f}s  measured {self.measured_s:6.1f}s  "
                f"ratio {self.ratio:4.2f}  [{status}]")


def validate_calibration(
    params: Optional[CaseStudyParams] = None,
    size_mb: float = 100.0,
    seed: int = 0,
) -> List[CalibrationCheck]:
    """Measure every calibrated path once (quiet world) against targets.

    Noise-free and single-run: this checks *calibration*, not statistics.
    Congested paths (Purdue/UCLA -> Google/OneDrive) are excluded — their
    targets only exist with cross traffic and are validated by the
    benchmark suite instead.
    """
    checks: List[CalibrationCheck] = []
    spec = FileSpec("calib.bin", int(mb(size_mb)))
    for kind, src, dst, target in _TARGETS:
        world = build_case_study(seed=seed, params=params, cross_traffic=False)
        if kind == "api":
            result = PlanExecutor(world).run(
                TransferPlan(src, dst, spec, DirectRoute()))
            measured = result.total_s
        else:
            session = RsyncSession(world.engine, world.router, world.tcp)

            def proc():
                start = world.sim.now
                yield from session.push(world.host_of(src), world.host_of(dst), spec)
                return world.sim.now - start

            p = world.sim.process(proc())
            world.sim.run_until_triggered(p.done, horizon=1e6)
            measured = p.result
        scaled_target = target * size_mb / 100.0
        checks.append(CalibrationCheck(kind, src, dst, scaled_target, measured))
    return checks


def render_validation(checks: List[CalibrationCheck], tolerance: float = 0.35) -> str:
    lines = [f"calibration validation ({len(checks)} paths, tolerance ±{tolerance:.0%}):"]
    lines.extend("  " + c.render(tolerance) for c in checks)
    drifted = [c for c in checks if not c.ok(tolerance)]
    lines.append(
        "all paths within tolerance" if not drifted
        else f"{len(drifted)} path(s) drifted: " + ", ".join(
            f"{c.src}->{c.dst}" for c in drifted)
    )
    return "\n".join(lines)
