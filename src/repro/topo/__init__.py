"""Internet-scale topology generation, ingestion, and compiled worlds.

The pipeline (see ``docs/TOPOLOGY.md``):

``TopoSpec`` (recipe or explicit graph) → :func:`generate` →
``TopoGraph`` → :func:`compile_spec` → :class:`CompiledTopology` (flat
numpy arrays + precompiled routes, cached by content hash) →
:func:`materialize` → a live :class:`~repro.core.world.World`.

ITDK-style text snapshots round-trip through :func:`export_itdk` /
:func:`ingest_itdk`.  The calibrated case study builds through the same
path (:mod:`repro.testbed.build`), so broker fleets and campaign cells
run identically on the 5-site paper world and on generated worlds with
thousands of sites.
"""

from repro.topo.compiled import CompiledTopology, compile_graph
from repro.topo.instrument import TopoInstrumentation
from repro.topo.itdk import export_itdk, ingest_itdk
from repro.topo.materialize import build_skeleton, compile_spec, materialize
from repro.topo.routecache import RouteCache
from repro.topo.spec import (
    PRESETS,
    RegionSpec,
    SyntheticParams,
    TopoGraph,
    TopoSpec,
    preset_spec,
)
from repro.topo.synth import generate

__all__ = [
    "CompiledTopology",
    "PRESETS",
    "RegionSpec",
    "RouteCache",
    "SyntheticParams",
    "TopoGraph",
    "TopoInstrumentation",
    "TopoSpec",
    "build_skeleton",
    "compile_graph",
    "compile_spec",
    "export_itdk",
    "generate",
    "ingest_itdk",
    "materialize",
    "preset_spec",
]
