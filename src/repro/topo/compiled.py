"""The compact compiled topology: flat numpy arrays + content digest.

A :class:`CompiledTopology` is the storage/runtime form of a world: every
graph record flattened into columnar numpy arrays (nodes, links, a CSR
adjacency, AS relationships, providers, hosts, and the precompiled
forwarding paths), plus a JSON ``meta`` block naming the spec that
produced it.  Array order preserves graph insertion order — order is
semantic (IGP tie-breaks follow adjacency insertion, see
``docs/invariants.md``) — so compiling the same spec always reproduces
the same arrays, and :meth:`content_digest` (sha256 over every array's
bytes in canonical field order) is the cross-process byte-identity
witness the tests assert on.

The array schema (``ARRAY_FIELDS``) is closed: save/load round-trips
exactly this set, and the digest covers exactly this set plus ``meta``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import TopoError
from repro.topo.spec import (
    AsRec,
    LinkRec,
    NodeRec,
    PbrRec,
    ProviderRec,
    SiteRec,
    TopoGraph,
    canonical_json,
)

__all__ = ["CompiledTopology", "compile_graph"]

#: Bump on any schema change; load refuses mismatches.
COMPILED_VERSION = 1

#: Every array key, in digest order.  Grouped: sites, nodes, CSR
#: adjacency, links, policers, ASes, relationships, export filters,
#: PBR, providers, hosts/DTNs/populations, routes.
ARRAY_FIELDS: Tuple[str, ...] = (
    "site_name", "site_kind", "site_lat", "site_lon", "site_city",
    "site_desc", "site_planetlab",
    "node_name", "node_kind", "node_asn", "node_addr", "node_hostname",
    "node_site", "node_responds", "node_fw_bps",
    "adj_indptr", "adj_nbr", "adj_link",
    "link_u", "link_v", "link_cap_bps", "link_delay_s", "link_loss",
    "link_igp", "link_jitter",
    "policer_link", "policer_node", "policer_bps",
    "as_number", "as_name", "as_tier",
    "rel_customers", "rel_peerings",
    "deny_announcer", "deny_neighbor", "deny_indptr", "deny_dest",
    "pbr_node", "pbr_link", "pbr_prefixes", "pbr_indptr", "pbr_dest",
    "pbr_desc",
    "prov_name", "prov_display", "prov_api", "prov_auth", "prov_proto",
    "prov_indptr", "prov_frontend",
    "host_site", "host_node",
    "dtn_site",
    "pop_site", "pop_weight",
    "route_indptr", "route_node",
)


def _sarr(values: Sequence[str]) -> np.ndarray:
    """String array with a stable dtype for the empty case."""
    values = list(values)
    if not values:
        return np.array([], dtype="U1")
    return np.array(values)


def _iarr(values: Sequence[int]) -> np.ndarray:
    return np.array(list(values), dtype=np.int64)


def _farr(values: Sequence[float]) -> np.ndarray:
    return np.array(list(values), dtype=np.float64)


def _barr(values: Sequence[bool]) -> np.ndarray:
    return np.array(list(values), dtype=bool)


def _pairs(values: Sequence[Tuple[int, int]]) -> np.ndarray:
    return np.array(list(values), dtype=np.int64).reshape(-1, 2)


def _indptr_flat(groups: Sequence[Sequence[int]]) -> Tuple[np.ndarray, np.ndarray]:
    """CSR-style (indptr, flat) encoding of a list of int lists."""
    indptr = [0]
    flat: List[int] = []
    for group in groups:
        flat.extend(group)
        indptr.append(len(flat))
    return _iarr(indptr), _iarr(flat)


class CompiledTopology:
    """Columnar world representation (see module docstring for schema)."""

    def __init__(self, arrays: Dict[str, np.ndarray], meta: Dict[str, object]):
        missing = [k for k in ARRAY_FIELDS if k not in arrays]
        if missing:
            raise TopoError(f"compiled topology missing arrays: {missing}")
        self.arrays = arrays
        self.meta = meta

    def __getitem__(self, key: str) -> np.ndarray:
        return self.arrays[key]

    # -- shape ----------------------------------------------------------------

    @property
    def n_sites(self) -> int:
        return int(self.arrays["site_name"].shape[0])

    @property
    def n_nodes(self) -> int:
        return int(self.arrays["node_name"].shape[0])

    @property
    def n_links(self) -> int:
        return int(self.arrays["link_u"].shape[0])

    @property
    def n_routes(self) -> int:
        return int(self.arrays["route_indptr"].shape[0]) - 1 \
            if self.arrays["route_indptr"].size else 0

    def describe(self) -> Dict[str, object]:
        """Headline stats for ``repro topo inspect`` and the benches."""
        indptr = self.arrays["adj_indptr"]
        degrees = np.diff(indptr) if indptr.size > 1 else np.array([0])
        return {
            "name": self.meta.get("name"),
            "spec_hash": self.meta.get("spec_hash"),
            "sites": self.n_sites,
            "nodes": self.n_nodes,
            "links": self.n_links,
            "ases": int(self.arrays["as_number"].shape[0]),
            "hosts": int(self.arrays["host_site"].shape[0]),
            "dtns": int(self.arrays["dtn_site"].shape[0]),
            "providers": int(self.arrays["prov_name"].shape[0]),
            "routes": self.n_routes,
            "max_degree": int(degrees.max()) if degrees.size else 0,
            "mean_degree": float(degrees.mean()) if degrees.size else 0.0,
        }

    # -- identity -------------------------------------------------------------

    def content_digest(self) -> str:
        """sha256 over meta + every array, in canonical field order.

        This is the byte-identity witness: two compilations agree on the
        digest iff they agree on every array element (npz *file* bytes
        are not comparable — zip headers embed timestamps).
        """
        h = hashlib.sha256()
        h.update(canonical_json(dict(self.meta)).encode())
        for key in ARRAY_FIELDS:
            arr = self.arrays[key]
            h.update(key.encode())
            h.update(str(arr.dtype).encode())
            h.update(str(arr.shape).encode())
            h.update(arr.tobytes())
        return h.hexdigest()

    # -- persistence ----------------------------------------------------------

    def save(self, path: str) -> None:
        np.savez_compressed(
            path, __meta__=np.array([canonical_json(dict(self.meta))]),
            **self.arrays)

    @classmethod
    def load(cls, path: str) -> "CompiledTopology":
        try:
            with np.load(path, allow_pickle=False) as payload:
                raw = {k: payload[k] for k in payload.files if k != "__meta__"}
                if "__meta__" not in payload.files:
                    raise TopoError(f"{path}: not a compiled topology (no meta)")
                meta = json.loads(str(payload["__meta__"][0]))
        except (OSError, ValueError, KeyError) as exc:
            raise TopoError(f"cannot load compiled topology {path}: {exc}") from None
        if meta.get("version") != COMPILED_VERSION:
            raise TopoError(
                f"{path}: compiled version {meta.get('version')} "
                f"(expected {COMPILED_VERSION})")
        return cls(raw, meta)

    # -- routes ---------------------------------------------------------------

    def attach_routes(self, node_paths: Sequence[Sequence[int]]) -> None:
        """Install precompiled forwarding paths (node indices)."""
        indptr, flat = _indptr_flat(node_paths)
        self.arrays["route_indptr"] = indptr
        self.arrays["route_node"] = flat
        self.meta["routes"] = len(node_paths)

    def route_name_paths(self) -> List[List[str]]:
        """Precompiled paths as node-name lists (for Router.preload)."""
        names = self.arrays["node_name"]
        indptr = self.arrays["route_indptr"]
        flat = self.arrays["route_node"]
        out = []
        for i in range(len(indptr) - 1):
            out.append([str(names[j]) for j in flat[indptr[i]:indptr[i + 1]]])
        return out

    # -- back to records ------------------------------------------------------

    def to_graph(self) -> TopoGraph:
        """Reconstruct the record form (lossless inverse of compile)."""
        a = self.arrays
        site_names = [str(s) for s in a["site_name"]]
        node_names = [str(s) for s in a["node_name"]]

        sites = tuple(
            SiteRec(site_names[i], str(a["site_kind"][i]),
                    float(a["site_lat"][i]), float(a["site_lon"][i]),
                    city=str(a["site_city"][i]), description=str(a["site_desc"][i]),
                    planetlab=bool(a["site_planetlab"][i]))
            for i in range(self.n_sites))

        def node(i: int) -> NodeRec:
            fw = float(a["node_fw_bps"][i])
            site_idx = int(a["node_site"][i])
            return NodeRec(
                node_names[i], str(a["node_kind"][i]), int(a["node_asn"][i]),
                str(a["node_addr"][i]), hostname=str(a["node_hostname"][i]),
                site=site_names[site_idx] if site_idx >= 0 else "",
                responds=bool(a["node_responds"][i]),
                firewall_per_flow_bps=None if np.isnan(fw) else fw)

        nodes = tuple(node(i) for i in range(self.n_nodes))

        policers_by_link: Dict[int, List[Tuple[str, float]]] = {}
        for j in range(a["policer_link"].shape[0]):
            policers_by_link.setdefault(int(a["policer_link"][j]), []).append(
                (node_names[int(a["policer_node"][j])], float(a["policer_bps"][j])))

        links = tuple(
            LinkRec(node_names[int(a["link_u"][i])], node_names[int(a["link_v"][i])],
                    capacity_bps=float(a["link_cap_bps"][i]),
                    delay_s=float(a["link_delay_s"][i]),
                    loss=float(a["link_loss"][i]), igp_cost=float(a["link_igp"][i]),
                    policers=tuple(policers_by_link.get(i, ())),
                    jitter_sigma=float(a["link_jitter"][i]))
            for i in range(self.n_links))

        ases = tuple(
            AsRec(int(a["as_number"][i]), str(a["as_name"][i]), str(a["as_tier"][i]))
            for i in range(a["as_number"].shape[0]))

        deny_indptr = a["deny_indptr"]
        export_deny = tuple(
            (int(a["deny_announcer"][i]), int(a["deny_neighbor"][i]),
             tuple(int(x) for x in a["deny_dest"][deny_indptr[i]:deny_indptr[i + 1]]))
            for i in range(a["deny_announcer"].shape[0]))

        pbr_indptr = a["pbr_indptr"]
        link_names = [f"{node_names[int(a['link_u'][i])]}--"
                      f"{node_names[int(a['link_v'][i])]}"
                      for i in range(self.n_links)]
        pbr_rules = tuple(
            PbrRec(node_names[int(a["pbr_node"][i])],
                   link_names[int(a["pbr_link"][i])],
                   src_prefixes=tuple(
                       p for p in str(a["pbr_prefixes"][i]).split(";") if p),
                   dest_asns=tuple(
                       int(x) for x in a["pbr_dest"][pbr_indptr[i]:pbr_indptr[i + 1]]),
                   description=str(a["pbr_desc"][i]))
            for i in range(a["pbr_node"].shape[0]))

        prov_indptr = a["prov_indptr"]
        providers = tuple(
            ProviderRec(str(a["prov_name"][i]), str(a["prov_display"][i]),
                        str(a["prov_api"][i]), str(a["prov_auth"][i]),
                        frontends=tuple(
                            node_names[int(x)]
                            for x in a["prov_frontend"][prov_indptr[i]:prov_indptr[i + 1]]),
                        protocol=str(a["prov_proto"][i]))
            for i in range(a["prov_name"].shape[0]))

        return TopoGraph(
            sites=sites, ases=ases, nodes=nodes, links=links,
            customers=tuple((int(x), int(y)) for x, y in a["rel_customers"]),
            peerings=tuple((int(x), int(y)) for x, y in a["rel_peerings"]),
            export_deny=export_deny, pbr_rules=pbr_rules, providers=providers,
            hosts=tuple((site_names[int(s)], node_names[int(n)])
                        for s, n in zip(a["host_site"], a["host_node"])),
            dtn_sites=tuple(site_names[int(s)] for s in a["dtn_site"]),
            populations=tuple((site_names[int(s)], float(w))
                              for s, w in zip(a["pop_site"], a["pop_weight"])),
        )


def compile_graph(graph: TopoGraph, name: str, source: str,
                  spec_hash: str, tag: str) -> CompiledTopology:
    """Flatten a :class:`TopoGraph` into a :class:`CompiledTopology`.

    Routes start empty; the compile pipeline attaches them after
    resolution (or from the route cache).
    """
    site_idx = {s.name: i for i, s in enumerate(graph.sites)}
    node_idx = {n.name: i for i, n in enumerate(graph.nodes)}
    link_idx: Dict[str, int] = {}

    arrays: Dict[str, np.ndarray] = {}
    arrays["site_name"] = _sarr([s.name for s in graph.sites])
    arrays["site_kind"] = _sarr([s.kind for s in graph.sites])
    arrays["site_lat"] = _farr([s.lat for s in graph.sites])
    arrays["site_lon"] = _farr([s.lon for s in graph.sites])
    arrays["site_city"] = _sarr([s.city for s in graph.sites])
    arrays["site_desc"] = _sarr([s.description for s in graph.sites])
    arrays["site_planetlab"] = _barr([s.planetlab for s in graph.sites])

    for n in graph.nodes:
        if n.site and n.site not in site_idx:
            raise TopoError(f"node {n.name!r} references unknown site {n.site!r}")
    arrays["node_name"] = _sarr([n.name for n in graph.nodes])
    arrays["node_kind"] = _sarr([n.kind for n in graph.nodes])
    arrays["node_asn"] = _iarr([n.asn for n in graph.nodes])
    arrays["node_addr"] = _sarr([n.address for n in graph.nodes])
    arrays["node_hostname"] = _sarr([n.hostname or n.name for n in graph.nodes])
    arrays["node_site"] = _iarr(
        [site_idx[n.site] if n.site else -1 for n in graph.nodes])
    arrays["node_responds"] = _barr([n.responds for n in graph.nodes])
    arrays["node_fw_bps"] = _farr(
        [float("nan") if n.firewall_per_flow_bps is None
         else n.firewall_per_flow_bps for n in graph.nodes])

    policer_link: List[int] = []
    policer_node: List[int] = []
    policer_bps: List[float] = []
    adjacency: List[List[Tuple[int, int]]] = [[] for _ in graph.nodes]
    for i, link in enumerate(graph.links):
        for end in (link.u, link.v):
            if end not in node_idx:
                raise TopoError(f"link {link.name!r} references unknown node {end!r}")
        link_idx[link.name] = i
        u, v = node_idx[link.u], node_idx[link.v]
        adjacency[u].append((v, i))
        adjacency[v].append((u, i))
        for node_name, rate in link.policers:
            policer_link.append(i)
            policer_node.append(node_idx[node_name])
            policer_bps.append(rate)
    arrays["link_u"] = _iarr([node_idx[l.u] for l in graph.links])
    arrays["link_v"] = _iarr([node_idx[l.v] for l in graph.links])
    arrays["link_cap_bps"] = _farr([l.capacity_bps for l in graph.links])
    arrays["link_delay_s"] = _farr([l.delay_s for l in graph.links])
    arrays["link_loss"] = _farr([l.loss for l in graph.links])
    arrays["link_igp"] = _farr([l.igp_cost for l in graph.links])
    arrays["link_jitter"] = _farr([l.jitter_sigma for l in graph.links])
    arrays["policer_link"] = _iarr(policer_link)
    arrays["policer_node"] = _iarr(policer_node)
    arrays["policer_bps"] = _farr(policer_bps)

    indptr, flat = _indptr_flat([[n for n, _ in adj] for adj in adjacency])
    _, flat_links = _indptr_flat([[lk for _, lk in adj] for adj in adjacency])
    arrays["adj_indptr"] = indptr
    arrays["adj_nbr"] = flat
    arrays["adj_link"] = flat_links

    arrays["as_number"] = _iarr([a.asn for a in graph.ases])
    arrays["as_name"] = _sarr([a.name for a in graph.ases])
    arrays["as_tier"] = _sarr([a.tier for a in graph.ases])
    arrays["rel_customers"] = _pairs(graph.customers)
    arrays["rel_peerings"] = _pairs(graph.peerings)

    arrays["deny_announcer"] = _iarr([a for a, _, _ in graph.export_deny])
    arrays["deny_neighbor"] = _iarr([n for _, n, _ in graph.export_deny])
    deny_indptr, deny_flat = _indptr_flat(
        [list(d) for _, _, d in graph.export_deny])
    arrays["deny_indptr"] = deny_indptr
    arrays["deny_dest"] = deny_flat

    arrays["pbr_node"] = _iarr([node_idx[r.node] for r in graph.pbr_rules])
    arrays["pbr_link"] = _iarr([link_idx[r.out_link] for r in graph.pbr_rules])
    arrays["pbr_prefixes"] = _sarr([";".join(r.src_prefixes)
                                    for r in graph.pbr_rules])
    pbr_indptr, pbr_flat = _indptr_flat(
        [list(r.dest_asns) for r in graph.pbr_rules])
    arrays["pbr_indptr"] = pbr_indptr
    arrays["pbr_dest"] = pbr_flat
    arrays["pbr_desc"] = _sarr([r.description for r in graph.pbr_rules])

    arrays["prov_name"] = _sarr([p.name for p in graph.providers])
    arrays["prov_display"] = _sarr([p.display_name for p in graph.providers])
    arrays["prov_api"] = _sarr([p.api_hostname for p in graph.providers])
    arrays["prov_auth"] = _sarr([p.auth_hostname for p in graph.providers])
    arrays["prov_proto"] = _sarr([p.protocol for p in graph.providers])
    prov_indptr, prov_flat = _indptr_flat(
        [[node_idx[f] for f in p.frontends] for p in graph.providers])
    arrays["prov_indptr"] = prov_indptr
    arrays["prov_frontend"] = prov_flat

    arrays["host_site"] = _iarr([site_idx[s] for s, _ in graph.hosts])
    arrays["host_node"] = _iarr([node_idx[n] for _, n in graph.hosts])
    arrays["dtn_site"] = _iarr([site_idx[s] for s in graph.dtn_sites])
    arrays["pop_site"] = _iarr([site_idx[s] for s, _ in graph.populations])
    arrays["pop_weight"] = _farr([w for _, w in graph.populations])

    arrays["route_indptr"] = _iarr([0])
    arrays["route_node"] = _iarr([])

    meta: Dict[str, object] = {
        "version": COMPILED_VERSION,
        "name": name,
        "source": source,
        "spec_hash": spec_hash,
        "tag": tag,
        "routes": 0,
    }
    return CompiledTopology(arrays, meta)
