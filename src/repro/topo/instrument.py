"""Observability for topology compilation.

:class:`TopoInstrumentation` bundles the three existing observability
surfaces for the compile pipeline: a ``repro_topo_*`` metric family on a
:class:`~repro.obs.metrics.MetricsRegistry`, per-phase wall-time sections
on a :class:`~repro.obs.profile.KernelProfiler` (the package's only
sanctioned wall clock), and optional :class:`~repro.obs.spans.SpanTracer`
spans so compile phases appear on the same timeline as transfers when a
world is built inside a traced simulation.

All members are optional; a default-constructed instance is a no-op, so
the compile pipeline carries no observability cost unless asked.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import KernelProfiler
from repro.obs.spans import SpanTracer

__all__ = ["TopoInstrumentation"]


class TopoInstrumentation:
    """Metrics + profiler sections + spans for topo build phases."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 profiler: Optional[KernelProfiler] = None,
                 spans: Optional[SpanTracer] = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled=False)
        self.profiler = profiler
        self.spans = spans
        m = self.metrics
        #: wall seconds per compile phase (labelled; needs a profiler —
        #: the registry itself never reads a clock)
        self.phase_seconds = m.histogram(
            "repro_topo_phase_seconds",
            "wall time of topology compile phases, by phase label")
        self.phases_total = m.counter(
            "repro_topo_phases_total", "compile phases entered, by phase label")
        self.nodes_count = m.gauge(
            "repro_topo_nodes_count", "nodes in the last compiled topology")
        self.links_count = m.gauge(
            "repro_topo_links_count", "links in the last compiled topology")
        self.sites_count = m.gauge(
            "repro_topo_sites_count", "sites in the last compiled topology")
        self.routes_count = m.gauge(
            "repro_topo_routes_count",
            "precompiled forwarding paths in the last compiled topology")
        self.cache_hits = m.counter(
            "repro_topo_route_cache_hits_total", "route-cache lookups served from disk")
        self.cache_misses = m.counter(
            "repro_topo_route_cache_misses_total", "route-cache lookups that recomputed")
        self.cache_corrupt = m.counter(
            "repro_topo_route_cache_corrupt_total",
            "route-cache entries rejected (bad checksum/version) and recomputed")

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Instrument one compile phase (span + profiler section + metrics)."""
        self.phases_total.inc(phase=name)
        span = (self.spans.span("topo.compile", f"phase:{name}")
                if self.spans is not None else None)
        if span is not None:
            span.__enter__()
        t0 = self.profiler.begin() if self.profiler is not None else None
        try:
            yield
        finally:
            if self.profiler is not None:
                elapsed = self.profiler.end_section(f"topo.compile.{name}", t0)
                if elapsed is not None:
                    self.phase_seconds.observe(elapsed, phase=name)
            if span is not None:
                span.__exit__(None, None, None)

    def record_shape(self, n_sites: int, n_nodes: int, n_links: int,
                     n_routes: int) -> None:
        """Publish the compiled world's headline sizes."""
        self.sites_count.set(float(n_sites))
        self.nodes_count.set(float(n_nodes))
        self.links_count.set(float(n_links))
        self.routes_count.set(float(n_routes))
