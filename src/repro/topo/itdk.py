"""ITDK-style text export/ingestion (CAIDA ``nodes``/``links``/``geo``).

Worlds serialize to the file family the CIDT analysis pipeline consumes
(CAIDA ITDK midar-iff conventions), one directory per world:

* ``<prefix>.nodes`` — ``node N<i>:  <addr> [key=value ...]``
* ``<prefix>.links`` — ``link L<i>:  N<a>:<addr> N<b>:<addr> [key=value ...]``
* ``<prefix>.nodes.as`` — ``node.AS N<i> <asn>``
* ``<prefix>.nodes.geo`` — ``node.geo N<i>: <continent>|<country>|<region>|<city>|<lat>|<lon>``
* ``as-rel.txt`` — ``<a>|<b>|-1`` (a provider of b) / ``<a>|<b>|0`` (peers),
  plus ``# xfilter <announcer>|<neighbor>|<denied,asns>`` extension lines
* ``sites.txt`` — ``site <key>|<kind>|<lat>|<lon>|<planetlab>|<city>|<description>``
  (extension; plain ITDK snapshots don't have it)
* ``meta.json`` — providers/hosts/DTNs/populations/PBR (extension; these
  concepts have no ITDK analogue)

The ``key=value`` trailers are a documented extension for lossless
round-trips (floats via ``repr``, so ``generate → export → ingest``
reproduces byte-identical compiled arrays).  **Plain** ITDK files — no
trailers, no extension files — still ingest: nodes default to routers in
one AS, links to a default capacity/delay, and missing AS relationships
are inferred (larger AS is provider; a total order, hence acyclic).
Such snapshots carry no hosts/providers, so they compile and inspect but
cannot materialize a transfer-ready world until hosts are grafted on.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.errors import TopoError
from repro.topo.spec import (
    AsRec,
    LinkRec,
    NodeRec,
    PbrRec,
    ProviderRec,
    SiteRec,
    TopoGraph,
    TopoSpec,
)
from repro.units import gbps, ms

__all__ = ["export_itdk", "ingest_itdk"]

#: Defaults for plain snapshots that carry no capacity/delay trailers.
DEFAULT_LINK_BPS = gbps(10)
DEFAULT_LINK_DELAY_S = ms(2)
DEFAULT_ASN = 64512


def _fmt(value: float) -> str:
    return repr(float(value))


def _tokens(parts: List[str]) -> Dict[str, str]:
    """Parse trailing ``key=value`` tokens from a split line."""
    out: Dict[str, str] = {}
    for part in parts:
        if "=" in part:
            key, _, val = part.partition("=")
            out[key] = val
    return out


# ---------------------------------------------------------------------------
# export
# ---------------------------------------------------------------------------


def export_itdk(graph: TopoGraph, out_dir: str, prefix: str = "itdk") -> List[str]:
    """Write the ITDK file family for *graph*; returns the paths written."""
    os.makedirs(out_dir, exist_ok=True)
    site_of = {s.name: s for s in graph.sites}
    node_id = {n.name: i for i, n in enumerate(graph.nodes)}
    written: List[str] = []

    def path(name: str) -> str:
        p = os.path.join(out_dir, name)
        written.append(p)
        return p

    with open(path(f"{prefix}.nodes"), "w") as fh:
        fh.write("# node N<id>:  <address> [extension tokens]\n")
        for i, n in enumerate(graph.nodes):
            fw = "-" if n.firewall_per_flow_bps is None \
                else _fmt(n.firewall_per_flow_bps)
            fh.write(
                f"node N{i}:  {n.address} name={n.name} kind={n.kind} "
                f"hostname={n.hostname or n.name} site={n.site or '-'} "
                f"responds={int(n.responds)} fw_bps={fw}\n")

    with open(path(f"{prefix}.links"), "w") as fh:
        fh.write("# link L<id>:  N<a>:<addr> N<b>:<addr> [extension tokens]\n")
        for i, l in enumerate(graph.links):
            u, v = node_id[l.u], node_id[l.v]
            pol = ",".join(f"{name}:{_fmt(rate)}" for name, rate in l.policers)
            fh.write(
                f"link L{i}:  N{u}:{graph.nodes[u].address} "
                f"N{v}:{graph.nodes[v].address} "
                f"cap_bps={_fmt(l.capacity_bps)} delay_s={_fmt(l.delay_s)} "
                f"loss={_fmt(l.loss)} igp={_fmt(l.igp_cost)} "
                f"jitter={_fmt(l.jitter_sigma)} policer={pol or '-'}\n")

    with open(path(f"{prefix}.nodes.as"), "w") as fh:
        for i, n in enumerate(graph.nodes):
            fh.write(f"node.AS N{i} {n.asn}\n")

    with open(path(f"{prefix}.nodes.geo"), "w") as fh:
        fh.write("# node.geo N<id>: continent|country|region|city|lat|lon\n")
        for i, n in enumerate(graph.nodes):
            if not n.site:
                continue
            s = site_of[n.site]
            fh.write(f"node.geo N{i}: |||{s.city}|{_fmt(s.lat)}|{_fmt(s.lon)}\n")

    with open(path("as-rel.txt"), "w") as fh:
        fh.write("# <provider>|<customer>|-1  /  <peer>|<peer>|0\n")
        for name, number, tier in [(a.name, a.asn, a.tier) for a in graph.ases]:
            fh.write(f"# as N{number} name={name} tier={tier or '-'}\n")
        for provider, customer in graph.customers:
            fh.write(f"{provider}|{customer}|-1\n")
        for a, b in graph.peerings:
            fh.write(f"{a}|{b}|0\n")
        for announcer, neighbor, deny in graph.export_deny:
            denied = ",".join(str(d) for d in deny)
            fh.write(f"# xfilter {announcer}|{neighbor}|{denied}\n")

    with open(path("sites.txt"), "w") as fh:
        fh.write("# site <key>|<kind>|<lat>|<lon>|<planetlab>|<city>|<description>\n")
        for s in graph.sites:
            fh.write(f"site {s.name}|{s.kind}|{_fmt(s.lat)}|{_fmt(s.lon)}|"
                     f"{int(s.planetlab)}|{s.city}|{s.description}\n")

    meta = {
        "providers": [
            {"name": p.name, "display_name": p.display_name,
             "api_hostname": p.api_hostname, "auth_hostname": p.auth_hostname,
             "frontends": list(p.frontends), "protocol": p.protocol}
            for p in graph.providers],
        "hosts": [list(h) for h in graph.hosts],
        "dtn_sites": list(graph.dtn_sites),
        "populations": [list(p) for p in graph.populations],
        "pbr_rules": [
            {"node": r.node, "out_link": r.out_link,
             "src_prefixes": list(r.src_prefixes),
             "dest_asns": list(r.dest_asns), "description": r.description}
            for r in graph.pbr_rules],
    }
    with open(path("meta.json"), "w") as fh:
        json.dump(meta, fh, sort_keys=True, indent=1)
    return written


# ---------------------------------------------------------------------------
# ingest
# ---------------------------------------------------------------------------


def _read_lines(path: str) -> List[str]:
    with open(path, "r") as fh:
        return [line.rstrip("\n") for line in fh
                if line.strip() and not line.lstrip().startswith("#")]


def _infer_relationships(nodes: List[NodeRec],
                         links: List[LinkRec]) -> List[Tuple[int, int]]:
    """Provider/customer inference for snapshots without as-rel data.

    The AS with more nodes is the provider (ties: lower ASN).  The
    ordering is total, so the inferred graph is acyclic by construction.
    """
    asn_of = {n.name: n.asn for n in nodes}
    size: Dict[int, int] = {}
    for n in nodes:
        size[n.asn] = size.get(n.asn, 0) + 1
    pairs = set()
    for l in links:
        a, b = asn_of[l.u], asn_of[l.v]
        if a != b:
            pairs.add((min(a, b), max(a, b)))
    customers: List[Tuple[int, int]] = []
    for a, b in sorted(pairs):
        rank_a = (-size[a], a)
        rank_b = (-size[b], b)
        provider, customer = (a, b) if rank_a < rank_b else (b, a)
        customers.append((provider, customer))
    return customers


def ingest_itdk(in_dir: str, name: str, prefix: str = "itdk") -> TopoSpec:
    """Read an ITDK directory into an explicit :class:`TopoSpec`."""
    nodes_path = os.path.join(in_dir, f"{prefix}.nodes")
    links_path = os.path.join(in_dir, f"{prefix}.links")
    if not os.path.exists(nodes_path) or not os.path.exists(links_path):
        raise TopoError(
            f"{in_dir}: missing {prefix}.nodes / {prefix}.links")

    # -- nodes ---------------------------------------------------------------
    node_order: List[str] = []          # "N<id>" in file order
    raw_nodes: Dict[str, dict] = {}
    for line in _read_lines(nodes_path):
        parts = line.split()
        if len(parts) < 3 or parts[0] != "node":
            raise TopoError(f"{nodes_path}: malformed line {line!r}")
        nid = parts[1].rstrip(":")
        tokens = _tokens(parts[2:])
        addr = next((p for p in parts[2:] if "=" not in p), None)
        if addr is None:
            raise TopoError(f"{nodes_path}: node {nid} has no address")
        node_order.append(nid)
        raw_nodes[nid] = {"address": addr, **tokens}

    # -- AS assignment -------------------------------------------------------
    as_path = os.path.join(in_dir, f"{prefix}.nodes.as")
    if os.path.exists(as_path):
        for line in _read_lines(as_path):
            parts = line.split()
            if len(parts) < 3 or parts[0] != "node.AS":
                raise TopoError(f"{as_path}: malformed line {line!r}")
            if parts[1] in raw_nodes:
                raw_nodes[parts[1]]["asn"] = parts[2]

    # -- geo -----------------------------------------------------------------
    geo_path = os.path.join(in_dir, f"{prefix}.nodes.geo")
    geo: Dict[str, Tuple[str, float, float]] = {}
    if os.path.exists(geo_path):
        for line in _read_lines(geo_path):
            head, _, rest = line.partition(":")
            parts = head.split()
            if len(parts) != 2 or parts[0] != "node.geo":
                raise TopoError(f"{geo_path}: malformed line {line!r}")
            fields = rest.strip().split("|")
            if len(fields) < 6:
                raise TopoError(f"{geo_path}: malformed geo fields {line!r}")
            geo[parts[1]] = (fields[-3], float(fields[-2]), float(fields[-1]))

    # -- sites (extension file, else synthesized from geo) -------------------
    sites: List[SiteRec] = []
    site_keys: Dict[str, str] = {}   # node id -> site key
    sites_path = os.path.join(in_dir, "sites.txt")
    if os.path.exists(sites_path):
        for line in _read_lines(sites_path):
            if not line.startswith("site "):
                raise TopoError(f"{sites_path}: malformed line {line!r}")
            fields = line[len("site "):].split("|")
            if len(fields) < 7:
                raise TopoError(f"{sites_path}: malformed site fields {line!r}")
            key, kind, lat, lon, planetlab = fields[:5]
            city, description = fields[5], "|".join(fields[6:])
            sites.append(SiteRec(key, kind, float(lat), float(lon), city=city,
                                 description=description,
                                 planetlab=bool(int(planetlab))))
    else:
        for nid in node_order:
            if nid in geo:
                city, lat, lon = geo[nid]
                key = f"{name}-{nid.lower()}"
                site_keys[nid] = key
                sites.append(SiteRec(key, "exchange", lat, lon, city=city,
                                     description=f"ingested from {prefix}.nodes.geo"))

    # -- node records --------------------------------------------------------
    nodes: List[NodeRec] = []
    for nid in node_order:
        raw = raw_nodes[nid]
        fw = raw.get("fw_bps", "-")
        site = raw.get("site", "-")
        if site == "-":
            site = site_keys.get(nid, "")
        nodes.append(NodeRec(
            name=raw.get("name", nid),
            kind=raw.get("kind", "router"),
            asn=int(raw.get("asn", DEFAULT_ASN)),
            address=raw["address"],
            hostname=raw.get("hostname", ""),
            site=site,
            responds=bool(int(raw.get("responds", "1"))),
            firewall_per_flow_bps=None if fw == "-" else float(fw),
        ))
    by_id = {nid: nodes[i] for i, nid in enumerate(node_order)}

    # -- links ---------------------------------------------------------------
    links: List[LinkRec] = []
    for line in _read_lines(links_path):
        parts = line.split()
        if len(parts) < 4 or parts[0] != "link":
            raise TopoError(f"{links_path}: malformed line {line!r}")
        refs = [p.split(":")[0] for p in parts[2:]
                if p.startswith("N") and "=" not in p]
        if len(refs) < 2:
            raise TopoError(f"{links_path}: link needs two endpoints: {line!r}")
        tokens = _tokens(parts[2:])
        policers: Tuple[Tuple[str, float], ...] = ()
        pol = tokens.get("policer", "-")
        if pol != "-":
            policers = tuple(
                (entry.rsplit(":", 1)[0], float(entry.rsplit(":", 1)[1]))
                for entry in pol.split(","))
        try:
            u, v = by_id[refs[0]], by_id[refs[1]]
        except KeyError as exc:
            raise TopoError(f"{links_path}: unknown node {exc} in {line!r}") from None
        links.append(LinkRec(
            u.name, v.name,
            capacity_bps=float(tokens.get("cap_bps", DEFAULT_LINK_BPS)),
            delay_s=float(tokens.get("delay_s", DEFAULT_LINK_DELAY_S)),
            loss=float(tokens.get("loss", 0.0)),
            igp_cost=float(tokens.get("igp", 1.0)),
            policers=policers,
            jitter_sigma=float(tokens.get("jitter", 0.0)),
        ))

    # -- AS records + relationships -----------------------------------------
    rel_path = os.path.join(in_dir, "as-rel.txt")
    as_names: Dict[int, Tuple[str, str]] = {}
    customers: List[Tuple[int, int]] = []
    peerings: List[Tuple[int, int]] = []
    export_deny: List[Tuple[int, int, Tuple[int, ...]]] = []
    if os.path.exists(rel_path):
        with open(rel_path, "r") as fh:
            for line in fh:
                line = line.strip()
                if line.startswith("# as N"):
                    parts = line[len("# as N"):].split()
                    tokens = _tokens(parts[1:])
                    tier = tokens.get("tier", "-")
                    as_names[int(parts[0])] = (
                        tokens.get("name", f"as{parts[0]}"),
                        "" if tier == "-" else tier)
                elif line.startswith("# xfilter "):
                    a, n, deny = line[len("# xfilter "):].split("|")
                    export_deny.append((
                        int(a), int(n),
                        tuple(int(d) for d in deny.split(",") if d)))
                elif line and not line.startswith("#"):
                    a, b, rel = line.split("|")[:3]
                    if int(rel) == -1:
                        customers.append((int(a), int(b)))
                    else:
                        peerings.append((int(a), int(b)))
    else:
        customers = _infer_relationships(nodes, links)

    seen_asns: List[int] = []
    for n in nodes:
        if n.asn not in seen_asns:
            seen_asns.append(n.asn)
    ases = tuple(
        AsRec(asn, *(as_names.get(asn, (f"as{asn}", ""))))
        for asn in seen_asns)

    # -- meta extension -------------------------------------------------------
    providers: Tuple[ProviderRec, ...] = ()
    hosts: Tuple[Tuple[str, str], ...] = ()
    dtn_sites: Tuple[str, ...] = ()
    populations: Tuple[Tuple[str, float], ...] = ()
    pbr_rules: Tuple[PbrRec, ...] = ()
    meta_path = os.path.join(in_dir, "meta.json")
    if os.path.exists(meta_path):
        with open(meta_path, "r") as fh:
            meta = json.load(fh)
        providers = tuple(
            ProviderRec(p["name"], p["display_name"], p["api_hostname"],
                        p["auth_hostname"], tuple(p["frontends"]), p["protocol"])
            for p in meta.get("providers", ()))
        hosts = tuple((s, n) for s, n in meta.get("hosts", ()))
        dtn_sites = tuple(meta.get("dtn_sites", ()))
        populations = tuple((s, float(w)) for s, w in meta.get("populations", ()))
        pbr_rules = tuple(
            PbrRec(r["node"], r["out_link"], tuple(r["src_prefixes"]),
                   tuple(int(a) for a in r["dest_asns"]), r["description"])
            for r in meta.get("pbr_rules", ()))

    graph = TopoGraph(
        sites=tuple(sites), ases=ases, nodes=tuple(nodes), links=tuple(links),
        customers=tuple(customers), peerings=tuple(peerings),
        export_deny=tuple(export_deny), pbr_rules=pbr_rules,
        providers=providers, hosts=hosts, dtn_sites=dtn_sites,
        populations=populations,
    )
    return TopoSpec(name=name, source="explicit", graph=graph)
