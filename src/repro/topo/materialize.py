"""Compile specs into route-compiled worlds; materialize them for runs.

Two halves:

* :func:`compile_spec` — spec → :class:`~repro.topo.compiled.CompiledTopology`:
  expand (or take) the graph, flatten to arrays, then resolve the
  standard route set (every host to every provider frontend, every
  client host to every DTN host) over a *skeleton* world — topology, AS
  graph and PBR only, no simulator.  Routes are served from the
  content-addressed :class:`~repro.topo.routecache.RouteCache` when a
  ``cache_dir`` is given; route resolution depends only on the spec
  (capacity jitter is applied per seed at materialize time and never
  changes hop sequences), so a warm cache skips the expensive phase
  entirely.

* :func:`materialize` — compiled → :class:`~repro.core.world.World`:
  rebuild the live objects in array order (order is semantic: IGP
  tie-breaks follow adjacency insertion), seed the router's path cache
  from the precompiled routes, wire providers/hosts/DTNs, and apply the
  per-seed capacity jitter streams (``capjitter.<link>``) exactly as the
  hand-built testbed does.

The calibrated case study flows through the same two functions (see
:mod:`repro.testbed.build`), so one construction path serves both the
5-site paper world and generated 10^3–10^4-site worlds.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple, Union

from repro.cloud.dropbox import make_dropbox_protocol
from repro.cloud.gdrive import make_gdrive_protocol
from repro.cloud.onedrive import make_onedrive_protocol
from repro.cloud.provider import CloudProvider
from repro.core.world import World
from repro.errors import RoutingError, TopoError
from repro.geo.coords import GeoPoint
from repro.geo.sites import Site, SiteKind, register_site
from repro.net.asn import ASGraph, AutonomousSystem
from repro.net.dns import DnsResolver
from repro.net.engine import NetworkEngine
from repro.net.policy import PbrRule, PolicyTable
from repro.net.routing import Router
from repro.net.tcp import TcpModel
from repro.net.topology import Link, Node, NodeKind, Topology
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import KernelProfiler
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer
from repro.topo.compiled import CompiledTopology, compile_graph
from repro.topo.instrument import TopoInstrumentation
from repro.topo.routecache import RouteCache
from repro.topo.spec import TopoGraph, TopoSpec
from repro.topo.synth import generate

__all__ = ["build_skeleton", "compile_spec", "materialize"]

#: Upload-protocol factories reachable from serialized provider records.
_PROTOCOL_FACTORIES = {
    "gdrive": make_gdrive_protocol,
    "dropbox": make_dropbox_protocol,
    "onedrive": make_onedrive_protocol,
}


def _register_sites(graph: TopoGraph) -> None:
    for s in graph.sites:
        try:
            kind = SiteKind(s.kind)
        except ValueError:
            raise TopoError(f"site {s.name!r}: unknown kind {s.kind!r}") from None
        register_site(Site(s.name, kind, GeoPoint(s.lat, s.lon), s.city,
                           description=s.description, planetlab=s.planetlab))


def build_skeleton(graph: TopoGraph) -> Tuple[Topology, ASGraph, PolicyTable]:
    """Topology + AS graph + PBR from graph records (no simulator).

    Registers the graph's sites in the global registry (idempotent) and
    adds nodes/links in record order — the order the compiled arrays
    preserve — so tie-breaks reproduce byte-identically.
    """
    _register_sites(graph)
    topo = Topology()
    for n in graph.nodes:
        try:
            kind = NodeKind(n.kind)
        except ValueError:
            raise TopoError(f"node {n.name!r}: unknown kind {n.kind!r}") from None
        topo.add_node(Node(n.name, kind, n.asn, n.address,
                           hostname=n.hostname, site_name=n.site,
                           responds_to_traceroute=n.responds,
                           firewall_per_flow_bps=n.firewall_per_flow_bps))
    for l in graph.links:
        topo.add_link(Link(l.u, l.v, capacity_bps=l.capacity_bps,
                           delay_s=l.delay_s, loss=l.loss,
                           policer_bps=dict(l.policers), igp_cost=l.igp_cost))
    topo.validate()

    as_graph = ASGraph()
    for a in graph.ases:
        as_graph.add_as(AutonomousSystem(a.asn, a.name, description=a.tier))
    for provider_asn, customer_asn in graph.customers:
        as_graph.add_customer(provider_asn, customer_asn)
    for a, b in graph.peerings:
        as_graph.add_peering(a, b)
    for announcer, neighbor, deny in graph.export_deny:
        denied = frozenset(deny)
        as_graph.set_export_filter(
            announcer, neighbor,
            lambda dest, _denied=denied: dest not in _denied)
    as_graph.validate()

    policy = PolicyTable()
    for r in graph.pbr_rules:
        policy.install(PbrRule(node=r.node, out_link=r.out_link,
                               src_prefixes=frozenset(r.src_prefixes),
                               dest_asns=frozenset(r.dest_asns),
                               description=r.description))
    return topo, as_graph, policy


def _route_pairs(graph: TopoGraph) -> List[Tuple[str, str]]:
    """The standard precompiled route set, in deterministic order.

    Every world host (clients *and* DTNs) to every provider frontend —
    the upload paths — plus every client host to every DTN host — the
    detour first legs.  Reverse paths resolve on demand (the transfer
    models derive RTT from the forward path).
    """
    frontends = [f for p in graph.providers for f in p.frontends]
    dtn_sites = set(graph.dtn_sites)
    dtn_hosts = [host for site, host in graph.hosts if site in dtn_sites]
    pairs: List[Tuple[str, str]] = []
    for _, host in graph.hosts:
        for fe in frontends:
            pairs.append((host, fe))
    for site, host in graph.hosts:
        if site in dtn_sites:
            continue
        for dtn in dtn_hosts:
            if dtn != host:
                pairs.append((host, dtn))
    return pairs


def _compute_routes(graph: TopoGraph,
                    compiled: CompiledTopology) -> List[List[int]]:
    """Resolve the standard route set over a skeleton world."""
    topo, as_graph, policy = build_skeleton(graph)
    router = Router(topo, as_graph, policy)
    node_idx = {n.name: i for i, n in enumerate(graph.nodes)}
    paths: List[List[int]] = []
    for src, dst in _route_pairs(graph):
        try:
            resolved = router.resolve(src, dst)
        except RoutingError:
            # disconnected pair (possible in ingested snapshots);
            # materialized worlds fall back to on-demand resolution
            continue
        paths.append([node_idx[name] for name in resolved.nodes])
    return paths


#: In-process memo for :func:`compile_spec`: (content hash, routes flag)
#: -> compiled topology.  A sharded fleet materializes one world per
#: site unit from the same spec; compiled topologies are read-only after
#: compilation, so units in the same process can share one instance and
#: skip recompilation.  Only dirless compiles are memoized: with a
#: ``cache_dir`` the on-disk ``routes-*.npz`` is the fast path and must
#: stay authoritative (it is written, validated, and self-healed on
#: every call).  Small and bounded — campaigns rarely juggle more than
#: a couple of worlds at once.
_COMPILE_MEMO: "OrderedDict[Tuple[str, bool], CompiledTopology]" = OrderedDict()
_COMPILE_MEMO_MAX = 8


def compile_spec(spec: TopoSpec,
                 cache_dir: Optional[str] = None,
                 routes: bool = True,
                 instrumentation: Optional[TopoInstrumentation] = None,
                 ) -> CompiledTopology:
    """Spec → compiled arrays (+ precompiled routes, cached on disk).

    Repeat dirless calls for the same spec in one process are served
    from an in-process memo (skipped when *instrumentation* is given, so
    an instrumented compile always records its real phases, and when a
    *cache_dir* is given, so the disk artifact stays authoritative).
    """
    memo_key = (spec.content_hash(), routes)
    use_memo = instrumentation is None and cache_dir is None
    if use_memo:
        hit = _COMPILE_MEMO.get(memo_key)
        if hit is not None:
            _COMPILE_MEMO.move_to_end(memo_key)
            return hit
    obs = instrumentation if instrumentation is not None else TopoInstrumentation()
    with obs.phase("generate"):
        graph = generate(spec)
    key = spec.content_hash()
    with obs.phase("arrays"):
        compiled = compile_graph(graph, spec.name, spec.source, key, spec.tag)
    if routes:
        cache = RouteCache(cache_dir, obs) if cache_dir else None
        cached = cache.load(key) if cache is not None else None
        if cached is not None:
            with obs.phase("routes_cached"):
                indptr, flat = cached
                compiled.arrays["route_indptr"] = indptr
                compiled.arrays["route_node"] = flat
                compiled.meta["routes"] = int(indptr.shape[0]) - 1
        else:
            with obs.phase("routes"):
                compiled.attach_routes(_compute_routes(graph, compiled))
            if cache is not None:
                cache.store(key, compiled.arrays["route_indptr"],
                            compiled.arrays["route_node"])
    obs.record_shape(compiled.n_sites, compiled.n_nodes, compiled.n_links,
                     compiled.n_routes)
    if use_memo:
        _COMPILE_MEMO[memo_key] = compiled  # simlint: ignore[SL1001] -- per-process memo; content is keyed by spec hash, so copies never diverge
        _COMPILE_MEMO.move_to_end(memo_key)
        while len(_COMPILE_MEMO) > _COMPILE_MEMO_MAX:
            _COMPILE_MEMO.popitem(last=False)  # simlint: ignore[SL1001] -- eviction on the per-process memo above
    return compiled


def materialize(compiled: CompiledTopology,
                seed: int = 0,
                trace: bool = False,
                metrics: Union[bool, MetricsRegistry] = False,
                profile: Union[bool, KernelProfiler] = False,
                instrumentation: Optional[TopoInstrumentation] = None,
                ) -> World:
    """Compiled topology → a live :class:`~repro.core.world.World`.

    Mirrors the hand-built testbed's construction exactly: same object
    order, same ``capjitter.<link>`` jitter streams, same provider and
    DTN wiring — so a world built through this path is byte-identical
    to one built by hand from the same records and seed.
    """
    obs = instrumentation if instrumentation is not None else TopoInstrumentation()
    if isinstance(metrics, MetricsRegistry):
        registry = metrics
    else:
        registry = MetricsRegistry(enabled=bool(metrics))
    if isinstance(profile, KernelProfiler):
        profiler = profile
    else:
        profiler = KernelProfiler() if profile else None

    with obs.phase("materialize"):
        graph = compiled.to_graph()
        sim = Simulator(profiler=profiler)
        rng = RngRegistry(seed)
        tracer = Tracer(enabled=trace)

        topo, as_graph, policy = build_skeleton(graph)
        router = Router(topo, as_graph, policy)
        router.preload(compiled.route_name_paths())
        dns = DnsResolver(topo)

        capacity_scale: Dict[str, float] = {}
        for link in graph.links:
            capacity_scale[link.name] = rng.lognormal_factor(
                f"capjitter.{link.name}", link.jitter_sigma)

        engine = NetworkEngine(sim, topo, tracer=tracer,
                               capacity_scale=capacity_scale, metrics=registry)
        world = World(
            sim=sim, topology=topo, as_graph=as_graph, policy=policy,
            router=router, dns=dns, engine=engine,
            tcp=TcpModel(metrics=registry), rng=rng, tracer=tracer,
            seed=seed, metrics=registry, profiler=profiler,
        )

        for p in graph.providers:
            factory = _PROTOCOL_FACTORIES.get(p.protocol)
            if factory is None:
                known = ", ".join(sorted(_PROTOCOL_FACTORIES))
                raise TopoError(
                    f"provider {p.name!r}: unknown protocol {p.protocol!r} "
                    f"(known: {known})")
            world.add_provider(CloudProvider(
                name=p.name, display_name=p.display_name,
                api_hostname=p.api_hostname, auth_hostname=p.auth_hostname,
                frontend_nodes=list(p.frontends), protocol=factory(),
            ))

        hosts = dict(graph.hosts)
        world.hosts.update(hosts)
        for site in graph.dtn_sites:
            if site not in hosts:
                raise TopoError(f"DTN site {site!r} has no host mapping")
            world.add_dtn(site, hosts[site])
    return world
