"""Content-addressed on-disk cache of precompiled forwarding paths.

Valley-free/policy route resolution over thousands of ASes is the
expensive phase of compilation, and it depends only on the spec (routes
are computed on *unjittered* capacities; per-seed jitter is applied at
materialize time and never changes hop sequences).  So routes are cached
under the spec's content hash: ``routes-<hash>.npz`` holding the two
route arrays, plus a JSON sidecar carrying the cache version and the
sha256 of the payload file.

Lookups have three outcomes, each counted (and exported through
:class:`~repro.topo.instrument.TopoInstrumentation` when attached):

* **hit** — sidecar checks out, payload hash matches: arrays are loaded.
* **miss** — no entry for the key: caller recomputes and stores.
* **corrupt** — entry exists but the sidecar is unreadable, the version
  is foreign, or the payload hash mismatches: the entry is ignored and
  the caller recomputes (then overwrites).  Corruption never propagates.

Writes are atomic (temp file + ``os.replace``) so a crashed compile
can't leave a half-written entry that later loads garbage.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional, Tuple

import numpy as np

from repro.core.atomic import atomic_write, atomic_write_json
from repro.errors import TopoError
from repro.topo.instrument import TopoInstrumentation

__all__ = ["RouteCache"]

#: Bump when the route array encoding changes; old entries recompute.
ROUTE_CACHE_VERSION = 1


def _file_sha256(path: str) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


class RouteCache:
    """Route-array cache rooted at one directory."""

    def __init__(self, cache_dir: str,
                 instrumentation: Optional[TopoInstrumentation] = None):
        self.cache_dir = cache_dir
        self.obs = instrumentation if instrumentation is not None \
            else TopoInstrumentation()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        os.makedirs(cache_dir, exist_ok=True)

    # -- paths ---------------------------------------------------------------

    def payload_path(self, key: str) -> str:
        self._check_key(key)
        return os.path.join(self.cache_dir, f"routes-{key}.npz")

    def sidecar_path(self, key: str) -> str:
        self._check_key(key)
        return os.path.join(self.cache_dir, f"routes-{key}.json")

    @staticmethod
    def _check_key(key: str) -> None:
        if not key or not all(c in "0123456789abcdef" for c in key):
            raise TopoError(f"route-cache key must be a hex digest, got {key!r}")

    # -- lookup --------------------------------------------------------------

    def load(self, key: str) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """``(route_indptr, route_node)`` for *key*, or None to recompute."""
        payload = self.payload_path(key)
        sidecar = self.sidecar_path(key)
        if not os.path.exists(payload) and not os.path.exists(sidecar):
            self.misses += 1
            self.obs.cache_misses.inc()
            return None
        try:
            with open(sidecar, "r") as fh:
                expect = json.load(fh)
            if expect.get("version") != ROUTE_CACHE_VERSION:
                raise ValueError(f"cache version {expect.get('version')}")
            if expect.get("key") != key:
                raise ValueError("sidecar names a different key")
            if _file_sha256(payload) != expect.get("sha256"):
                raise ValueError("payload checksum mismatch")
            with np.load(payload, allow_pickle=False) as data:
                indptr = np.asarray(data["route_indptr"], dtype=np.int64)
                flat = np.asarray(data["route_node"], dtype=np.int64)
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            self.corrupt += 1
            self.obs.cache_corrupt.inc()
            return None
        if indptr.size == 0 or indptr[0] != 0 or indptr[-1] != flat.size:
            self.corrupt += 1
            self.obs.cache_corrupt.inc()
            return None
        self.hits += 1
        self.obs.cache_hits.inc()
        return indptr, flat

    # -- store ---------------------------------------------------------------

    def store(self, key: str, route_indptr: np.ndarray,
              route_node: np.ndarray) -> str:
        """Atomically persist the route arrays under *key*."""
        payload = self.payload_path(key)
        record = {
            "version": ROUTE_CACHE_VERSION,
            "key": key,
        }
        # temp name keeps the .npz suffix so numpy doesn't append one;
        # payload publishes before its sidecar so a reader that sees the
        # sidecar always finds a complete payload to checksum.
        with atomic_write(payload, suffix=".npz") as tmp_payload:
            np.savez_compressed(tmp_payload, route_indptr=route_indptr,
                                route_node=route_node)
            record["sha256"] = _file_sha256(str(tmp_payload))
        atomic_write_json(self.sidecar_path(key), record, sort_keys=True,
                          trailing_newline=False)
        return payload
