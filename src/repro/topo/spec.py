"""Topology specifications: the serializable *source of truth* for worlds.

A :class:`TopoSpec` describes one world either **synthetically** (a
:class:`SyntheticParams` recipe the generator in :mod:`repro.topo.synth`
expands deterministically) or **explicitly** (a full :class:`TopoGraph`
carried inline — the path taken by the calibrated case study and by ITDK
ingestion).  Specs serialize to canonical JSON; their sha256 content hash
names the compiled artifact and the route cache, so campaign cells can
reference a world by hash and two machines that agree on the spec agree
on every byte of the compiled topology.

The intermediate :class:`TopoGraph` is deliberately dumb: tuples of plain
records in a *fixed order* (node/link order is semantic — IGP tie-breaks
follow adjacency insertion order, see ``docs/invariants.md``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from typing import Dict, Optional, Tuple

from repro.errors import TopoError
from repro.units import gbps, mbps, ms

__all__ = [
    "RegionSpec",
    "SyntheticParams",
    "SiteRec",
    "NodeRec",
    "LinkRec",
    "AsRec",
    "PbrRec",
    "ProviderRec",
    "TopoGraph",
    "TopoSpec",
    "PRESETS",
    "preset_spec",
    "canonical_json",
]

#: Format version of the spec JSON; bump on incompatible record changes.
SPEC_VERSION = 1


def canonical_json(payload: dict) -> str:
    """The one true JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# synthetic recipe
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegionSpec:
    """A geographic region client sites and hubs are scattered around."""

    name: str
    lat: float
    lon: float
    #: stddev (degrees) of site placement around the region center
    spread_deg: float = 3.0
    #: relative share of stub ASes / client sites placed here
    weight: float = 1.0


#: Eight-region default roughly matching where cloud POPs concentrate
#: (CloudCast's measurement footprint): NA x3, EU x2, APAC x2, SA x1.
DEFAULT_REGIONS: Tuple[RegionSpec, ...] = (
    RegionSpec("na-west", 47.61, -122.33, weight=2.0),
    RegionSpec("na-central", 41.88, -87.63, weight=2.0),
    RegionSpec("na-east", 39.04, -77.49, weight=2.0),
    RegionSpec("eu-west", 51.51, -0.13, weight=1.5),
    RegionSpec("eu-central", 50.11, 8.68, weight=1.5),
    RegionSpec("apac-ne", 35.68, 139.69, weight=1.0),
    RegionSpec("apac-se", 1.35, 103.82, weight=1.0),
    RegionSpec("sa-east", -23.55, -46.63, weight=0.5),
)


@dataclass(frozen=True)
class SyntheticParams:
    """Knobs for the deterministic AS-level world generator.

    The generated graph has four AS tiers — a full transit (tier-1) peer
    mesh, regional mid-tier networks multihomed into it, edge stub ASes
    hosting client sites, and cloud-provider ASes whose POP meshes peer
    with the transit core — plus DTN sites attached to mid-tier networks
    with fat uplinks (the paper's UAlberta pattern at scale).
    """

    seed: int = 0
    # -- tier sizes ---------------------------------------------------------
    n_transit: int = 4
    n_mid: int = 12
    n_stub: int = 40
    n_providers: int = 3
    pops_per_provider: int = 2
    n_client_sites: int = 80
    n_dtn_sites: int = 2
    # -- degree / attachment shape -----------------------------------------
    #: mean uplinks per stub AS (>=1; extra uplinks are preferential)
    mean_stub_uplinks: float = 1.6
    #: probability of a settlement-free peering between two mid ASes
    mid_peering_prob: float = 0.08
    #: preferential-attachment exponent: stub uplinks pick a mid-tier AS
    #: with probability proportional to (degree + 1) ** bias
    attachment_bias: float = 1.0
    # -- capacities ---------------------------------------------------------
    backbone_bps: float = gbps(100)
    transit_uplink_bps: float = gbps(40)
    peering_bps: float = gbps(10)
    pop_bps: float = gbps(40)
    access_median_bps: float = mbps(200)
    #: log-space sigma of the per-site access-capacity lognormal
    access_sigma: float = 0.6
    #: floor under the lognormal tail so no site starves the simulator
    access_floor_bps: float = mbps(2)
    dtn_access_bps: float = gbps(10)
    campus_bps: float = gbps(1)
    # -- delays --------------------------------------------------------------
    #: one-way delay of intra-site (host to border) links
    local_delay_s: float = ms(0.2)
    # -- stochastic world texture -------------------------------------------
    #: per-link capacity jitter sigma applied at materialize time
    capacity_jitter_sigma: float = 0.02
    #: lognormal shape of per-site client populations (sampling weights)
    site_population_median: float = 100.0
    site_population_sigma: float = 1.0
    # -- geography ----------------------------------------------------------
    regions: Tuple[RegionSpec, ...] = DEFAULT_REGIONS

    def __post_init__(self) -> None:
        if self.n_transit < 1:
            raise TopoError("need at least one transit AS")
        if self.n_providers < 1 or self.pops_per_provider < 1:
            raise TopoError("need at least one provider with one POP")
        if self.n_client_sites < 1 or self.n_stub < 1:
            raise TopoError("need at least one stub AS and one client site")
        if self.mean_stub_uplinks < 1.0:
            raise TopoError("mean_stub_uplinks must be >= 1")
        if not self.regions:
            raise TopoError("need at least one region")

    def total_ases(self) -> int:
        return self.n_transit + self.n_mid + self.n_stub + self.n_providers

    def total_sites(self) -> int:
        return (self.n_client_sites + self.n_dtn_sites
                + self.n_transit + self.n_mid
                + self.n_providers * self.pops_per_provider)

    def to_dict(self) -> dict:
        d = asdict(self)
        d["regions"] = [asdict(r) for r in self.regions]
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "SyntheticParams":
        d = dict(d)
        d["regions"] = tuple(RegionSpec(**r) for r in d.get("regions", ()))
        return cls(**d)


# ---------------------------------------------------------------------------
# graph records (the explicit representation)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SiteRec:
    """A geographic site (mirrors :class:`repro.geo.sites.Site`)."""

    name: str
    kind: str  # SiteKind value: client / intermediate / cloud_dc / exchange
    lat: float
    lon: float
    city: str = ""
    description: str = ""
    planetlab: bool = False


@dataclass(frozen=True)
class NodeRec:
    """A device (mirrors :class:`repro.net.topology.Node`)."""

    name: str
    kind: str  # NodeKind value: host / router / middlebox
    asn: int
    address: str
    hostname: str = ""
    site: str = ""
    responds: bool = True
    firewall_per_flow_bps: Optional[float] = None


@dataclass(frozen=True)
class LinkRec:
    """A link (mirrors :class:`repro.net.topology.Link`).

    ``policers`` maps a *node name* on the link to the egress policing
    rate; ``jitter_sigma`` is the log-space sigma of the multiplicative
    capacity jitter drawn at materialize time from the per-world RNG
    (stream ``capjitter.<link name>``).
    """

    u: str
    v: str
    capacity_bps: float
    delay_s: float
    loss: float = 0.0
    igp_cost: float = 1.0
    policers: Tuple[Tuple[str, float], ...] = ()
    jitter_sigma: float = 0.0

    @property
    def name(self) -> str:
        return f"{self.u}--{self.v}"


@dataclass(frozen=True)
class AsRec:
    """One autonomous system with its tier label."""

    asn: int
    name: str
    tier: str = ""  # transit / mid / stub / provider / edu / ...


@dataclass(frozen=True)
class PbrRec:
    """A policy-based-routing rule (mirrors :class:`repro.net.policy.PbrRule`)."""

    node: str
    out_link: str
    src_prefixes: Tuple[str, ...] = ()
    dest_asns: Tuple[int, ...] = ()
    description: str = ""


@dataclass(frozen=True)
class ProviderRec:
    """A cloud-storage provider and its POP frontends.

    ``protocol`` names the upload-protocol factory (``gdrive`` /
    ``dropbox`` / ``onedrive``) — export filters and lambdas don't
    serialize, so providers are data here and behaviour at materialize.
    """

    name: str
    display_name: str
    api_hostname: str
    auth_hostname: str
    frontends: Tuple[str, ...]
    protocol: str


@dataclass(frozen=True)
class TopoGraph:
    """The full explicit world description, in build order.

    Tuple order is semantic: nodes and links are added to the
    :class:`~repro.net.topology.Topology` in exactly this order so
    adjacency-driven tie-breaks reproduce byte-identically.
    ``export_deny`` encodes per-neighbor BGP export filters as *deny
    lists* of destination ASNs (the only serializable subset — and the
    only one the testbed uses).
    """

    sites: Tuple[SiteRec, ...] = ()
    ases: Tuple[AsRec, ...] = ()
    nodes: Tuple[NodeRec, ...] = ()
    links: Tuple[LinkRec, ...] = ()
    #: (provider_asn, customer_asn) pairs
    customers: Tuple[Tuple[int, int], ...] = ()
    #: (asn, asn) settlement-free pairs
    peerings: Tuple[Tuple[int, int], ...] = ()
    #: (announcer_asn, neighbor_asn, denied destination ASNs)
    export_deny: Tuple[Tuple[int, int, Tuple[int, ...]], ...] = ()
    pbr_rules: Tuple[PbrRec, ...] = ()
    providers: Tuple[ProviderRec, ...] = ()
    #: site key -> host node name (the world's transfer endpoints)
    hosts: Tuple[Tuple[str, str], ...] = ()
    #: site keys (subset of ``hosts``) that run a DTN
    dtn_sites: Tuple[str, ...] = ()
    #: site key -> relative client-population weight (sampling prior)
    populations: Tuple[Tuple[str, float], ...] = ()

    def to_dict(self) -> dict:
        return {
            "sites": [asdict(s) for s in self.sites],
            "ases": [asdict(a) for a in self.ases],
            "nodes": [asdict(n) for n in self.nodes],
            "links": [asdict(l) for l in self.links],
            "customers": [list(c) for c in self.customers],
            "peerings": [list(p) for p in self.peerings],
            "export_deny": [[a, n, list(d)] for a, n, d in self.export_deny],
            "pbr_rules": [asdict(r) for r in self.pbr_rules],
            "providers": [asdict(p) for p in self.providers],
            "hosts": [list(h) for h in self.hosts],
            "dtn_sites": list(self.dtn_sites),
            "populations": [list(p) for p in self.populations],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TopoGraph":
        def links():
            for raw in d.get("links", ()):
                raw = dict(raw)
                raw["policers"] = tuple(
                    (n, float(r)) for n, r in raw.get("policers", ()))
                yield LinkRec(**raw)

        def pbr():
            for raw in d.get("pbr_rules", ()):
                raw = dict(raw)
                raw["src_prefixes"] = tuple(raw.get("src_prefixes", ()))
                raw["dest_asns"] = tuple(raw.get("dest_asns", ()))
                yield PbrRec(**raw)

        def providers():
            for raw in d.get("providers", ()):
                raw = dict(raw)
                raw["frontends"] = tuple(raw.get("frontends", ()))
                yield ProviderRec(**raw)

        return cls(
            sites=tuple(SiteRec(**s) for s in d.get("sites", ())),
            ases=tuple(AsRec(**a) for a in d.get("ases", ())),
            nodes=tuple(NodeRec(**n) for n in d.get("nodes", ())),
            links=tuple(links()),
            customers=tuple((int(a), int(b)) for a, b in d.get("customers", ())),
            peerings=tuple((int(a), int(b)) for a, b in d.get("peerings", ())),
            export_deny=tuple(
                (int(a), int(n), tuple(int(x) for x in deny))
                for a, n, deny in d.get("export_deny", ())),
            pbr_rules=tuple(pbr()),
            providers=tuple(providers()),
            hosts=tuple((s, n) for s, n in d.get("hosts", ())),
            dtn_sites=tuple(d.get("dtn_sites", ())),
            populations=tuple((s, float(w)) for s, w in d.get("populations", ())),
        )

    def stats(self) -> Dict[str, int]:
        return {
            "sites": len(self.sites),
            "ases": len(self.ases),
            "nodes": len(self.nodes),
            "links": len(self.links),
            "hosts": len(self.hosts),
            "dtns": len(self.dtn_sites),
            "providers": len(self.providers),
        }


# ---------------------------------------------------------------------------
# the spec itself
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TopoSpec:
    """One world, by recipe or by value.

    ``source`` is ``"synthetic"`` (``synthetic`` set, ``graph`` empty —
    the generator expands it) or ``"explicit"`` (``graph`` set).  The
    content hash is computed over the canonical JSON of either form, so
    a synthetic spec hashes its *recipe*, not the expanded graph: cheap
    to exchange, and expansion is deterministic.
    """

    name: str
    source: str = "synthetic"
    synthetic: Optional[SyntheticParams] = None
    graph: Optional[TopoGraph] = None

    def __post_init__(self) -> None:
        if self.source == "synthetic":
            if self.synthetic is None:
                object.__setattr__(self, "synthetic", SyntheticParams())
            if self.graph is not None:
                raise TopoError("synthetic specs must not embed a graph")
        elif self.source == "explicit":
            if self.graph is None:
                raise TopoError("explicit specs need a graph")
            if self.synthetic is not None:
                raise TopoError("explicit specs must not carry synthetic params")
        else:
            raise TopoError(
                f"unknown spec source {self.source!r} "
                f"(expected 'synthetic' or 'explicit')")

    # -- identity -----------------------------------------------------------

    def canonical_dict(self) -> dict:
        return {
            "version": SPEC_VERSION,
            "name": self.name,
            "source": self.source,
            "synthetic": self.synthetic.to_dict() if self.synthetic else None,
            "graph": self.graph.to_dict() if self.graph else None,
        }

    def content_hash(self) -> str:
        """sha256 hex digest of the canonical JSON encoding."""
        payload = canonical_json(self.canonical_dict())
        return hashlib.sha256(payload.encode()).hexdigest()

    @property
    def tag(self) -> str:
        """Short world tag used to namespace generated site keys."""
        return f"w{self.content_hash()[:6]}"

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(self.canonical_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, d: dict) -> "TopoSpec":
        version = d.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise TopoError(
                f"spec version {version} not supported (expected {SPEC_VERSION})")
        synthetic = d.get("synthetic")
        graph = d.get("graph")
        return cls(
            name=d["name"],
            source=d.get("source", "synthetic"),
            synthetic=SyntheticParams.from_dict(synthetic) if synthetic else None,
            graph=TopoGraph.from_dict(graph) if graph else None,
        )

    @classmethod
    def from_json(cls, text: str) -> "TopoSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TopoError(f"spec is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise TopoError("spec JSON must be an object")
        return cls.from_dict(payload)


# ---------------------------------------------------------------------------
# presets
# ---------------------------------------------------------------------------

#: Named generator recipes.  ``internet`` clears the acceptance floor of
#: the scale work: >= 1000 ASes and >= 2000 sites.
PRESETS: Dict[str, SyntheticParams] = {
    "smoke": SyntheticParams(
        n_transit=2, n_mid=3, n_stub=6, n_providers=2, pops_per_provider=1,
        n_client_sites=10, n_dtn_sites=1),
    "metro": SyntheticParams(
        n_transit=4, n_mid=16, n_stub=120, n_providers=3, pops_per_provider=2,
        n_client_sites=300, n_dtn_sites=4),
    "internet": SyntheticParams(
        n_transit=8, n_mid=60, n_stub=940, n_providers=3, pops_per_provider=4,
        n_client_sites=2200, n_dtn_sites=8),
}


def preset_spec(preset: str, seed: int = 0, name: str = "") -> TopoSpec:
    """A synthetic :class:`TopoSpec` from a named preset."""
    try:
        params = PRESETS[preset]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise TopoError(f"unknown preset {preset!r}; known: {known}") from None
    params = replace(params, seed=seed)
    return TopoSpec(name=name or f"{preset}-s{seed}", source="synthetic",
                    synthetic=params)
