"""Deterministic synthetic internet generator.

Expands a synthetic :class:`~repro.topo.spec.TopoSpec` into a
:class:`~repro.topo.spec.TopoGraph`:

* a **transit tier** — tier-1 ASes in a full settlement-free peer mesh,
  one backbone router each, placed at region hubs;
* a **mid tier** — regional networks, customers of their two nearest
  transit ASes, optionally peering among themselves;
* a **stub tier** — edge ASes (campuses/eyeballs) multihomed into the
  mid tier with preferential attachment, each hosting geo-scattered
  client sites behind lognormal access links;
* **cloud providers** — one AS per provider with a POP ring; every
  provider peers with *every* transit AS (clouds peer ubiquitously, so
  valley-free routing reaches them from any stub);
* **DTN sites** — fat-uplinked intermediate hosts on mid-tier routers,
  the paper's UAlberta pattern at scale.

Every random draw comes from a named :class:`~repro.sim.rng.RngRegistry`
stream derived from ``params.seed``, and every loop runs in index order,
so the same spec expands to the same graph on any machine.  Generated
site keys are namespaced by the spec's content-hash tag
(``w1a2b3c-c0007``) so registering them never collides with the
case-study registry or with other generated worlds.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import TopoError
from repro.geo.coords import GeoPoint, haversine_km
from repro.sim.rng import RngRegistry
from repro.topo.spec import (
    AsRec,
    LinkRec,
    NodeRec,
    ProviderRec,
    RegionSpec,
    SiteRec,
    SyntheticParams,
    TopoGraph,
    TopoSpec,
)
from repro.units import propagation_delay_s

__all__ = ["generate"]

#: ASN bases per tier (disjoint for any plausible tier size).
_ASN_TRANSIT = 1000
_ASN_MID = 2000
_ASN_STUB = 10000
_ASN_PROVIDER = 60000

#: Upload-protocol factories cycled over synthetic providers.
_PROTOCOL_CYCLE = ("gdrive", "dropbox", "onedrive")

#: Canonical provider names for the first three synthetic providers, so
#: fleet defaults (``provider="gdrive"``) work on generated worlds.
_PROVIDER_NAMES = ("gdrive", "dropbox", "onedrive")


def _addr(index: int) -> str:
    """The *index*-th host address in 10.0.0.0/8 (last octet in 1..254)."""
    rest, last = divmod(index, 254)
    second, third = divmod(rest, 256)
    if second > 255:
        raise TopoError(f"address space exhausted at node index {index}")
    return f"10.{second}.{third}.{last + 1}"


def _clamp(value: float, lo: float, hi: float) -> float:
    return lo if value < lo else hi if value > hi else value


class _Builder:
    """Accumulates graph records in deterministic construction order."""

    def __init__(self, params: SyntheticParams, tag: str):
        self.p = params
        self.tag = tag
        self.rng = RngRegistry(params.seed)
        self.sites: List[SiteRec] = []
        self.ases: List[AsRec] = []
        self.nodes: List[NodeRec] = []
        self.links: List[LinkRec] = []
        self.customers: List[Tuple[int, int]] = []
        self.peerings: List[Tuple[int, int]] = []
        self.providers: List[ProviderRec] = []
        self.hosts: List[Tuple[str, str]] = []
        self.dtn_sites: List[str] = []
        self.populations: List[Tuple[str, float]] = []
        #: node name -> location, for propagation-delay computation
        self.coords: Dict[str, GeoPoint] = {}
        self._addr_counter = 0
        weights = [r.weight for r in params.regions]
        total = sum(weights)
        if total <= 0:
            raise TopoError("region weights must sum to a positive value")
        self._region_cumulative: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._region_cumulative.append(acc)

    # -- primitives ---------------------------------------------------------

    def next_addr(self) -> str:
        addr = _addr(self._addr_counter)
        self._addr_counter += 1
        return addr

    def pick_region(self, stream_name: str) -> int:
        """Weighted region index from the named stream."""
        u = float(self.rng.stream(stream_name).random())
        for i, edge in enumerate(self._region_cumulative):
            if u < edge:
                return i
        return len(self._region_cumulative) - 1

    def scatter(self, region: RegionSpec, stream_name: str,
                spread_scale: float = 1.0) -> GeoPoint:
        """A point near the region center (normal scatter, clamped)."""
        gen = self.rng.stream(stream_name)
        dlat = float(gen.normal(0.0, region.spread_deg * spread_scale))
        dlon = float(gen.normal(0.0, region.spread_deg * spread_scale))
        return GeoPoint(_clamp(region.lat + dlat, -85.0, 85.0),
                        _clamp(region.lon + dlon, -179.0, 179.0))

    def add_site(self, key: str, kind: str, loc: GeoPoint, city: str) -> str:
        self.sites.append(SiteRec(key, kind, loc.lat, loc.lon, city=city,
                                  description=f"synthetic world {self.tag}"))
        return key

    def add_node(self, name: str, kind: str, asn: int, loc: GeoPoint,
                 site: str = "", responds: bool = True) -> str:
        # hostname == name is the canonical form compile_graph normalizes
        # to; emitting it directly keeps to_graph() an exact inverse
        self.nodes.append(NodeRec(name, kind, asn, self.next_addr(),
                                  hostname=name, site=site, responds=responds))
        self.coords[name] = loc
        return name

    def add_link(self, u: str, v: str, capacity_bps: float,
                 extra_delay_s: float = 0.0) -> None:
        delay = propagation_delay_s(
            haversine_km(self.coords[u], self.coords[v])) + extra_delay_s
        self.links.append(LinkRec(u, v, capacity_bps=capacity_bps,
                                  delay_s=delay,
                                  jitter_sigma=self.p.capacity_jitter_sigma))

    # -- tiers ----------------------------------------------------------------

    def build_transit(self) -> List[str]:
        p = self.p
        routers = []
        for i in range(p.n_transit):
            region = p.regions[i % len(p.regions)]
            loc = self.scatter(region, f"topo.geo.transit.{i}", 0.25)
            site = self.add_site(f"{self.tag}-t{i:02d}", "exchange", loc,
                                 f"{region.name} transit hub")
            asn = _ASN_TRANSIT + i
            self.ases.append(AsRec(asn, f"transit{i:02d}", "transit"))
            routers.append(self.add_node(f"t{i:02d}-r", "router", asn, loc, site))
        # full tier-1 peer mesh
        for i in range(p.n_transit):
            for j in range(i + 1, p.n_transit):
                self.peerings.append((_ASN_TRANSIT + i, _ASN_TRANSIT + j))
                self.add_link(routers[i], routers[j], p.backbone_bps)
        return routers

    def build_mid(self, transit_routers: List[str]) -> List[str]:
        p = self.p
        routers = []
        for i in range(p.n_mid):
            region = p.regions[self.pick_region(f"topo.region.mid.{i}")]
            loc = self.scatter(region, f"topo.geo.mid.{i}", 0.5)
            site = self.add_site(f"{self.tag}-m{i:02d}", "exchange", loc,
                                 f"{region.name} regional network")
            asn = _ASN_MID + i
            self.ases.append(AsRec(asn, f"mid{i:02d}", "mid"))
            router = self.add_node(f"m{i:02d}-r", "router", asn, loc, site)
            routers.append(router)
            # customer of the two nearest transit ASes (ties by index)
            ranked = sorted(
                range(len(transit_routers)),
                key=lambda t: (haversine_km(loc, self.coords[transit_routers[t]]), t))
            for t in ranked[:min(2, len(ranked))]:
                self.customers.append((_ASN_TRANSIT + t, asn))
                self.add_link(router, transit_routers[t], p.transit_uplink_bps)
        # sparse settlement-free mesh among mids
        peer_gen = self.rng.stream("topo.peer.mid")
        for i in range(p.n_mid):
            for j in range(i + 1, p.n_mid):
                if float(peer_gen.random()) < p.mid_peering_prob:
                    self.peerings.append((_ASN_MID + i, _ASN_MID + j))
                    self.add_link(routers[i], routers[j], p.peering_bps)
        return routers

    def build_providers(self, transit_routers: List[str]) -> None:
        p = self.p
        for k in range(p.n_providers):
            name = (_PROVIDER_NAMES[k] if k < len(_PROVIDER_NAMES)
                    else f"cloud{k}")
            asn = _ASN_PROVIDER + k
            self.ases.append(AsRec(asn, name, "provider"))
            pop_routers: List[str] = []
            frontends: List[str] = []
            step = max(1, len(p.regions) // p.pops_per_provider)
            for j in range(p.pops_per_provider):
                region = p.regions[(j * step + k) % len(p.regions)]
                loc = self.scatter(region, f"topo.geo.pop.{name}.{j}", 0.2)
                site = self.add_site(f"{self.tag}-{name}-pop{j}", "cloud_dc",
                                     loc, f"{region.name} {name} POP")
                router = self.add_node(f"{name}-pop{j}-r", "router", asn, loc, site)
                fe = self.add_node(f"{name}-pop{j}-fe", "host", asn, loc, site)
                self.add_link(router, fe, p.pop_bps, self.p.local_delay_s)
                pop_routers.append(router)
                frontends.append(fe)
            # POP backbone ring (a single POP needs no internal mesh)
            for j in range(len(pop_routers)):
                nxt = (j + 1) % len(pop_routers)
                if nxt == j or (len(pop_routers) == 2 and j == 1):
                    continue
                self.add_link(pop_routers[j], pop_routers[nxt], p.backbone_bps)
            # peer with every transit AS via the nearest POP router, so
            # valley-free routing reaches the provider from any stub
            for t, transit_router in enumerate(transit_routers):
                self.peerings.append((_ASN_TRANSIT + t, asn))
                tloc = self.coords[transit_router]
                nearest = min(
                    range(len(pop_routers)),
                    key=lambda j: (haversine_km(tloc, self.coords[pop_routers[j]]), j))
                self.add_link(pop_routers[nearest], transit_router, p.peering_bps)
            self.providers.append(ProviderRec(
                name=name,
                display_name=name.capitalize(),
                api_hostname=f"api.{name}.synth",
                auth_hostname=f"auth.{name}.synth",
                frontends=tuple(frontends),
                protocol=_PROTOCOL_CYCLE[k % len(_PROTOCOL_CYCLE)],
            ))

    def build_stubs(self, mid_routers: List[str]) -> Dict[int, Tuple[str, GeoPoint]]:
        """Stub ASes; returns asn -> (border router, location)."""
        p = self.p
        if not mid_routers:
            raise TopoError("stub tier needs at least one mid-tier AS")
        mid_region: Dict[int, int] = {}
        for i, router in enumerate(mid_routers):
            loc = self.coords[router]
            mid_region[i] = min(
                range(len(p.regions)),
                key=lambda r: (haversine_km(
                    loc, GeoPoint(p.regions[r].lat, p.regions[r].lon)), r))
        degree = [0] * len(mid_routers)
        attach_gen = self.rng.stream("topo.attach.stub")
        borders: Dict[int, Tuple[str, GeoPoint]] = {}
        for i in range(p.n_stub):
            region_idx = self.pick_region(f"topo.region.stub.{i}")
            loc = self.scatter(p.regions[region_idx], f"topo.geo.stub.{i}")
            asn = _ASN_STUB + i
            self.ases.append(AsRec(asn, f"stub{i:04d}", "stub"))
            border = self.add_node(f"s{i:04d}-br", "router", asn, loc)
            borders[asn] = (border, loc)
            # number of uplinks: 1 + Poisson(mean - 1), capped at n_mid
            extra = int(attach_gen.poisson(p.mean_stub_uplinks - 1.0))
            n_uplinks = min(1 + extra, len(mid_routers))
            # first uplink prefers same-region mids; extras go anywhere
            regional = [m for m in range(len(mid_routers))
                        if mid_region[m] == region_idx]
            chosen: List[int] = []
            for u in range(n_uplinks):
                pool = regional if (u == 0 and regional) else \
                    list(range(len(mid_routers)))
                pool = [m for m in pool if m not in chosen]
                if not pool:
                    break
                weights = [(degree[m] + 1.0) ** p.attachment_bias for m in pool]
                total = sum(weights)
                pick = float(attach_gen.random()) * total
                acc = 0.0
                m_sel = pool[-1]
                for m, w in zip(pool, weights):
                    acc += w
                    if pick < acc:
                        m_sel = m
                        break
                chosen.append(m_sel)
                degree[m_sel] += 1
                self.customers.append((_ASN_MID + m_sel, asn))
                self.add_link(border, mid_routers[m_sel], p.campus_bps)
        return borders

    def build_clients(self, borders: Dict[int, Tuple[str, GeoPoint]]) -> None:
        p = self.p
        stub_by_region: Dict[int, List[int]] = {}
        for asn in sorted(borders):
            _, loc = borders[asn]
            region_idx = min(
                range(len(p.regions)),
                key=lambda r: (haversine_km(
                    loc, GeoPoint(p.regions[r].lat, p.regions[r].lon)), r))
            stub_by_region.setdefault(region_idx, []).append(asn)
        all_stubs = sorted(borders)
        place_gen = self.rng.stream("topo.place.client")
        for i in range(p.n_client_sites):
            region_idx = self.pick_region(f"topo.region.client.{i}")
            pool = stub_by_region.get(region_idx) or all_stubs
            asn = pool[int(place_gen.integers(0, len(pool)))]
            border, _ = borders[asn]
            loc = self.scatter(p.regions[region_idx], f"topo.geo.client.{i}")
            site = self.add_site(f"{self.tag}-c{i:04d}", "client", loc,
                                 p.regions[region_idx].name)
            host = self.add_node(f"c{i:04d}-h", "host", asn, loc, site)
            capacity = p.access_median_bps * self.rng.lognormal_factor(
                f"topo.access.cap.{i}", p.access_sigma)
            # floor the lognormal tail so no site starves the simulator
            capacity = max(capacity, p.access_floor_bps)
            self.links.append(LinkRec(
                host, border, capacity_bps=capacity,
                delay_s=propagation_delay_s(
                    haversine_km(loc, self.coords[border])) + p.local_delay_s,
                jitter_sigma=p.capacity_jitter_sigma))
            self.hosts.append((site, host))
            weight = p.site_population_median * self.rng.lognormal_factor(
                f"topo.population.{i}", p.site_population_sigma)
            self.populations.append((site, weight))

    def build_dtns(self, mid_routers: List[str]) -> None:
        p = self.p
        for j in range(p.n_dtn_sites):
            region = p.regions[j % len(p.regions)]
            loc = self.scatter(region, f"topo.geo.dtn.{j}", 0.3)
            site = self.add_site(f"{self.tag}-d{j}", "intermediate", loc,
                                 f"{region.name} DTN")
            nearest = min(
                range(len(mid_routers)),
                key=lambda m: (haversine_km(loc, self.coords[mid_routers[m]]), m))
            host = self.add_node(f"d{j}-dtn", "host", _ASN_MID + nearest, loc, site)
            self.links.append(LinkRec(
                host, mid_routers[nearest], capacity_bps=p.dtn_access_bps,
                delay_s=propagation_delay_s(
                    haversine_km(loc, self.coords[mid_routers[nearest]]))
                + p.local_delay_s,
                jitter_sigma=p.capacity_jitter_sigma))
            self.hosts.append((site, host))
            self.dtn_sites.append(site)

    def graph(self) -> TopoGraph:
        return TopoGraph(
            sites=tuple(self.sites),
            ases=tuple(self.ases),
            nodes=tuple(self.nodes),
            links=tuple(self.links),
            customers=tuple(self.customers),
            peerings=tuple(self.peerings),
            providers=tuple(self.providers),
            hosts=tuple(self.hosts),
            dtn_sites=tuple(self.dtn_sites),
            populations=tuple(self.populations),
        )


def generate(spec: TopoSpec) -> TopoGraph:
    """Expand a spec into its explicit graph.

    Explicit specs return their embedded graph unchanged; synthetic
    specs run the generator.  Deterministic: same spec, same graph.
    """
    if spec.source == "explicit":
        assert spec.graph is not None
        return spec.graph
    assert spec.synthetic is not None
    params = spec.synthetic
    b = _Builder(params, spec.tag)
    transit = b.build_transit()
    mids = b.build_mid(transit)
    b.build_providers(transit)
    borders = b.build_stubs(mids)
    b.build_clients(borders)
    b.build_dtns(mids)
    return b.graph()
