"""File-transfer tools: test files, rsync protocol model, DTN relays.

The paper moves data in two ways: ``rsync`` between the user machine and
the intermediate node, and provider REST APIs for the final leg.  This
package supplies the rsync side plus the data-transfer-node (DTN) staging
logic; :mod:`repro.cloud` supplies the API side.
"""

from repro.transfer.api_client import CloudClient, DownloadReport, UploadReport
from repro.transfer.checksums import RollingChecksum, block_signatures, strong_checksum
from repro.transfer.dtn import DataTransferNode, RelayMode, pipelined_relay
from repro.transfer.files import FileSpec, generate_bytes, make_test_files
from repro.transfer.rsync import RsyncDelta, RsyncSession, RsyncStats, apply_delta, compute_delta

__all__ = [
    "CloudClient",
    "DataTransferNode",
    "DownloadReport",
    "FileSpec",
    "RelayMode",
    "RollingChecksum",
    "RsyncDelta",
    "RsyncSession",
    "RsyncStats",
    "UploadReport",
    "apply_delta",
    "block_signatures",
    "compute_delta",
    "generate_bytes",
    "make_test_files",
    "pipelined_relay",
    "strong_checksum",
]
