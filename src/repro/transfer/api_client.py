"""Cloud-storage API client: executes uploads/downloads over the WAN.

The simulated counterpart of the paper's "very basic programs in Java,
using the APIs of the cloud-storage providers".  An upload is a kernel
coroutine: OAuth2 token fetch (first use only — later runs reuse the
cached token, which is part of why the paper discards warm-up runs), TLS
connect, session initiation, chunked payload PUTs with per-request server
time, and the final commit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import units
from repro.cloud.http import HttpsSession
from repro.cloud.provider import CloudProvider
from repro.cloud.oauth import TokenCache
from repro.errors import CloudApiError
from repro.net.dns import DnsResolver
from repro.net.engine import NetworkEngine
from repro.net.routing import Router
from repro.net.tcp import TcpModel, TcpPathParams
from repro.obs.metrics import RATE_BUCKETS, MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer
from repro.transfer.files import FileSpec

__all__ = ["CloudClient", "UploadReport", "DownloadReport"]


@dataclass(frozen=True)
class UploadReport:
    """Everything measured about one API upload."""

    provider: str
    src: str
    frontend: str
    file_name: str
    size_bytes: int
    start_time: float
    end_time: float
    chunk_count: int
    token_fetched: bool
    events: Tuple[Tuple[float, str], ...] = ()

    @property
    def duration_s(self) -> float:
        return self.end_time - self.start_time

    @property
    def throughput_bps(self) -> float:
        return units.throughput_bps(self.size_bytes, self.duration_s)


@dataclass(frozen=True)
class DownloadReport:
    """Everything measured about one API download."""

    provider: str
    dst: str
    frontend: str
    file_name: str
    size_bytes: int
    start_time: float
    end_time: float
    chunk_count: int

    @property
    def duration_s(self) -> float:
        return self.end_time - self.start_time


class CloudClient:
    """Drives provider APIs from a given host over the simulated network."""

    def __init__(
        self,
        sim: Simulator,
        engine: NetworkEngine,
        router: Router,
        dns: DnsResolver,
        tcp: Optional[TcpModel] = None,
        token_cache: Optional[TokenCache] = None,
        rng: Optional[np.random.Generator] = None,
        app_name: str = "repro-bench",
        metrics: Optional[MetricsRegistry] = None,
        spans: Optional[SpanTracer] = None,
    ):
        self.sim = sim
        self.engine = engine
        self.router = router
        self.dns = dns
        self.tcp = tcp if tcp is not None else TcpModel()
        self.token_cache = token_cache if token_cache is not None else TokenCache()
        self.rng = rng
        self.app_name = app_name
        self._secrets: Dict[Tuple[str, str], str] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled=False)
        self.spans = spans if spans is not None else SpanTracer(sim, Tracer(enabled=False))
        self._m_uploads = self.metrics.counter(
            "repro_api_uploads_total", "API uploads completed")
        self._m_downloads = self.metrics.counter(
            "repro_api_downloads_total", "API downloads completed")
        self._m_chunks = self.metrics.counter(
            "repro_api_chunks_total", "Payload chunks transferred")
        self._m_token_fetches = self.metrics.counter(
            "repro_api_token_fetches_total", "OAuth2 token fetches")
        self._m_upload_s = self.metrics.histogram(
            "repro_api_upload_seconds", "End-to-end API upload duration")
        self._m_upload_bps = self.metrics.histogram(
            "repro_api_upload_throughput_bps", "API upload throughput",
            buckets=RATE_BUCKETS)

    # -- helpers -----------------------------------------------------------

    def _jitter(self, mean_s: float, sigma: float) -> float:
        if mean_s <= 0:
            return 0.0
        if self.rng is None or sigma <= 0:
            return mean_s
        return mean_s * float(np.exp(self.rng.normal(0.0, sigma)))

    def _credentials(self, host: str, provider: CloudProvider) -> Tuple[str, str]:
        key = (host, provider.name)
        client_id = f"{self.app_name}@{host}"
        if key not in self._secrets:
            # Idempotent: another CloudClient instance (an earlier run in
            # the same world) may have registered this app already.
            self._secrets[key] = provider.oauth.ensure_client(client_id)
        return client_id, self._secrets[key]

    def _session(self, provider: CloudProvider, params: TcpPathParams) -> HttpsSession:
        return HttpsSession(
            self.sim, self.tcp, params,
            fault=provider.fault_injector,
            retry=provider.retry_policy,
            metrics=self.metrics,
            endpoint=provider.name,
        )

    def _ensure_token(self, host: str, provider: CloudProvider, events: List):
        """Coroutine: fetch a bearer token unless a valid one is cached."""
        token = self.token_cache.get_valid(host, provider.name, self.sim.now)
        if token is not None:
            return token, False
        with self.spans.span("transfer.api", "token_fetch", provider=provider.name):
            auth_node = self.dns.resolve(provider.auth_hostname, client_node=host)
            auth_path = self.router.resolve(host, auth_node)
            params = TcpPathParams(rtt_s=auth_path.rtt_s, loss=auth_path.loss)
            session = self._session(provider, params)
            yield from session.request(
                self._jitter(provider.protocol.auth_server_s,
                             provider.protocol.server_jitter_sigma),
                label="POST /oauth2/token",
            )
            client_id, secret = self._credentials(host, provider)
            token = provider.oauth.issue_token(client_id, secret, self.sim.now)
            self.token_cache.store(host, provider.name, token)
        self._m_token_fetches.inc(provider=provider.name)
        events.append((self.sim.now, "POST /oauth2/token"))
        return token, True

    def _refresh_if_expired(self, host: str, provider: CloudProvider, token, events: List):
        """Coroutine: long uploads can outlive a bearer token; on expiry the
        client refreshes before the next request (the 401-retry path of
        real SDKs, taken proactively here)."""
        if token.valid_at(self.sim.now):
            return token
        refreshed, _ = yield from self._ensure_token(host, provider, events)
        return refreshed

    # -- uploads -------------------------------------------------------------

    def upload(
        self,
        src: str,
        provider: CloudProvider,
        spec: FileSpec,
        remote_path: Optional[str] = None,
    ):
        """Coroutine: upload *spec* from host *src*; returns UploadReport."""
        start = self.sim.now
        events: List[Tuple[float, str]] = []
        proto = provider.protocol
        frontend = provider.frontend_for(self.dns, src)
        path = self.router.resolve(src, frontend)
        params = TcpPathParams(rtt_s=path.rtt_s, loss=path.loss)

        with self.spans.span("transfer.api", f"upload:{spec.name}",
                             provider=provider.name, src=src,
                             bytes=int(spec.size_bytes)):
            token, token_fetched = yield from self._ensure_token(src, provider, events)

            # TLS connect + session initiation (retried on transient errors)
            session = self._session(provider, params)
            yield from session.connect()
            yield from session.request(
                self._jitter(proto.session_init_server_s, proto.server_jitter_sigma),
                label=proto.init_request_name,
            )
            events.append((self.sim.now, proto.init_request_name))

            directions = self.router.path_directions(path)
            ceiling = min(self.tcp.rate_ceiling_bps(params), path.per_flow_cap_bps)
            sizes = proto.chunk_sizes(spec.size_bytes)
            for index, chunk in enumerate(sizes):
                deficit_bytes = 0.0
                if index == 0:
                    est = self.engine.estimate_rate(directions, ceiling)
                    if est > 0 and np.isfinite(est):
                        deficit_bytes = (
                            self.tcp.startup_penalty_s(params, est)
                            * units.bytes_per_sec(est)
                        )
                with self.spans.span("transfer.api", f"chunk#{index}",
                                     bytes=int(chunk)):
                    transfer = self.engine.start_transfer(
                        directions,
                        chunk + proto.request_overhead_bytes,
                        ceiling_bps=ceiling,
                        label=f"api:{provider.name}:{src}:{spec.name}#{index}",
                        startup_deficit_bytes=deficit_bytes,
                    )
                    yield transfer.done
                    yield from session.request(
                        self._jitter(proto.per_chunk_server_s, proto.server_jitter_sigma),
                        label=f"chunk {index}",
                    )
                self._m_chunks.inc(provider=provider.name)
                events.append((self.sim.now,
                               proto.chunk_request_name.replace("{index}", str(index))))

            # commit / finalize
            token = yield from self._refresh_if_expired(src, provider, token, events)
            yield from session.request(
                self._jitter(proto.commit_server_s, proto.server_jitter_sigma),
                label=proto.commit_request_name,
            )
            events.append((self.sim.now, proto.commit_request_name))

            # The commit request itself takes time, so a token that was
            # valid when it was sent can be expired by the time the server
            # checks it — re-check at validation time (the 401-retry a
            # real SDK would absorb).
            token = yield from self._refresh_if_expired(src, provider, token, events)
            provider.oauth.validate(token.value, self.sim.now)
            provider.store.put(
                remote_path or spec.name,
                spec.size_bytes,
                spec.content_digest(),
                owner=src,
                now=self.sim.now,
            )
        self._m_uploads.inc(provider=provider.name)
        duration = self.sim.now - start
        self._m_upload_s.observe(duration, provider=provider.name)
        if duration > 0:
            self._m_upload_bps.observe(
                units.throughput_bps(spec.size_bytes, duration),
                provider=provider.name)
        return UploadReport(
            provider=provider.name,
            src=src,
            frontend=frontend,
            file_name=spec.name,
            size_bytes=spec.size_bytes,
            start_time=start,
            end_time=self.sim.now,
            chunk_count=len(sizes),
            token_fetched=token_fetched,
            events=tuple(events),
        )

    # -- downloads ----------------------------------------------------------

    def download(self, dst: str, provider: CloudProvider, remote_path: str):
        """Coroutine: download *remote_path* to host *dst*; returns DownloadReport."""
        start = self.sim.now
        events: List[Tuple[float, str]] = []
        proto = provider.protocol
        frontend = provider.frontend_for(self.dns, dst)
        obj = provider.store.get(remote_path)  # 404 surfaces before any traffic

        up_path = self.router.resolve(dst, frontend)       # request direction
        down_path = self.router.resolve(frontend, dst)     # data direction
        params = TcpPathParams(rtt_s=up_path.rtt_s, loss=down_path.loss)

        with self.spans.span("transfer.api", f"download:{remote_path}",
                             provider=provider.name, dst=dst,
                             bytes=int(obj.size_bytes)):
            yield from self._ensure_token(dst, provider, events)
            session = self._session(provider, params)
            yield from session.connect()
            yield from session.request(
                self._jitter(proto.session_init_server_s, proto.server_jitter_sigma),
                label="GET (ranged download start)",
            )

            directions = self.router.path_directions(down_path)
            ceiling = min(self.tcp.rate_ceiling_bps(params), down_path.per_flow_cap_bps)
            sizes = proto.chunk_sizes(obj.size_bytes)
            for index, chunk in enumerate(sizes):
                deficit_bytes = 0.0
                if index == 0:
                    est = self.engine.estimate_rate(directions, ceiling)
                    if est > 0 and np.isfinite(est):
                        deficit_bytes = (
                            self.tcp.startup_penalty_s(params, est)
                            * units.bytes_per_sec(est)
                        )
                with self.spans.span("transfer.api", f"chunk#{index}",
                                     bytes=int(chunk)):
                    transfer = self.engine.start_transfer(
                        directions,
                        chunk + proto.request_overhead_bytes,
                        ceiling_bps=ceiling,
                        label=f"api-dl:{provider.name}:{dst}:{remote_path}#{index}",
                        startup_deficit_bytes=deficit_bytes,
                    )
                    yield transfer.done
                    yield from session.request(
                        self._jitter(proto.per_chunk_server_s, proto.server_jitter_sigma),
                        label=f"dl chunk {index}",
                    )
                self._m_chunks.inc(provider=provider.name)
        self._m_downloads.inc(provider=provider.name)
        return DownloadReport(
            provider=provider.name,
            dst=dst,
            frontend=frontend,
            file_name=remote_path,
            size_bytes=obj.size_bytes,
            start_time=start,
            end_time=self.sim.now,
            chunk_count=len(sizes),
        )
