"""Rolling and strong checksums — the primitives under rsync.

The rolling checksum is the Adler-style weak hash rsync slides over the
sender's file one byte at a time; candidate matches are confirmed with a
strong (truncated SHA-256 here, MD4/MD5 in stock rsync) block hash.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["RollingChecksum", "strong_checksum", "block_signatures", "BlockSignature"]

_MOD = 1 << 16


class RollingChecksum:
    """rsync's weak rolling checksum (a1 = sum, a2 = weighted sum).

    Supports O(1) rolling: remove the leading byte, append a trailing one.

    >>> data = b"hello world, hello rsync"
    >>> rc = RollingChecksum(data[:8])
    >>> for i in range(8, len(data)):
    ...     rc.roll(data[i - 8], data[i])
    >>> rc.digest() == RollingChecksum(data[-8:]).digest()
    True
    """

    def __init__(self, block: bytes):
        if not block:
            raise ValueError("rolling checksum needs a non-empty block")
        self.length = len(block)
        a1 = 0
        a2 = 0
        n = self.length
        for i, byte in enumerate(block):
            a1 += byte
            a2 += (n - i) * byte
        self.a1 = a1 % _MOD
        self.a2 = a2 % _MOD

    def roll(self, out_byte: int, in_byte: int) -> None:
        """Slide the window one byte: drop *out_byte*, add *in_byte*."""
        self.a1 = (self.a1 - out_byte + in_byte) % _MOD
        self.a2 = (self.a2 - self.length * out_byte + self.a1) % _MOD

    def digest(self) -> int:
        """32-bit weak checksum."""
        return (self.a2 << 16) | self.a1


def strong_checksum(block: bytes, nbytes: int = 16) -> bytes:
    """Truncated SHA-256 (rsync uses MD4/MD5; collision odds comparable)."""
    return hashlib.sha256(block).digest()[:nbytes]


@dataclass(frozen=True)
class BlockSignature:
    """Signature of one receiver-side block."""

    index: int
    weak: int
    strong: bytes


def block_signatures(data: bytes, block_size: int) -> List[BlockSignature]:
    """Receiver-side signatures for every ``block_size`` block of *data*.

    The final partial block (if any) is *not* signed, matching rsync —
    trailing bytes arrive as literals.
    """
    if block_size <= 0:
        raise ValueError("block size must be positive")
    sigs = []
    for index in range(len(data) // block_size):
        block = data[index * block_size:(index + 1) * block_size]
        sigs.append(
            BlockSignature(index, RollingChecksum(block).digest(), strong_checksum(block))
        )
    return sigs
