"""Data Transfer Nodes (DTNs): staging intermediaries for routing detours.

A DTN is the "Intermediate Node" of the paper's Fig. 1: the user machine
rsyncs the file to it, then the DTN uploads to the cloud provider.  This
module supplies:

* :class:`DataTransferNode` — the staging area (files are deleted before
  each benchmarked run, per the paper's protocol, so rsync never gets a
  delta advantage; keeping the cache is the extension we ablate),
* :class:`RelayMode` — store-and-forward (the paper: total = t1 + t2) vs
  pipelined cut-through (our extension: total ≈ max(t1, t2) + ramp),
* :func:`pipelined_relay` — a kernel coroutine that overlaps the two legs
  chunk by chunk with a bounded staging buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Generator, List, Optional

from repro import units
from repro.errors import TransferError
from repro.sim.kernel import AllOf, Signal, Simulator
from repro.transfer.files import FileSpec

__all__ = ["RelayMode", "DataTransferNode", "pipelined_relay"]


class RelayMode(Enum):
    """How a detour moves data through the intermediate node."""

    STORE_AND_FORWARD = "store_and_forward"  # paper: finish leg 1, then leg 2
    PIPELINED = "pipelined"                  # extension: overlap the legs


@dataclass
class _StagedFile:
    spec: FileSpec
    staged_at: float
    digest: str


class DataTransferNode:
    """Staging area living on a topology host.

    ``max_sessions`` optionally bounds concurrent relay sessions (rsync
    daemons cap connections; Globus DTNs cap concurrent transfers); call
    :meth:`attach_session_limit` with the simulator to activate it, after
    which :attr:`sessions` is a FIFO :class:`~repro.sim.resources.Resource`.
    """

    def __init__(self, host: str, capacity_bytes: Optional[float] = None,
                 max_sessions: Optional[int] = None):
        if max_sessions is not None and max_sessions < 1:
            raise TransferError(f"DTN {host}: max_sessions must be >= 1")
        self.host = host
        self.capacity_bytes = capacity_bytes
        self.max_sessions = max_sessions
        self.sessions = None  # set by attach_session_limit
        self._staged: Dict[str, _StagedFile] = {}

    def attach_session_limit(self, sim: Simulator) -> None:
        """Create the session-slot resource (idempotent, no-op if unbounded)."""
        if self.max_sessions is not None and self.sessions is None:
            from repro.sim.resources import Resource

            self.sessions = Resource(sim, self.max_sessions, name=f"dtn:{self.host}")

    # -- staging -------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return sum(f.spec.size_bytes for f in self._staged.values())

    def has(self, name: str) -> bool:
        return name in self._staged

    def stage(self, spec: FileSpec, now: float = 0.0) -> None:
        """Record *spec* as present on the DTN's disk."""
        new_usage = self.used_bytes + spec.size_bytes
        if self.has(spec.name):
            new_usage -= self._staged[spec.name].spec.size_bytes
        if self.capacity_bytes is not None and new_usage > self.capacity_bytes:
            raise TransferError(
                f"DTN {self.host}: staging {spec.name} would need {new_usage} bytes "
                f"(capacity {self.capacity_bytes})"
            )
        self._staged[spec.name] = _StagedFile(spec, now, spec.content_digest())

    def delete(self, name: str) -> bool:
        """Remove a staged file (the paper's pre-run cleanup). True if present."""
        return self._staged.pop(name, None) is not None

    def clear(self) -> None:
        """Delete everything (fresh benchmarking state)."""
        self._staged.clear()

    def staged_names(self) -> List[str]:
        return sorted(self._staged)

    def digest_of(self, name: str) -> str:
        try:
            return self._staged[name].digest
        except KeyError:
            raise TransferError(f"DTN {self.host}: no staged file {name!r}") from None


LegRunner = Callable[[float, int], Generator]
"""A leg executor: ``leg(chunk_bytes, chunk_index)`` returns a kernel
generator that completes when the chunk has crossed that leg."""


def pipelined_relay(
    sim: Simulator,
    total_bytes: float,
    leg_in: LegRunner,
    leg_out: LegRunner,
    chunk_bytes: float = 8 * units.MiB,
    max_buffered_chunks: int = 4,
) -> Generator:
    """Cut-through relay: overlap ingest and egress chunk by chunk.

    The producer runs ``leg_in`` per chunk; each completed chunk is handed
    to the consumer, which runs ``leg_out``.  A bounded buffer models the
    DTN's staging memory: the producer stalls when it gets
    ``max_buffered_chunks`` ahead.

    Yields from inside a simulation process; returns total elapsed time.
    """
    if total_bytes <= 0:
        raise TransferError("relay size must be positive")
    if chunk_bytes <= 0 or max_buffered_chunks < 1:
        raise TransferError("bad pipelining parameters")

    n_chunks = int(total_bytes // chunk_bytes)
    sizes = [chunk_bytes] * n_chunks
    tail = total_bytes - n_chunks * chunk_bytes
    if tail > 0:
        sizes.append(tail)

    start = sim.now
    arrived: List[Signal] = [Signal(sim, name=f"relay-chunk-{i}") for i in range(len(sizes))]
    consumed: List[Signal] = [Signal(sim, name=f"relay-slot-{i}") for i in range(len(sizes))]

    def producer():
        for i, size in enumerate(sizes):
            if i >= max_buffered_chunks:
                # wait until the consumer frees the slot `i - max_buffered`
                yield consumed[i - max_buffered_chunks]
            yield from leg_in(size, i)
            arrived[i].trigger(sim.now)

    def consumer():
        for i, size in enumerate(sizes):
            yield arrived[i]
            yield from leg_out(size, i)
            consumed[i].trigger(sim.now)

    p = sim.process(producer(), name="relay-producer")
    c = sim.process(consumer(), name="relay-consumer")
    yield AllOf([p, c])
    if p.error:
        raise p.error
    if c.error:
        raise c.error
    return sim.now - start
