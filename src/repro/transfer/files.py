"""Test files: the simulated equivalent of ``dd if=/dev/urandom``.

The paper benchmarks with binary files of 10, 20, 30, 40, 50, 60 and
100 MB filled with random data, "resistant to any compression-based
performance artifacts".  A :class:`FileSpec` describes such a file by
(size, entropy class, seed); small specs can be *materialized* to real
bytes (used by the rsync protocol tests), large ones stay descriptive —
transfer cost depends only on size and compressibility.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Sequence

import numpy as np

from repro import units
from repro.errors import TransferError

__all__ = ["Entropy", "FileSpec", "generate_bytes", "make_test_files", "PAPER_SIZES_MB"]

#: The file-size sweep used throughout the paper's evaluation (MB).
PAPER_SIZES_MB: Sequence[int] = (10, 20, 30, 40, 50, 60, 100)

#: Materialization guard: specs above this size stay descriptive.
MAX_MATERIALIZE_BYTES = 64 * units.MiB


class Entropy(Enum):
    """Compressibility class of a file's contents."""

    RANDOM = "random"        # incompressible (dd from /dev/urandom)
    TEXT = "text"            # ~3x compressible
    ZEROS = "zeros"          # fully compressible (dd from /dev/zero)

    @property
    def compression_ratio(self) -> float:
        """Approximate compressed/original size under a gzip-class codec."""
        return {"random": 1.0, "text": 0.35, "zeros": 0.01}[self.value]


@dataclass(frozen=True)
class FileSpec:
    """Description of a test file."""

    name: str
    size_bytes: int
    entropy: Entropy = Entropy.RANDOM
    seed: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise TransferError(f"file {self.name!r}: size must be positive")

    @property
    def size_mb(self) -> float:
        return units.bytes_to_mb(self.size_bytes)

    def compressed_bytes(self) -> float:
        """Wire size if a compressing transport were used."""
        return self.size_bytes * self.entropy.compression_ratio

    def materialize(self) -> bytes:
        """Produce the actual file contents (small files only)."""
        if self.size_bytes > MAX_MATERIALIZE_BYTES:
            raise TransferError(
                f"file {self.name!r} is {self.size_bytes} bytes; only specs up to "
                f"{MAX_MATERIALIZE_BYTES} are materialized — use the size-based cost model"
            )
        return generate_bytes(self.size_bytes, self.entropy, self.seed)

    def content_digest(self) -> str:
        """Stable digest identifying the (virtual) contents."""
        if self.size_bytes <= MAX_MATERIALIZE_BYTES:
            return hashlib.sha256(self.materialize()).hexdigest()
        meta = f"{self.size_bytes}:{self.entropy.value}:{self.seed}".encode()
        return hashlib.sha256(meta).hexdigest()


def generate_bytes(size_bytes: int, entropy: Entropy = Entropy.RANDOM, seed: int = 0) -> bytes:
    """The ``dd``-equivalent: deterministic pseudo-random file contents."""
    if size_bytes < 0:
        raise TransferError("size must be non-negative")
    if entropy is Entropy.ZEROS:
        return bytes(size_bytes)
    # File *contents* are part of a FileSpec's identity, not of simulation
    # state: they derive from the spec's own seed so the same spec always
    # materializes the same bytes, independent of any master seed.
    rng = np.random.default_rng(seed)  # simlint: ignore[SL103] -- content identity, seeded per FileSpec
    if entropy is Entropy.RANDOM:
        return rng.integers(0, 256, size=size_bytes, dtype=np.uint8).tobytes()
    # TEXT: words over a small alphabet with spaces/newlines — compressible
    alphabet = np.frombuffer(b"etaoinshrdlu bcfgmpwyv,.\n", dtype=np.uint8)
    idx = rng.integers(0, len(alphabet), size=size_bytes)
    return alphabet[idx].tobytes()


def make_test_files(
    sizes_mb: Sequence[float] = PAPER_SIZES_MB,
    entropy: Entropy = Entropy.RANDOM,
    seed: int = 0,
) -> List[FileSpec]:
    """The paper's benchmark file set (random binary, 10..100 MB)."""
    specs = []
    for i, size in enumerate(sizes_mb):
        specs.append(
            FileSpec(
                name=f"test-{size:g}MB.bin",
                size_bytes=int(units.mb(size)),
                entropy=entropy,
                seed=seed + i,
            )
        )
    return specs
