"""rsync: the delta-transfer protocol and its network cost model.

Two layers:

* a **real implementation** of the rsync algorithm (signatures, rolling
  match, delta, apply) operating on byte strings — exercised by tests on
  materialized files, so the "no benefit from deltas on fresh random
  files" claim in the paper's Sec. II is demonstrated rather than assumed;
* a **cost model** (:class:`RsyncSession`) that executes a transfer over
  the simulated network: ssh/TCP handshakes, file-list exchange, then the
  delta wire bytes as a fluid flow.

The paper always deletes the file from the intermediate node before each
run and uses incompressible data, so every benchmarked rsync degenerates
to a full-file literal transfer — but the machinery stays honest for the
general case (and for the DTN cache extension).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro import units
from repro.errors import TransferError
from repro.net.engine import NetworkEngine, TransferResult
from repro.net.routing import ResolvedPath, Router
from repro.net.tcp import TcpModel, TcpPathParams
from repro.transfer.checksums import (
    BlockSignature,
    RollingChecksum,
    block_signatures,
    strong_checksum,
)
from repro.transfer.files import FileSpec

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "RsyncDelta",
    "RsyncStats",
    "RsyncSession",
    "compute_delta",
    "apply_delta",
]

DEFAULT_BLOCK_SIZE = 2048

#: Wire overhead per delta op / per literal byte is negligible next to
#: payload; the fixed protocol framing below is what matters for small files.
FILE_LIST_BYTES = 512          # per-file metadata exchange
PER_BLOCK_SIG_BYTES = 20       # weak (4) + strong (16) checksum per block

Op = Union[Tuple[str, int], Tuple[str, bytes]]  # ("copy", idx) | ("literal", data)


@dataclass(frozen=True)
class RsyncDelta:
    """Sender-computed instructions to reconstruct the new file."""

    ops: Tuple[Op, ...]
    block_size: int

    @property
    def literal_bytes(self) -> int:
        return sum(len(op[1]) for op in self.ops if op[0] == "literal")

    @property
    def matched_bytes(self) -> int:
        return sum(self.block_size for op in self.ops if op[0] == "copy")


@dataclass(frozen=True)
class RsyncStats:
    """Accounting for one rsync transfer."""

    file_bytes: int
    literal_bytes: int
    matched_bytes: int
    signature_bytes: int
    wire_bytes: float  # what actually crossed the network

    @property
    def speedup(self) -> float:
        """rsync's reported 'speedup' = file size / wire bytes."""
        return self.file_bytes / self.wire_bytes if self.wire_bytes else float("inf")


def compute_delta(old: bytes, new: bytes, block_size: int = DEFAULT_BLOCK_SIZE) -> RsyncDelta:
    """The rsync sender algorithm: match *new* against *old*'s blocks."""
    if block_size <= 0:
        raise TransferError("block size must be positive")
    sigs = block_signatures(old, block_size)
    by_weak: dict[int, List[BlockSignature]] = {}
    for sig in sigs:
        by_weak.setdefault(sig.weak, []).append(sig)

    ops: List[Op] = []
    literal_start = 0
    i = 0
    n = len(new)
    rc: Optional[RollingChecksum] = None
    while i + block_size <= n:
        if rc is None:
            rc = RollingChecksum(new[i:i + block_size])
        match = None
        candidates = by_weak.get(rc.digest())
        if candidates:
            strong = strong_checksum(new[i:i + block_size])
            for sig in candidates:
                if sig.strong == strong:
                    match = sig
                    break
        if match is not None:
            if literal_start < i:
                ops.append(("literal", new[literal_start:i]))
            ops.append(("copy", match.index))
            i += block_size
            literal_start = i
            rc = None
        else:
            if i + block_size >= n:
                break
            rc.roll(new[i], new[i + block_size])
            i += 1
    if literal_start < n:
        ops.append(("literal", new[literal_start:]))
    return RsyncDelta(tuple(ops), block_size)


def apply_delta(old: bytes, delta: RsyncDelta) -> bytes:
    """Receiver side: rebuild the new file from old blocks + literals."""
    out = bytearray()
    for op in delta.ops:
        if op[0] == "copy":
            idx = op[1]
            start = idx * delta.block_size
            block = old[start:start + delta.block_size]
            if len(block) != delta.block_size:
                raise TransferError(f"delta references invalid block {idx}")
            out.extend(block)
        elif op[0] == "literal":
            out.extend(op[1])
        else:
            raise TransferError(f"unknown delta op {op[0]!r}")
    return bytes(out)


class RsyncSession:
    """Cost model of ``rsync`` between two hosts over the simulated WAN.

    Usage (inside a simulation process)::

        session = RsyncSession(engine, router, tcp)
        result = yield from session.push(src, dst, filespec)

    ``basis_bytes`` optionally provides the receiver's existing copy (the
    DTN cache extension); with no basis — the paper's protocol deletes
    staged files before each run — the full file crosses the wire.
    """

    #: ssh transport setup costs on top of the TCP handshake
    SSH_HANDSHAKE_RTTS = 2.0

    def __init__(
        self,
        engine: NetworkEngine,
        router: Router,
        tcp: Optional[TcpModel] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        compress: bool = False,
    ):
        self.engine = engine
        self.router = router
        self.tcp = tcp if tcp is not None else TcpModel()
        self.block_size = block_size
        #: rsync -z: literal bytes are compressed on the wire.  The paper
        #: uses random data precisely so this cannot help ("resistant to
        #: any compression-based performance artifacts"); text-class files
        #: would shrink ~3x.
        self.compress = compress

    # -- wire-size accounting ------------------------------------------------

    def plan(self, spec: FileSpec, basis: Optional[bytes] = None) -> RsyncStats:
        """Compute what would cross the wire for this transfer."""
        if basis:
            new = spec.materialize()
            delta = compute_delta(basis, new, self.block_size)
            sig_bytes = (len(basis) // self.block_size) * PER_BLOCK_SIG_BYTES
            literal = delta.literal_bytes
            matched = delta.matched_bytes
        else:
            sig_bytes = 0
            literal = spec.size_bytes
            matched = 0
        literal_wire = (
            literal * spec.entropy.compression_ratio if self.compress else literal
        )
        wire = FILE_LIST_BYTES + sig_bytes + literal_wire + 4 * max(1, literal // 65536)
        return RsyncStats(
            file_bytes=spec.size_bytes,
            literal_bytes=literal,
            matched_bytes=matched,
            signature_bytes=sig_bytes,
            wire_bytes=float(wire),
        )

    # -- execution ---------------------------------------------------------------

    def push(self, src: str, dst: str, spec: FileSpec, basis: Optional[bytes] = None):
        """Generator: run the transfer; returns (TransferResult, RsyncStats).

        Must be driven by the simulation kernel (``yield from``).
        """
        path = self.router.resolve(src, dst)
        params = TcpPathParams(rtt_s=path.rtt_s, loss=path.loss)
        stats = self.plan(spec, basis)

        # TCP + ssh handshakes, then the file-list / signature exchange.
        yield self.tcp.connect_time_s(params)
        yield self.SSH_HANDSHAKE_RTTS * params.rtt_s
        yield self.tcp.request_response_time_s(params)  # file list + sig request

        directions = self.router.path_directions(path)
        ceiling = min(self.tcp.rate_ceiling_bps(params), path.per_flow_cap_bps)
        est = self.engine.estimate_rate(directions, ceiling)
        deficit_s = self.tcp.startup_penalty_s(params, est) if est > 0 else 0.0
        deficit_bytes = deficit_s * units.bytes_per_sec(est)
        transfer = self.engine.start_transfer(
            directions,
            stats.wire_bytes,
            ceiling_bps=ceiling,
            label=f"rsync:{src}->{dst}:{spec.name}",
            startup_deficit_bytes=deficit_bytes,
        )
        result: TransferResult = yield transfer.done
        # final ack / close
        yield params.rtt_s
        return result, stats
