"""Unit conversions and physical constants used throughout the simulator.

Conventions (chosen once, used everywhere):

* **time** is in seconds (float),
* **data sizes** are in bytes (int where exact, float where rates apply),
* **rates** are in bits per second (bps, float),
* **distances** are in kilometres.

The paper reports file sizes in decimal megabytes (``dd`` with ``bs=1MB``
writes 10^6-byte blocks) and rates colloquially in Mbps; helpers here keep
those conversions explicit so no magic constants appear in model code.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Data sizes (decimal, like `dd` and like storage vendors)
# ---------------------------------------------------------------------------

KB: int = 10**3
MB: int = 10**6
GB: int = 10**9

# Binary sizes (used by API chunking: providers chunk in MiB multiples)
KiB: int = 2**10
MiB: int = 2**20
GiB: int = 2**30


def mb(n: float) -> float:
    """Decimal megabytes -> bytes."""
    return n * MB


def mib(n: float) -> float:
    """Binary mebibytes -> bytes."""
    return n * MiB


def bytes_to_mb(n: float) -> float:
    """Bytes -> decimal megabytes."""
    return n / MB


# ---------------------------------------------------------------------------
# Rates
# ---------------------------------------------------------------------------

BITS_PER_BYTE: int = 8

Kbps: float = 1e3
Mbps: float = 1e6
Gbps: float = 1e9


def mbps(n: float) -> float:
    """Megabits per second -> bits per second."""
    return n * Mbps


def gbps(n: float) -> float:
    """Gigabits per second -> bits per second."""
    return n * Gbps


def bps_to_mbps(rate_bps: float) -> float:
    """Bits per second -> megabits per second."""
    return rate_bps / Mbps


def bytes_per_sec(rate_bps: float) -> float:
    """Bits per second -> bytes per second."""
    return rate_bps / BITS_PER_BYTE


def transfer_seconds(nbytes: float, rate_bps: float) -> float:
    """Ideal (fluid) time to move *nbytes* at *rate_bps*."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return nbytes * BITS_PER_BYTE / rate_bps


def throughput_bps(nbytes: float, seconds: float) -> float:
    """Effective throughput in bps for *nbytes* moved in *seconds*."""
    if seconds <= 0:
        raise ValueError(f"duration must be positive, got {seconds}")
    return nbytes * BITS_PER_BYTE / seconds


# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

MS: float = 1e-3
US: float = 1e-6


def ms(n: float) -> float:
    """Milliseconds -> seconds."""
    return n * MS


def seconds_to_ms(t: float) -> float:
    """Seconds -> milliseconds."""
    return t / MS


# ---------------------------------------------------------------------------
# Physical constants
# ---------------------------------------------------------------------------

#: Speed of light in vacuum, km/s.
SPEED_OF_LIGHT_KM_S: float = 299_792.458

#: Signal propagation speed in optical fiber is ~2/3 c.  Real WAN paths are
#: also longer than great-circle distance (conduit routing); the testbed
#: calibration absorbs that via a path-stretch factor.
FIBER_PROPAGATION_KM_S: float = SPEED_OF_LIGHT_KM_S * 2.0 / 3.0

#: Default path-stretch multiplier applied to great-circle distances when
#: deriving per-link propagation delay (fiber rarely follows geodesics).
DEFAULT_PATH_STRETCH: float = 1.6

#: Standard Ethernet-ish MSS used by the TCP throughput model, bytes.
DEFAULT_MSS: int = 1460


def propagation_delay_s(distance_km: float, stretch: float = DEFAULT_PATH_STRETCH) -> float:
    """One-way propagation delay over *distance_km* of fiber."""
    if distance_km < 0:
        raise ValueError(f"distance must be non-negative, got {distance_km}")
    return distance_km * stretch / FIBER_PROPAGATION_KM_S
