"""Workload generation: size sweeps, client populations, upload schedules."""

from repro.workloads.generator import (
    ScheduledUpload,
    UploadSchedule,
    client_population_schedule,
    fleet_population_schedule,
    sample_sites,
    size_sweep,
)

__all__ = [
    "ScheduledUpload",
    "UploadSchedule",
    "client_population_schedule",
    "fleet_population_schedule",
    "sample_sites",
    "size_sweep",
]
