"""Workload generators beyond the paper's fixed size sweep.

The paper benchmarks one client at a time over a fixed size ladder.  A
downstream adopter also cares about *populations*: many users at one
campus pushing uploads through a shared DTN.  These generators produce
deterministic, seedable schedules for such scenarios (used by the
multi-client example and the contention ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MeasurementError
from repro.sim.rng import derive_seed
from repro.transfer.files import Entropy, FileSpec
from repro.units import mb

__all__ = [
    "size_sweep",
    "sample_sites",
    "ScheduledUpload",
    "UploadSchedule",
    "client_population_schedule",
    "fleet_population_schedule",
]

#: Supported file-size distributions for population schedules.
SIZE_DISTS = ("lognormal", "fixed")


def size_sweep(
    start_mb: float,
    stop_mb: float,
    points: int,
    log_spaced: bool = False,
) -> List[float]:
    """A size ladder (MB) for parameter sweeps beyond the paper's seven."""
    if points < 2:
        raise MeasurementError("a sweep needs at least two points")
    if start_mb <= 0 or stop_mb <= start_mb:
        raise MeasurementError("need 0 < start < stop")
    if log_spaced:
        values = np.logspace(np.log10(start_mb), np.log10(stop_mb), points)
    else:
        values = np.linspace(start_mb, stop_mb, points)
    return [float(round(v, 3)) for v in values]


@dataclass(frozen=True)
class ScheduledUpload:
    """One upload in a population workload."""

    start_s: float
    client_site: str
    provider_name: str
    file: FileSpec


@dataclass(frozen=True)
class UploadSchedule:
    """A deterministic sequence of uploads."""

    uploads: Tuple[ScheduledUpload, ...]

    @property
    def total_bytes(self) -> int:
        return sum(u.file.size_bytes for u in self.uploads)

    @property
    def duration_s(self) -> float:
        return max((u.start_s for u in self.uploads), default=0.0)

    def by_client(self) -> dict:
        out: dict = {}
        for u in self.uploads:
            out.setdefault(u.client_site, []).append(u)
        return out


def client_population_schedule(
    client_site: str,
    provider_name: str,
    n_uploads: int,
    mean_interarrival_s: float,
    mean_size_mb: float,
    seed: int = 0,
    sigma_log_size: float = 0.8,
    min_size_mb: float = 1.0,
    size_dist: str = "lognormal",
) -> UploadSchedule:
    """Poisson arrivals of uploads from one campus.

    ``size_dist`` selects the file-size law: ``"lognormal"`` (the default
    — heavy-tailed, matching measured cloud-sync traffic) or ``"fixed"``
    (every upload is exactly ``mean_size_mb``, for controlled ablations).
    Deterministic for a given seed; the default draw sequence is
    unchanged from before ``size_dist`` existed.
    """
    if n_uploads < 1:
        raise MeasurementError("need at least one upload")
    if mean_interarrival_s <= 0 or mean_size_mb <= 0:
        raise MeasurementError("interarrival and size means must be positive")
    if size_dist not in SIZE_DISTS:
        raise MeasurementError(
            f"unknown size_dist {size_dist!r}; have: {', '.join(SIZE_DISTS)}")
    # Workload-generation entry point: *seed* is the caller-facing
    # parameter, so converting it to a generator here is the injection point.
    rng = np.random.default_rng(seed)  # simlint: ignore[SL103] -- seed-parameterized entry point
    mu = np.log(mean_size_mb) - sigma_log_size**2 / 2
    t = 0.0
    uploads: List[ScheduledUpload] = []
    for i in range(n_uploads):
        t += float(rng.exponential(mean_interarrival_s))
        # Always consume the size draw (common random numbers): switching
        # the size law never perturbs the arrival process.
        drawn_mb = max(min_size_mb, float(rng.lognormal(mu, sigma_log_size)))
        size_mb_i = drawn_mb if size_dist == "lognormal" else mean_size_mb
        uploads.append(ScheduledUpload(
            start_s=t,
            client_site=client_site,
            provider_name=provider_name,
            file=FileSpec(f"{client_site}-upload-{i}.bin", int(mb(size_mb_i)),
                          Entropy.RANDOM, seed=seed + i),
        ))
    return UploadSchedule(tuple(uploads))


def sample_sites(
    populations: Sequence[Tuple[str, float]],
    n_sites: int,
    seed: int = 0,
) -> Tuple[str, ...]:
    """Draw *n_sites* distinct sites weighted by population, without
    replacement.

    The bridge from a generated world (whose
    :class:`~repro.topo.spec.TopoGraph` carries per-site population
    weights) to a fleet: pick which campuses actually upload.  The draw
    is a pure function of ``(populations, n_sites, seed)`` — input order
    matters (as everywhere, record order is part of a world's identity)
    — and the result preserves the input's site order so downstream
    schedules stay deterministic.
    """
    if n_sites < 1:
        raise MeasurementError("need at least one sampled site")
    names = [name for name, _ in populations]
    if len(set(names)) != len(names):
        raise MeasurementError("duplicate sites in population table")
    if any(w <= 0 for _, w in populations):
        raise MeasurementError("population weights must be positive")
    if n_sites > len(populations):
        raise MeasurementError(
            f"cannot sample {n_sites} distinct sites from {len(populations)}")
    # Workload-generation entry point: *seed* is the caller-facing
    # parameter, so converting it to a generator here is the injection point.
    rng = np.random.default_rng(derive_seed(seed, "workloads:sample-sites"))  # simlint: ignore[SL103] -- seed-parameterized entry point
    remaining = list(populations)
    chosen = set()
    for _ in range(n_sites):
        total = sum(w for _, w in remaining)
        point = float(rng.uniform(0.0, total))
        acc = 0.0
        pick = len(remaining) - 1
        for i, (_, w) in enumerate(remaining):
            acc += w
            if point < acc:
                pick = i
                break
        chosen.add(remaining.pop(pick)[0])
    return tuple(name for name in names if name in chosen)


def fleet_population_schedule(
    client_sites: Sequence[str],
    provider_name: str,
    n_uploads_per_site: int,
    mean_interarrival_s: float,
    mean_size_mb: float,
    seed: int = 0,
    sigma_log_size: float = 0.8,
    min_size_mb: float = 1.0,
    size_dist: str = "lognormal",
) -> UploadSchedule:
    """A multi-site fleet: independent Poisson populations, one timeline.

    Each site gets its own :func:`client_population_schedule` under a
    seed derived from ``(seed, site)`` — so adding or removing a site
    never perturbs another site's arrivals — and the merged schedule is
    sorted by start time (ties broken by site, then file name), which
    makes the fleet order a pure function of the inputs.
    """
    if not client_sites:
        raise MeasurementError("a fleet needs at least one client site")
    if len(set(client_sites)) != len(client_sites):
        raise MeasurementError(f"duplicate client sites in fleet: {client_sites}")
    merged: List[ScheduledUpload] = []
    for site in client_sites:
        site_schedule = client_population_schedule(
            site, provider_name, n_uploads_per_site, mean_interarrival_s,
            mean_size_mb, seed=derive_seed(seed, f"fleet:{site}"),
            sigma_log_size=sigma_log_size, min_size_mb=min_size_mb,
            size_dist=size_dist,
        )
        merged.extend(site_schedule.uploads)
    merged.sort(key=lambda u: (u.start_s, u.client_site, u.file.name))
    return UploadSchedule(tuple(merged))
