"""Workload generators beyond the paper's fixed size sweep.

The paper benchmarks one client at a time over a fixed size ladder.  A
downstream adopter also cares about *populations*: many users at one
campus pushing uploads through a shared DTN.  These generators produce
deterministic, seedable schedules for such scenarios (used by the
multi-client example and the contention ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MeasurementError
from repro.transfer.files import Entropy, FileSpec
from repro.units import mb

__all__ = ["size_sweep", "ScheduledUpload", "UploadSchedule", "client_population_schedule"]


def size_sweep(
    start_mb: float,
    stop_mb: float,
    points: int,
    log_spaced: bool = False,
) -> List[float]:
    """A size ladder (MB) for parameter sweeps beyond the paper's seven."""
    if points < 2:
        raise MeasurementError("a sweep needs at least two points")
    if start_mb <= 0 or stop_mb <= start_mb:
        raise MeasurementError("need 0 < start < stop")
    if log_spaced:
        values = np.logspace(np.log10(start_mb), np.log10(stop_mb), points)
    else:
        values = np.linspace(start_mb, stop_mb, points)
    return [float(round(v, 3)) for v in values]


@dataclass(frozen=True)
class ScheduledUpload:
    """One upload in a population workload."""

    start_s: float
    client_site: str
    provider_name: str
    file: FileSpec


@dataclass(frozen=True)
class UploadSchedule:
    """A deterministic sequence of uploads."""

    uploads: Tuple[ScheduledUpload, ...]

    @property
    def total_bytes(self) -> int:
        return sum(u.file.size_bytes for u in self.uploads)

    @property
    def duration_s(self) -> float:
        return max((u.start_s for u in self.uploads), default=0.0)

    def by_client(self) -> dict:
        out: dict = {}
        for u in self.uploads:
            out.setdefault(u.client_site, []).append(u)
        return out


def client_population_schedule(
    client_site: str,
    provider_name: str,
    n_uploads: int,
    mean_interarrival_s: float,
    mean_size_mb: float,
    seed: int = 0,
    sigma_log_size: float = 0.8,
    min_size_mb: float = 1.0,
) -> UploadSchedule:
    """Poisson arrivals of lognormally-sized uploads from one campus.

    Deterministic for a given seed.
    """
    if n_uploads < 1:
        raise MeasurementError("need at least one upload")
    if mean_interarrival_s <= 0 or mean_size_mb <= 0:
        raise MeasurementError("interarrival and size means must be positive")
    # Workload-generation entry point: *seed* is the caller-facing
    # parameter, so converting it to a generator here is the injection point.
    rng = np.random.default_rng(seed)  # simlint: ignore[SL103] -- seed-parameterized entry point
    mu = np.log(mean_size_mb) - sigma_log_size**2 / 2
    t = 0.0
    uploads: List[ScheduledUpload] = []
    for i in range(n_uploads):
        t += float(rng.exponential(mean_interarrival_s))
        size_mb_i = max(min_size_mb, float(rng.lognormal(mu, sigma_log_size)))
        uploads.append(ScheduledUpload(
            start_s=t,
            client_site=client_site,
            provider_name=provider_name,
            file=FileSpec(f"{client_site}-upload-{i}.bin", int(mb(size_mb_i)),
                          Entropy.RANDOM, seed=seed + i),
        ))
    return UploadSchedule(tuple(uploads))
