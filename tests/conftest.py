"""Shared fixtures: a miniature inter-AS world echoing the case study.

Layout (AS numbers in brackets):

    hostA[100] -- gwA[100] -- r1[200] -- r2[200] -- cloud-edge[300] -- server[300]
                                 \\
                                  ix[400] ---------- cloud-edge (policed 10 Mbps)
    hostB[500] -- gwB[500] ------ r2

AS relationships: 100 and 500 are customers of 200 (research net);
200 peers 300 (cloud) and 400 (exchange); 400 peers 300.

A PBR rule at r1 steers traffic sourced in hostA's prefix and destined to
AS300 via the exchange — the pacificwave mechanism in miniature.
"""

import pytest

from repro.net import (
    ASGraph,
    AutonomousSystem,
    Link,
    Node,
    NodeKind,
    PbrRule,
    PolicyTable,
    Router,
    Topology,
)
from repro.units import mbps, ms


@pytest.fixture
def mini_world():
    topo = Topology()
    add = topo.add_node
    add(Node("hostA", NodeKind.HOST, 100, "10.1.0.10", hostname="hosta.campus-a.edu"))
    add(Node("gwA", NodeKind.ROUTER, 100, "10.1.0.1", hostname="gw.campus-a.edu"))
    add(Node("r1", NodeKind.ROUTER, 200, "10.2.0.1", hostname="r1.research.net"))
    add(Node("r2", NodeKind.ROUTER, 200, "10.2.0.2", hostname="r2.research.net"))
    add(Node("ix", NodeKind.MIDDLEBOX, 400, "10.4.0.1", hostname="sw.exchange.net",
             responds_to_traceroute=False))
    add(Node("cloud-edge", NodeKind.ROUTER, 300, "10.3.0.1", hostname="edge.cloud.example"))
    add(Node("server", NodeKind.HOST, 300, "10.3.0.10", hostname="storage.cloud.example",
             site_name="gdrive-dc"))
    add(Node("hostB", NodeKind.HOST, 500, "10.5.0.10", hostname="hostb.campus-b.edu"))
    add(Node("gwB", NodeKind.ROUTER, 500, "10.5.0.1", hostname="gw.campus-b.edu"))

    L = topo.add_link
    L(Link("hostA", "gwA", capacity_bps=mbps(100), delay_s=ms(0.2)))
    L(Link("gwA", "r1", capacity_bps=mbps(100), delay_s=ms(1)))
    L(Link("r1", "r2", capacity_bps=mbps(100), delay_s=ms(4)))
    L(Link("r2", "cloud-edge", capacity_bps=mbps(50), delay_s=ms(3)))
    L(Link("r1", "ix", capacity_bps=mbps(100), delay_s=ms(1)))
    L(Link("ix", "cloud-edge", capacity_bps=mbps(100), delay_s=ms(2),
           policer_bps={"ix": mbps(10)}))
    L(Link("cloud-edge", "server", capacity_bps=mbps(1000), delay_s=ms(0.5)))
    L(Link("hostB", "gwB", capacity_bps=mbps(100), delay_s=ms(0.2)))
    L(Link("gwB", "r2", capacity_bps=mbps(100), delay_s=ms(2)))

    asg = ASGraph()
    for num, name in [(100, "campus-a"), (200, "research"), (300, "cloud"),
                      (400, "exchange"), (500, "campus-b")]:
        asg.add_as(AutonomousSystem(num, name))
    asg.add_customer(200, 100)
    asg.add_customer(200, 500)
    asg.add_peering(200, 300)
    asg.add_peering(200, 400)
    asg.add_peering(400, 300)
    asg.validate()

    policy = PolicyTable()
    policy.install(PbrRule(
        node="r1",
        out_link="r1--ix",
        src_prefixes=frozenset({"10.1.0.0/24"}),
        dest_asns=frozenset({300}),
        description="campus-a sourced cloud traffic exits via the exchange",
    ))

    router = Router(topo, asg, policy)
    return topo, asg, policy, router
