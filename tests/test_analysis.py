"""Analysis layer: figure/table regeneration and paper comparison.

Uses a shrunken protocol (2-3 runs, 1-2 sizes) so the suite stays fast;
the benchmarks run the full paper protocol.
"""

import pytest

from repro.analysis import (
    AnalysisConfig,
    FIGURES,
    bar_chart,
    compare_rankings,
    compare_with_paper,
    measure_cell,
    measure_rsync_hop,
    render_experiment_report,
    render_table4,
    render_table5,
    run_figure,
    run_table2,
    run_table4,
    run_table5,
    run_traceroute_figures,
)
from repro.analysis.paperdata import PAPER_TABLE2, PAPER_TABLE4
from repro.analysis.tables import Table1Cell, run_table1, render_table1
from repro.core import DirectRoute, DetourRoute
from repro.errors import MeasurementError
from repro.measure import ExperimentProtocol, summarize


FAST = AnalysisConfig(sizes_mb=(10,), protocol=ExperimentProtocol(2, 0, 1.0),
                      cross_traffic=False)
FAST2 = AnalysisConfig(sizes_mb=(10, 50), protocol=ExperimentProtocol(2, 0, 1.0),
                       cross_traffic=False)


class TestMeasureCell:
    def test_cell_runs_protocol(self):
        m = measure_cell(FAST, "ubc", "gdrive", DirectRoute(), 10)
        assert len(m.all_durations_s) == 2
        assert m.kept.n == 2
        assert 7 < m.mean_s < 13  # paper: 9.46 s

    def test_cell_deterministic_per_config(self):
        a = measure_cell(FAST, "ubc", "gdrive", DirectRoute(), 10)
        b = measure_cell(FAST, "ubc", "gdrive", DirectRoute(), 10)
        assert a.all_durations_s == b.all_durations_s

    def test_rsync_hop_cell(self):
        m = measure_rsync_hop(FAST, "ubc", "ualberta", 10)
        assert 1.5 < m.mean_s < 4  # 10 MB at ~42 Mbps + handshakes


class TestBarChart:
    def test_renders_all_series(self):
        s1 = [summarize([10.0, 11.0]), summarize([20.0, 21.0])]
        s2 = [summarize([5.0, 5.5]), summarize([8.0, 8.5])]
        text = bar_chart("Demo", ["10 MB", "20 MB"], {"direct": s1, "via x": s2})
        assert "Demo" in text
        assert text.count("direct") == 2 and text.count("via x") == 2
        assert "±" in text

    def test_scaling_monotone(self):
        s = [summarize([10.0]), summarize([40.0])]
        text = bar_chart("T", ["a", "b"], {"r": s})
        lines = [ln for ln in text.splitlines() if "|" in ln]
        assert lines[1].count("#") > 2 * lines[0].count("#")

    def test_validation(self):
        with pytest.raises(MeasurementError):
            bar_chart("T", [], {})
        with pytest.raises(MeasurementError):
            bar_chart("T", ["a", "b"], {"r": [summarize([1.0])]})


class TestFigures:
    def test_all_paper_figures_specified(self):
        assert set(FIGURES) == {"fig2", "fig4", "fig7", "fig8", "fig9", "fig10", "fig11"}

    def test_fig2_includes_rsync_hop_series(self):
        result = run_figure("fig2", FAST)
        assert "UBC to UAlberta (rsync)" in result.series
        assert set(result.series) >= {"direct", "via ualberta", "via umich"}

    def test_fig2_shape_detour_wins(self):
        result = run_figure("fig2", FAST)
        assert result.fastest_route_at(10) == "via ualberta"

    def test_fig4_shape_direct_wins(self):
        result = run_figure("fig4", FAST)
        assert result.fastest_route_at(10) == "direct"

    def test_figure_render_and_rows(self):
        result = run_figure("fig2", FAST)
        text = result.render()
        assert "Google Drive" in text and "10 MB" in text
        rows = result.rows()
        assert len(rows) == 1 and rows[0][0] == 10

    def test_unknown_figure(self):
        with pytest.raises(MeasurementError, match="unknown figure"):
            run_figure("fig99", FAST)

    def test_traceroute_figures(self):
        figs = run_traceroute_figures(seed=0)
        assert set(figs) == {"fig5", "fig6"}
        assert "pacificwave" in figs["fig5"]
        assert "pacificwave" not in figs["fig6"]
        assert "* * *" in figs["fig6"]
        for text in figs.values():
            assert text.startswith("traceroute to www.googleapis.com")


class TestTables:
    def test_table2_shape(self):
        t2 = run_table2(FAST2)
        assert [row.size_mb for row in t2.rows] == [10, 50]
        for row in t2.rows:
            assert row.fastest_route() == "via ualberta"
            assert row.gain_pct("via ualberta") < -30

    def test_table2_against_paper(self):
        comparisons = compare_with_paper(run_table2(FAST2), PAPER_TABLE2, "x")
        # 50 MB is in both; 10 MB too -> 6 cells
        assert len(comparisons) == 6
        for c in comparisons:
            assert 0.4 < c.ratio < 2.0, c.describe()

    def test_table1_rankings(self):
        cells = run_table1(FAST)
        assert cells[("ubc", "gdrive")].ranking[0] == "via ualberta"
        assert cells[("ubc", "dropbox")].ranking[0] == "direct"
        assert cells[("purdue", "gdrive")].ranking[-1] == "direct"
        text = render_table1(cells)
        assert "ubc" in text and "Fastest" in text

    def test_table1_ucla_routes_are_near_ties(self):
        """Sec. III-C: from UCLA the last mile dominates, so no route wins
        or loses by much — the paper's own footnotes flip the 10-20 MB
        cells, and so does per-run jitter here."""
        from repro.analysis.tables import _route_table

        table = _route_table(FAST, "ucla", "gdrive", "ucla")
        row = table.rows[0]
        means = [s.mean for s in row.by_route.values()]
        assert (max(means) - min(means)) / min(means) < 0.20

    def test_table4_overlap_analysis(self):
        rows = run_table4(FAST2, sizes_mb=(50,))
        assert len(rows) == 6  # 2 providers x 3 routes
        direct_rows = [r for r in rows if r.route == "direct"]
        assert all(r.overlaps_direct is None for r in direct_rows)
        text = render_table4(rows)
        assert "±" in text or "overlaps" in text or "separated" in text

    def test_table5_geography(self):
        cells = run_table1(FAST)
        entries = run_table5(FAST, table1=cells)
        assert len(entries) == 9
        by_key = {(e.client, e.provider): e for e in entries}
        ubc_gdrive = by_key[("ubc", "gdrive")]
        assert ubc_gdrive.fastest == "via ualberta"
        assert ubc_gdrive.geographic_stretch > 1.8  # the Fig. 3 backtrack
        ubc_dropbox = by_key[("ubc", "dropbox")]
        assert ubc_dropbox.fastest == "direct"
        assert ubc_dropbox.geographic_stretch == 1.0
        assert "via ualberta" in render_table5(entries)


class TestReport:
    def test_rankings_comparison(self):
        cells = run_table1(FAST)
        rows = compare_rankings(cells)
        assert len(rows) == 9
        matches = [r for r in rows if r[4]]
        # at minimum the headline cells must match the paper
        keyed = {(r[0], r[1]): r for r in rows}
        assert keyed[("ubc", "gdrive")][4]
        assert keyed[("ubc", "dropbox")][4]
        assert len(matches) >= 5

    def test_full_report_renders(self):
        t2 = run_table2(FAST)
        rows4 = run_table4(FAST2, sizes_mb=(50,))
        cells = run_table1(FAST)
        report = render_experiment_report(table2=t2, table4_rows=rows4,
                                          table1_cells=cells)
        assert "PAPER-VS-MEASURED" in report
        assert "Table II" in report and "Table IV" in report and "Table I" in report
        assert "ratio" in report
