"""Timelines from traces, CSV/JSON export, Welch's t-test."""

import csv
import io
import json

import pytest

from repro.analysis import (
    AnalysisConfig,
    concurrency_profile,
    extract_flow_spans,
    figure_to_csv,
    figure_to_json,
    render_timeline,
    run_figure,
    run_table2,
    table_to_csv,
    table_to_json,
)
from repro.errors import MeasurementError
from repro.measure import ExperimentProtocol, welch_t_test
from repro.net import NetworkEngine
from repro.net.topology import Link, Node, NodeKind, Topology
from repro.sim import Simulator, Tracer
from repro.units import mb, mbps, ms

FAST = AnalysisConfig(sizes_mb=(10,), protocol=ExperimentProtocol(2, 0, 1.0),
                      cross_traffic=False)


def traced_world():
    topo = Topology()
    topo.add_node(Node("a", NodeKind.HOST, 1, "10.0.0.1"))
    topo.add_node(Node("b", NodeKind.HOST, 1, "10.0.0.2"))
    topo.add_link(Link("a", "b", capacity_bps=mbps(10), delay_s=ms(1)))
    sim = Simulator()
    tracer = Tracer()
    engine = NetworkEngine(sim, topo, tracer=tracer)
    return sim, topo, tracer, engine


class TestTimeline:
    def test_spans_extracted(self):
        sim, topo, tracer, engine = traced_world()
        d = topo.path_directions(["a", "b"])
        engine.start_transfer(d, mb(5), label="one")
        sim.schedule(1.0, lambda: engine.start_transfer(d, mb(5), label="two"))
        sim.run()
        spans = extract_flow_spans(tracer)
        assert [s.label for s in spans] == ["one", "two"]
        assert spans[0].start == 0.0 and spans[1].start == 1.0
        assert all(s.duration_s > 0 for s in spans)

    def test_label_prefix_filter(self):
        sim, topo, tracer, engine = traced_world()
        d = topo.path_directions(["a", "b"])
        engine.start_transfer(d, mb(1), label="api:x")
        engine.start_transfer(d, mb(1), label="bg:y")
        sim.run()
        spans = extract_flow_spans(tracer, label_prefix="api:")
        assert [s.label for s in spans] == ["api:x"]

    def test_unfinished_flows(self):
        sim, topo, tracer, engine = traced_world()
        d = topo.path_directions(["a", "b"])
        engine.start_transfer(d, mb(1000), label="endless")
        sim.run(until=5.0)
        assert extract_flow_spans(tracer) == []
        spans = extract_flow_spans(tracer, include_unfinished=True, horizon=5.0)
        assert len(spans) == 1 and spans[0].end == 5.0
        with pytest.raises(MeasurementError):
            extract_flow_spans(tracer, include_unfinished=True)

    def test_concurrency_profile(self):
        sim, topo, tracer, engine = traced_world()
        d = topo.path_directions(["a", "b"])
        engine.start_transfer(d, mb(5), label="one")   # alone: 4 s; shared
        sim.schedule(1.0, lambda: engine.start_transfer(d, mb(5), label="two"))
        sim.run()
        spans = extract_flow_spans(tracer)
        profile = concurrency_profile(spans)
        counts = [c for _, c in profile]
        assert max(counts) == 2
        assert counts[-1] == 0  # everything drains

    def test_render(self):
        sim, topo, tracer, engine = traced_world()
        d = topo.path_directions(["a", "b"])
        engine.start_transfer(d, mb(5), label="one")
        sim.run()
        out = render_timeline(extract_flow_spans(tracer))
        assert "one" in out and "peak concurrency: 1" in out
        assert render_timeline([]) == "(no flows in trace)"

    def test_overlap_predicate(self):
        from repro.analysis.timeline import FlowSpan

        a = FlowSpan(1, "a", 0.0, 2.0, 100)
        b = FlowSpan(2, "b", 1.0, 3.0, 100)
        c = FlowSpan(3, "c", 2.5, 4.0, 100)
        assert a.overlaps(b) and b.overlaps(c)
        assert not a.overlaps(c)


class TestExport:
    def test_figure_csv_roundtrip(self):
        result = run_figure("fig4", FAST)
        text = figure_to_csv(result)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == len(result.series)  # 1 size x 3 routes
        assert {r["series"] for r in rows} == set(result.series)
        direct = next(r for r in rows if r["series"] == "direct")
        assert float(direct["mean_s"]) == pytest.approx(
            result.series["direct"][0].mean)

    def test_figure_json(self):
        result = run_figure("fig4", FAST)
        payload = json.loads(figure_to_json(result))
        assert payload["figure_id"] == "fig4"
        assert payload["provider"] == "dropbox"
        assert payload["sizes_mb"] == [10]
        assert set(payload["series"]) == set(result.series)

    def test_table_csv(self):
        table = run_table2(FAST)
        rows = list(csv.DictReader(io.StringIO(table_to_csv(table))))
        assert len(rows) == 3
        gain = {r["route"]: float(r["gain_vs_baseline_pct"]) for r in rows}
        assert gain["direct"] == 0.0
        assert gain["via ualberta"] < -30

    def test_table_json(self):
        table = run_table2(FAST)
        payload = json.loads(table_to_json(table))
        assert payload["baseline_route"] == "direct"
        assert payload["rows"][0]["size_mb"] == 10


class TestWelch:
    def test_clearly_different_groups(self):
        r = welch_t_test([10.0, 10.5, 9.8, 10.2], [20.1, 19.8, 20.4, 20.0])
        assert r.significant()
        assert r.p_value < 1e-4

    def test_same_distribution_not_significant(self):
        a = [10.0, 12.0, 11.0, 9.5, 10.5]
        b = [10.2, 11.8, 10.9, 9.7, 10.6]
        r = welch_t_test(a, b)
        assert not r.significant()

    def test_paperlike_overlap_case(self):
        """Groups whose ±1σ bars overlap heavily are not significant."""
        import numpy as np

        rng = np.random.default_rng(0)
        direct = rng.normal(177.89, 36.03, size=5)
        detour = rng.normal(237.78, 56.10, size=5)
        r = welch_t_test(direct, detour)
        assert r.p_value > 0.01  # nowhere near a slam dunk with n=5

    def test_needs_two_samples(self):
        with pytest.raises(MeasurementError):
            welch_t_test([1.0], [2.0, 3.0])

    def test_str(self):
        r = welch_t_test([1.0, 2.0, 3.0], [4.0, 5.0, 6.0])
        assert "p=" in str(r)
