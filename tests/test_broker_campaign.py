"""Broker sweeps through the campaign engine: cells, caching, export."""

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.broker import BrokerConfig, BrokerSweepSpec, FleetCell, score_sweep
from repro.broker.campaign import FLEET_CELL_TYPE
from repro.campaign import (
    CampaignRunner,
    PoolConfig,
    ResultStore,
    export_campaign,
    load_export,
)
from repro.campaign.store import record_from_dict, record_to_dict
from repro.errors import BrokerError, CampaignError

pytestmark = [pytest.mark.broker, pytest.mark.campaign]

CELL_KW = dict(sites=("ubc",), provider="gdrive", mode="broker",
               n_uploads_per_site=3, mean_interarrival_s=60.0,
               mean_size_mb=20.0, cross_traffic=False)

SPEC = BrokerSweepSpec(sites=("ubc",), modes=("direct", "broker"),
                       n_uploads_per_site=3, mean_interarrival_s=60.0,
                       mean_size_mb=20.0, seeds=(0,), cross_traffic=False)


class TestFleetCell:
    def test_identity_round_trip(self):
        cell = FleetCell(config=BrokerConfig(ttl_s=1234.0), **CELL_KW)
        clone = FleetCell.from_identity(
            json.loads(json.dumps(cell.identity())))
        assert clone == cell
        assert clone.key == cell.key

    def test_key_is_stable_and_sensitive(self):
        a = FleetCell(**CELL_KW)
        b = FleetCell(**CELL_KW)
        assert a.key == b.key
        c = FleetCell(**{**CELL_KW, "mode": "direct"})
        assert a.key != c.key

    def test_world_seed_shared_across_modes(self):
        a = FleetCell(**CELL_KW)
        b = FleetCell(**{**CELL_KW, "mode": "direct"})
        assert a.world_seed == b.world_seed  # same workload, same world
        c = FleetCell(**{**CELL_KW, "seed": 1})
        assert a.world_seed != c.world_seed

    def test_protocol_keeps_every_upload(self):
        cell = FleetCell(**CELL_KW)
        assert cell.protocol.total_runs == cell.n_uploads == 3
        assert cell.protocol.discard_runs == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(CampaignError):
            FleetCell(**{**CELL_KW, "sites": ()})
        with pytest.raises(BrokerError):
            FleetCell(**{**CELL_KW, "mode": "greedy"})
        with pytest.raises(CampaignError):
            FleetCell.from_identity({"cell_type": "paper"})
        bad = FleetCell(**CELL_KW).identity()
        bad["version"] = 99
        with pytest.raises(CampaignError):
            FleetCell.from_identity(bad)

    def test_record_round_trip_restores_fleet_cell(self):
        cell = FleetCell(**CELL_KW)
        measurement = cell.run_measurement()
        from repro.campaign.store import CellRecord
        rec = CellRecord(cell=cell, status="ok", measurement=measurement)
        clone = record_from_dict(json.loads(json.dumps(record_to_dict(rec))))
        assert isinstance(clone.cell, FleetCell)
        assert clone.cell == cell
        assert clone.measurement.all_durations_s == measurement.all_durations_s


class TestSweepThroughRunner:
    def test_run_cache_resume_and_score(self, tmp_path):
        store = ResultStore(tmp_path / "cells")
        first = CampaignRunner(SPEC, store).run()
        assert first.executed == 2 and first.errors == 0

        again = CampaignRunner(SPEC, store).run()
        assert again.executed == 0 and again.cached == 2

        summary = score_sweep(SPEC, again.records)
        assert set(summary.by_mode) == {"direct", "broker"}
        assert summary.regret_s("broker") >= 0.0
        # on ubc the policed direct path always loses to the broker
        assert summary.mean_s("broker") < summary.mean_s("direct")

    def test_pool_and_serial_agree(self, tmp_path):
        serial = CampaignRunner(SPEC).run()
        pooled = CampaignRunner(SPEC, pool=PoolConfig(jobs=2)).run()
        assert [r.measurement.all_durations_s for r in serial.records] == \
            [r.measurement.all_durations_s for r in pooled.records]

    def test_export_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "cells")
        CampaignRunner(SPEC, store).run()
        buf = io.StringIO()
        n = export_campaign(SPEC, store, buf)
        assert n == 2
        doc = load_export(io.StringIO(buf.getvalue()))
        assert [r.cell.identity()["cell_type"] for r in doc] == \
            [FLEET_CELL_TYPE] * 2

    def test_score_sweep_rejects_partial(self, tmp_path):
        store = ResultStore(tmp_path / "cells")
        CampaignRunner(SPEC, store).run()
        half = BrokerSweepSpec(**{**SPEC.__dict__, "modes": ("direct", "broker",
                                                            "static:via umich")})
        with pytest.raises(BrokerError):
            score_sweep(half, store.records())


class TestLazyCellTypeDispatch:
    def test_store_loads_fleet_cells_without_prior_broker_import(self, tmp_path):
        store = ResultStore(tmp_path / "cells")
        CampaignRunner(SPEC, store).run()
        src_dir = Path(__file__).resolve().parent.parent / "src"
        script = (
            "import sys\n"
            "from repro.campaign.store import ResultStore\n"
            "assert 'repro.broker' not in sys.modules\n"
            f"recs = ResultStore({str(tmp_path / 'cells')!r}).records()\n"
            "print(len(recs), type(recs[0].cell).__name__)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": str(src_dir), "PATH": "/usr/bin:/bin"},
        )
        assert proc.stdout.split() == ["2", "FleetCell"]

    def test_unknown_cell_type_raises(self):
        with pytest.raises(CampaignError):
            record_from_dict({
                "version": 1,
                "identity": {"cell_type": "no-such-type"},
                "status": "error",
                "error": {"kind": "x", "message": "y"},
                "measurement": None,
            })
