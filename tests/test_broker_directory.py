"""Broker serving tier: config, size classes, directory, admission, decay."""

import pytest

from repro.broker import (
    AdmissionController,
    BrokerConfig,
    DetourBroker,
    RouteDirectory,
    size_class,
)
from repro.core.routes import DetourRoute, DirectRoute
from repro.core.selection import HistorySelector, SelectionContext
from repro.errors import BrokerError, SelectionError
from repro.sim.rng import RngRegistry
from repro.testbed import build_case_study
from repro.units import mb

pytestmark = pytest.mark.broker


@pytest.fixture
def world():
    return build_case_study(seed=0, cross_traffic=False)


class TestBrokerConfig:
    def test_defaults_valid(self):
        cfg = BrokerConfig()
        assert cfg.ttl_s > 0 and cfg.probes_per_wake >= 1

    @pytest.mark.parametrize("bad", [
        dict(ttl_s=0.0),
        dict(probe_interval_s=-1.0),
        dict(probes_per_wake=0),
        dict(max_probes=-1),
        dict(probe_bytes=0),
        dict(history_alpha=0.0),
        dict(half_life_s=0.0),
        dict(min_freshness=0.0),
        dict(min_freshness=1.5),
        dict(size_class_edges_mb=()),
        dict(size_class_edges_mb=(64.0, 8.0)),
        dict(size_class_edges_mb=(8.0, 8.0)),
    ])
    def test_validation(self, bad):
        with pytest.raises(BrokerError):
            BrokerConfig(**bad)


class TestSizeClass:
    def test_edges_are_inclusive_upper_bounds(self):
        edges = (8.0, 64.0)
        assert size_class(int(mb(1)), edges) == "le8MB"
        assert size_class(int(mb(8)), edges) == "le8MB"
        assert size_class(int(mb(8)) + 1, edges) == "le64MB"
        assert size_class(int(mb(64)), edges) == "le64MB"
        assert size_class(int(mb(65)), edges) == "gt64MB"

    def test_single_edge(self):
        assert size_class(int(mb(2)), (10.0,)) == "le10MB"
        assert size_class(int(mb(20)), (10.0,)) == "gt10MB"


class TestRouteDirectory:
    def test_miss_then_hit_then_ttl_expiry(self, world):
        directory = RouteDirectory(world, BrokerConfig(ttl_s=100.0))
        assert directory.lookup("ubc", "gdrive", int(mb(4))) is None
        assert directory.misses == 1
        directory.install("ubc", "gdrive", int(mb(4)), "via ualberta",
                          source="history")
        entry = directory.lookup("ubc", "gdrive", int(mb(4)))
        assert entry is not None and entry.route_descr == "via ualberta"
        assert directory.hits == 1

        # size classes are separate keys
        assert directory.lookup("ubc", "gdrive", int(mb(50))) is None

        world.sim.run(101.0)
        assert directory.lookup("ubc", "gdrive", int(mb(4))) is None
        assert directory.misses == 3
        assert directory.hit_ratio == pytest.approx(0.25)

    def test_invalidate_route_drops_every_pair_using_it(self, world):
        directory = RouteDirectory(world, BrokerConfig())
        directory.install("ubc", "gdrive", int(mb(4)), "via umich", source="history")
        directory.install("purdue", "gdrive", int(mb(4)), "via umich", source="history")
        directory.install("ucla", "gdrive", int(mb(4)), "direct", source="history")
        directory.invalidate_route("via umich")
        assert directory.invalidations == 2
        assert [e.route_descr for e in directory.entries()] == ["direct"]

    def test_invalidate_pair_direct_spares_detours(self, world):
        directory = RouteDirectory(world, BrokerConfig())
        directory.install("ubc", "gdrive", int(mb(4)), "direct", source="history")
        directory.install("ubc", "gdrive", int(mb(50)), "via ualberta", source="history")
        directory.install("purdue", "gdrive", int(mb(4)), "direct", source="history")
        directory.invalidate_pair_direct("ubc", "gdrive")
        kept = [(e.client_site, e.route_descr) for e in directory.entries()]
        assert kept == [("purdue", "direct"), ("ubc", "via ualberta")]


class TestAdmission:
    def test_direct_never_consults_dtns(self, world):
        admission = AdmissionController(world, BrokerConfig())
        route, spilled = admission.admit(DirectRoute())
        assert route.via is None and not spilled

    def test_unbounded_dtn_admits(self, world):
        admission = AdmissionController(world, BrokerConfig())
        route, spilled = admission.admit(DetourRoute("ualberta"))
        assert route.via == "ualberta" and not spilled
        assert admission.spills == 0

    def test_saturated_dtn_spills_to_direct(self, world):
        world.add_dtn("bounded", world.dtn_of("ualberta").host, max_sessions=1)
        admission = AdmissionController(world, BrokerConfig())
        slot = world.dtn_of("bounded").sessions.try_acquire()
        assert slot is not None
        route, spilled = admission.admit(DetourRoute("bounded"))
        assert route.via is None and spilled
        assert admission.spills == 1
        world.dtn_of("bounded").sessions.release(slot)
        route, spilled = admission.admit(DetourRoute("bounded"))
        assert route.via == "bounded" and not spilled


class TestStalenessDecay:
    """The satellite decay math, against a hand-rolled clock."""

    def _selector(self, clock, half_life_s=100.0):
        return HistorySelector(
            alpha=0.5, epsilon=0.0, rng=RngRegistry(0).stream("t"),
            half_life_s=half_life_s, clock=clock, min_freshness=0.25)

    def _ctx(self, world, size=int(mb(10))):
        return SelectionContext(world, "ubc", "gdrive", size,
                                ("ualberta", "umich"))

    def test_half_life_math(self, world):
        now = [0.0]
        sel = self._selector(lambda: now[0])
        ctx = self._ctx(world)
        route = DetourRoute("umich")
        assert sel.freshness(ctx, route) == 0.0  # never seen
        sel.update(ctx, route, int(mb(10)), 10.0)
        assert sel.freshness(ctx, route) == 1.0
        assert sel.last_update_s(ctx, route) == 0.0
        now[0] = 100.0
        assert sel.freshness(ctx, route) == pytest.approx(0.5)
        now[0] = 200.0
        assert sel.freshness(ctx, route) == pytest.approx(0.25)
        now[0] = 300.0
        assert sel.freshness(ctx, route) == pytest.approx(0.125)

    def test_update_restores_freshness(self, world):
        now = [0.0]
        sel = self._selector(lambda: now[0])
        ctx = self._ctx(world)
        route = DirectRoute()
        sel.update(ctx, route, int(mb(10)), 10.0)
        now[0] = 500.0
        assert sel.freshness(ctx, route) < 0.05
        sel.update(ctx, route, int(mb(10)), 10.0)
        assert sel.freshness(ctx, route) == 1.0
        assert sel.last_update_s(ctx, route) == 500.0

    def test_stale_routes_are_re_explored_by_choose(self, world):
        now = [0.0]
        sel = self._selector(lambda: now[0])
        ctx = self._ctx(world)
        for route in ctx.routes():
            sel.update(ctx, route, int(mb(10)), 10.0)
        # everything fresh: exploit (epsilon=0) — a deterministic best
        chosen = next(sel.choose(ctx), None) or None
        # two half-lives later every estimate is exactly at the 0.25
        # threshold; one tick more and the first route is stale again
        now[0] = 201.0
        gen = sel.choose(ctx)
        try:
            stale_choice = gen.send(None)
        except StopIteration as stop:
            stale_choice = stop.value
        assert stale_choice.describe() == ctx.routes()[0].describe()
        del chosen

    def test_no_half_life_means_no_decay(self, world):
        sel = HistorySelector(alpha=0.5, epsilon=0.0,
                              rng=RngRegistry(0).stream("t"))
        ctx = self._ctx(world)
        route = DirectRoute()
        sel.update(ctx, route, int(mb(10)), 10.0)
        assert sel.freshness(ctx, route) == 1.0
        assert sel.last_update_s(ctx, route) is None  # no clock injected

    def test_half_life_needs_clock(self):
        with pytest.raises(SelectionError):
            HistorySelector(alpha=0.5, epsilon=0.0,
                            rng=RngRegistry(0).stream("t"), half_life_s=60.0)
        with pytest.raises(SelectionError):
            HistorySelector(alpha=0.5, epsilon=0.0,
                            rng=RngRegistry(0).stream("t"),
                            half_life_s=60.0, clock=lambda: 0.0,
                            min_freshness=0.0)


class TestBrokerService:
    def test_default_then_history_then_directory(self, world):
        broker = DetourBroker(world, pairs=[("ubc", "gdrive")])
        rec = broker.recommend("ubc", "gdrive", int(mb(10)))
        assert rec.source == "default" and rec.route.via is None

        broker.report("ubc", "gdrive", DetourRoute("ualberta"), int(mb(10)), 5.0)
        rec = broker.recommend("ubc", "gdrive", int(mb(10)))
        assert rec.source == "history" and rec.route.via == "ualberta"

        rec = broker.recommend("ubc", "gdrive", int(mb(10)))
        assert rec.source == "directory" and rec.route.via == "ualberta"

    def test_report_prefers_faster_route(self, world):
        broker = DetourBroker(world, pairs=[("ubc", "gdrive")])
        broker.report("ubc", "gdrive", DetourRoute("ualberta"), int(mb(10)), 50.0)
        broker.report("ubc", "gdrive", DetourRoute("umich"), int(mb(10)), 5.0)
        rec = broker.recommend("ubc", "gdrive", int(mb(10)))
        assert rec.route.via == "umich"

    def test_dead_route_invalidates_directory(self, world):
        broker = DetourBroker(world, pairs=[("ubc", "gdrive")])
        broker.report("ubc", "gdrive", DetourRoute("ualberta"), int(mb(10)), 5.0)
        broker.recommend("ubc", "gdrive", int(mb(10)))  # installs the entry
        assert len(broker.directory.entries()) == 1
        broker.monitors[("ubc", "gdrive")].mark_dead(DetourRoute("ualberta"))
        assert broker.directory.entries() == []

    def test_unserved_client_raises(self, world):
        broker = DetourBroker(world, pairs=[("ubc", "gdrive")])
        with pytest.raises(BrokerError):
            broker.recommend("ucla", "gdrive", int(mb(10)))

    def test_double_start_raises(self, world):
        broker = DetourBroker(world, pairs=[("ubc", "gdrive")])
        broker.start()
        with pytest.raises(BrokerError):
            broker.start()
