"""Fleet runs: determinism, broker-off bit-identity, policy behavior."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.broker import BrokerConfig, DetourBroker, FleetRunner, run_fleet, score_fleet
from repro.errors import BrokerError
from repro.testbed import build_case_study
from repro.workloads import fleet_population_schedule

pytestmark = pytest.mark.broker

SITES = ("ubc", "purdue")

#: The broker-off control: exactly the kernel operations FleetRunner
#: performs in ``direct`` mode, written against the pre-broker API only.
#: Run in a subprocess so the interpreter provably never imported
#: ``repro.broker`` (asserted before and after the simulation).
NAIVE_DIRECT_FLEET = """
import json, sys
from repro.core.executor import PlanExecutor
from repro.core.routes import DirectRoute, TransferPlan
from repro.sim.kernel import AllOf
from repro.testbed import build_case_study
from repro.workloads import fleet_population_schedule

assert "repro.broker" not in sys.modules
world = build_case_study(seed=5, cross_traffic=True)
sched = fleet_population_schedule(("ubc", "purdue"), "gdrive", 4, 60.0, 20.0, seed=5)
executor = PlanExecutor(world)
durations = [None] * len(sched.uploads)

def one(i, u):
    delay = u.start_s - world.sim.now
    if delay > 0:
        yield delay
    plan = TransferPlan(u.client_site, u.provider_name, u.file, DirectRoute())
    result = yield from executor.execute(plan)
    durations[i] = result.total_s

procs = [world.sim.process(one(i, u), name=f"fleet:{i}")
         for i, u in enumerate(sched.uploads)]

def drive():
    yield AllOf(procs)

driver = world.sim.process(drive(), name="fleet-drive")
world.sim.run_until_triggered(driver.done, horizon=1e7)
assert driver.finished
assert "repro.broker" not in sys.modules
print(json.dumps(durations))
"""


class TestBitIdentity:
    def test_direct_mode_matches_world_that_never_imported_broker(self):
        src_dir = Path(__file__).resolve().parent.parent / "src"
        proc = subprocess.run(
            [sys.executable, "-c", NAIVE_DIRECT_FLEET],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": str(src_dir), "PATH": "/usr/bin:/bin"},
        )
        naive = json.loads(proc.stdout)
        result = run_fleet(5, SITES, n_uploads_per_site=4,
                           mean_interarrival_s=60.0, mean_size_mb=20.0,
                           cross_traffic=True, mode="direct")
        assert list(result.durations_s) == naive
        assert result.probes_issued == 0
        assert result.directory_hits == result.directory_misses == 0


class TestDeterminism:
    def test_broker_fleet_identical_across_two_runs(self):
        a = run_fleet(11, SITES, n_uploads_per_site=4, cross_traffic=True)
        b = run_fleet(11, SITES, n_uploads_per_site=4, cross_traffic=True)
        assert json.dumps(a.to_dict(), sort_keys=True) == \
            json.dumps(b.to_dict(), sort_keys=True)

    def test_different_seed_differs(self):
        a = run_fleet(11, SITES, n_uploads_per_site=4, cross_traffic=False)
        b = run_fleet(12, SITES, n_uploads_per_site=4, cross_traffic=False)
        assert a.to_dict() != b.to_dict()


class TestPolicies:
    def test_broker_learns_and_beats_direct_on_policed_client(self):
        direct = run_fleet(3, ("ubc",), n_uploads_per_site=6,
                           cross_traffic=False, mode="direct")
        broker = run_fleet(3, ("ubc",), n_uploads_per_site=6,
                           cross_traffic=False, mode="broker")
        # ubc's direct route is policed to ~9.6 Mbps; warmup probes find
        # the ualberta detour before the first upload even starts
        assert broker.mean_transfer_s < direct.mean_transfer_s
        assert all(r.route_descr != "direct" for r in broker.records)

    def test_static_self_detour_falls_back_to_direct(self):
        result = run_fleet(3, ("ubc",), n_uploads_per_site=2,
                           cross_traffic=False, mode="static:via ualberta")
        assert all(r.route_descr == "via ualberta" for r in result.records)
        world = build_case_study(seed=3, cross_traffic=False)
        sched = fleet_population_schedule(("ualberta",), "gdrive", 2, 60.0,
                                          20.0, seed=3)
        runner = FleetRunner(world, sched, mode="static:via ualberta")
        records = runner.run().records
        assert all(r.route_descr == "direct" for r in records)

    def test_probe_budget_is_honored(self):
        cfg = BrokerConfig(max_probes=2, warmup=True)
        result = run_fleet(3, ("ubc",), n_uploads_per_site=4,
                           cross_traffic=False, config=cfg)
        assert result.probes_issued <= 2

    def test_mode_validation(self):
        world = build_case_study(seed=0, cross_traffic=False)
        sched = fleet_population_schedule(("ubc",), "gdrive", 2, 60.0, 20.0)
        with pytest.raises(BrokerError):
            FleetRunner(world, sched, mode="static:")
        with pytest.raises(BrokerError):
            FleetRunner(world, sched, mode="greedy")
        with pytest.raises(BrokerError):
            FleetRunner(world, sched, mode="broker")  # no broker given
        with pytest.raises(BrokerError):
            FleetRunner(world, sched, mode="direct",
                        broker=DetourBroker(world, pairs=[("ubc", "gdrive")]))


class TestScoring:
    def test_score_fleet_regret(self):
        kw = dict(n_uploads_per_site=3, cross_traffic=False)
        results = {
            "direct": run_fleet(2, ("ubc",), mode="direct", **kw),
            "broker": run_fleet(2, ("ubc",), mode="broker", **kw),
        }
        score = score_fleet(results)
        assert score.n_uploads == 3
        # the oracle is at least as fast as every policy
        for mode in results:
            assert score.by_mode[mode][0] >= score.oracle_mean_s
            assert score.by_mode[mode][1] >= 0.0
        assert "regret" in score.render()

    def test_score_fleet_validation(self):
        with pytest.raises(BrokerError):
            score_fleet({})
        a = run_fleet(2, ("ubc",), n_uploads_per_site=2, cross_traffic=False,
                      mode="direct")
        b = run_fleet(2, ("ubc",), n_uploads_per_site=3, cross_traffic=False,
                      mode="direct")
        with pytest.raises(BrokerError):
            score_fleet({"a": a, "b": b})


class TestRollups:
    @pytest.fixture(scope="class")
    def scored(self):
        kw = dict(n_uploads_per_site=3, cross_traffic=False)
        results = {
            "direct": run_fleet(2, SITES, mode="direct", **kw),
            "broker": run_fleet(2, SITES, mode="broker", **kw),
        }
        return results, score_fleet(results)

    def test_by_site_partitions_the_by_mode_aggregate(self, scored):
        results, score = scored
        for mode, result in results.items():
            site_counts = {}
            for rec in result.records:
                site_counts[rec.client_site] = \
                    site_counts.get(rec.client_site, 0) + 1
            assert set(site_counts) == set(SITES)
            # weighted site means recompose the policy mean
            weighted = sum(score.by_site[(mode, s)][0] * n
                           for s, n in site_counts.items())
            assert weighted / score.n_uploads \
                == pytest.approx(score.by_mode[mode][0])
            for site in SITES:
                assert score.by_site[(mode, site)][1] >= 0.0

    def test_render_per_site_lists_every_site(self, scored):
        _, score = scored
        text = score.render(per_site=True)
        for site in SITES:
            assert site in text
        assert all(site not in score.render() for site in SITES)

    def test_to_metrics_exports_mode_and_site_series(self, scored):
        from repro.obs import MetricsRegistry, render_prometheus

        _, score = scored
        registry = MetricsRegistry()
        score.to_metrics(registry)
        mean_g = registry.get("repro_broker_fleet_mean_transfer_seconds")
        for mode in ("direct", "broker"):
            assert mean_g.value(mode=mode) \
                == pytest.approx(score.by_mode[mode][0])
            for site in SITES:
                assert mean_g.value(mode=mode, site=site) \
                    == pytest.approx(score.by_site[(mode, site)][0])
        assert registry.get("repro_broker_fleet_oracle_mean_seconds").value() \
            == pytest.approx(score.oracle_mean_s)
        text = render_prometheus(registry)
        assert 'mode="broker",site="purdue"' in text
        assert "# TYPE repro_broker_fleet_regret_mean_seconds gauge" in text

    def test_fleet_runner_per_site_instrumentation(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        result = run_fleet(2, SITES, n_uploads_per_site=3,
                           cross_traffic=False, mode="direct",
                           metrics=registry)
        uploads = registry.get("repro_broker_fleet_uploads_total")
        nbytes = registry.get("repro_broker_fleet_payload_bytes_total")
        source = registry.get("repro_broker_fleet_route_source_total")
        assert uploads.total() == len(result.records)
        for site in SITES:
            site_records = [r for r in result.records
                            if r.client_site == site]
            assert uploads.value(mode="direct", site=site) \
                == len(site_records)
            assert nbytes.value(site=site) \
                == sum(r.size_bytes for r in site_records)
        assert source.value(source="direct") == len(result.records)
