"""Campaign engine end-to-end: pool, runner, resume, quarantine, CLI.

The acceptance contracts live here:

* a 12-cell campaign run with ``jobs=4`` exports **byte-identical**
  JSON to the same campaign run with ``jobs=1``;
* a campaign killed mid-run and resumed from the same store executes
  only the missing cells (asserted via the ``repro.obs`` cell counters);
* a quarantined cell becomes an error record that survives
  ``campaign export`` round-trips and never aborts the campaign.
"""

import os
import signal
import time

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    PoolConfig,
    ResultStore,
    campaign_status,
    export_records,
)
from repro.campaign.store import TIMEOUT_KIND
from repro.cli import main as cli_main
from repro.errors import CampaignError
from repro.measure import ExperimentProtocol
from repro.obs import MetricsRegistry

pytestmark = pytest.mark.campaign

FAST_PROTO = ExperimentProtocol(2, 0, 1.0)


def twelve_cell_spec(**over) -> CampaignSpec:
    """1 client x 2 providers x 3 routes x 2 sizes = 12 cells."""
    kw = dict(clients=("ubc",), providers=("gdrive", "dropbox"),
              sizes_mb=(1.0, 2.0), protocol=FAST_PROTO, cross_traffic=False)
    kw.update(over)
    return CampaignSpec(**kw)


class TestPoolConfig:
    def test_rejects_bad_values(self):
        for bad in (dict(jobs=0), dict(timeout_s=0.0), dict(retries=-1)):
            with pytest.raises(CampaignError):
                PoolConfig(**bad)


class TestParallelBitIdentity:
    def test_jobs4_export_is_byte_identical_to_jobs1(self):
        spec = twelve_cell_spec()
        assert len(spec.expand()) == 12
        serial = CampaignRunner(spec, pool=PoolConfig(jobs=1)).run()
        parallel = CampaignRunner(spec, pool=PoolConfig(jobs=4)).run()
        assert export_records(serial.records, spec) == \
            export_records(parallel.records, spec)

    def test_metrics_merge_is_schedule_independent(self):
        spec = twelve_cell_spec(sizes_mb=(1.0,))
        m1, m4 = MetricsRegistry(), MetricsRegistry()
        CampaignRunner(spec, pool=PoolConfig(jobs=1), metrics=m1).run()
        CampaignRunner(spec, pool=PoolConfig(jobs=4), metrics=m4).run()
        assert m1.collect() == m4.collect()


class TestResume:
    def test_prefilled_cells_are_not_recomputed(self, tmp_path):
        store = ResultStore(tmp_path / "cells")
        # pre-fill half the matrix (one size), as an interrupted run would
        CampaignRunner(twelve_cell_spec(sizes_mb=(1.0,)), store=store).run()
        assert len(store) == 6
        metrics = MetricsRegistry()
        result = CampaignRunner(twelve_cell_spec(), store=store,
                                metrics=metrics).run()
        assert (result.executed, result.cached) == (6, 6)
        assert metrics.get("repro_campaign_cells_executed_total").total() == 6
        assert metrics.get("repro_campaign_cells_cached_total").total() == 6
        assert len(result.records) == 12

    def test_kill_mid_campaign_then_resume(self, tmp_path):
        """SIGKILL a running campaign; resuming completes only the rest."""
        store_root = tmp_path / "cells"
        # cross-traffic + larger files: slow enough (~0.5 s/cell) that the
        # kill lands mid-campaign instead of after the last cell
        spec = twelve_cell_spec(sizes_mb=(10.0, 20.0), cross_traffic=True)

        pid = os.fork()  # simlint: ignore[SL502] -- the test *is* the killer
        if pid == 0:  # child: run the campaign serially until killed
            os.closerange(0, 3)
            CampaignRunner(spec, store=ResultStore(store_root)).run()
            os._exit(0)

        try:  # parent: wait for some—not all—cells, then kill -9
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if len(ResultStore(store_root)) >= 2:
                    break
                time.sleep(0.02)
        finally:
            os.kill(pid, signal.SIGKILL)
            os.waitpid(pid, 0)

        store = ResultStore(store_root)
        survived = len(store)  # atomic writes: every record is whole
        assert survived >= 2
        metrics = MetricsRegistry()
        result = CampaignRunner(spec, store=store, metrics=metrics).run()
        assert result.cached == survived
        assert result.executed == 12 - survived
        assert metrics.get("repro_campaign_cells_executed_total").total() == \
            12 - survived
        assert campaign_status(spec, store)["missing"] == 0


class TestQuarantine:
    def test_failing_cell_never_aborts_the_campaign(self, tmp_path):
        spec = twelve_cell_spec(providers=("gdrive", "nosuch"),
                                sizes_mb=(1.0,))
        metrics = MetricsRegistry()
        store = ResultStore(tmp_path / "cells")
        result = CampaignRunner(spec, store=store, pool=PoolConfig(jobs=3),
                                metrics=metrics).run()
        assert len(result.records) == 6
        ok = [r for r in result.records if r.ok]
        bad = [r for r in result.records if not r.ok]
        assert len(ok) == 3 and len(bad) == 3
        assert all(r.cell.provider == "nosuch" for r in bad)
        assert all(r.error.kind and r.error.message for r in bad)
        assert metrics.get("repro_campaign_cells_error_total").total() == 3

    def test_deterministic_failures_are_not_retried(self):
        spec = CampaignSpec(clients=("ubc",), providers=("nosuch",),
                            routes=("direct",), sizes_mb=(1.0,),
                            protocol=FAST_PROTO, cross_traffic=False)
        result = CampaignRunner(spec, pool=PoolConfig(jobs=2, retries=3)).run()
        assert result.records[0].attempts == 1  # model errors: no retry

    def test_error_records_round_trip_through_the_cli_export(
            self, tmp_path, capsys):
        store_dir = str(tmp_path / "cells")
        args = ["--clients", "ubc", "--providers", "nosuch",
                "--routes", "direct", "--sizes-mb", "1",
                "--fast", "--cache-dir", store_dir]
        assert cli_main(["campaign", "run"] + args + ["--jobs", "2"]) == 1
        capsys.readouterr()
        out_path = tmp_path / "export.json"
        assert cli_main(["campaign", "export"] + args +
                        ["--out", str(out_path)]) == 0
        capsys.readouterr()
        from repro.campaign import load_export

        with open(out_path, encoding="utf-8") as fp:
            records = load_export(fp)
        assert len(records) == 1 and not records[0].ok
        assert records[0].error.kind


class TestTimeout:
    def test_slow_cell_times_out_with_bounded_retries(self, tmp_path):
        # 1 MB cell takes ~0.2 s wall-clock; 1 ms cannot succeed
        spec = CampaignSpec(clients=("ubc",), providers=("gdrive",),
                            routes=("direct",), sizes_mb=(1.0,),
                            protocol=FAST_PROTO, cross_traffic=False)
        result = CampaignRunner(
            spec, pool=PoolConfig(jobs=2, timeout_s=0.001, retries=1)).run()
        rec = result.records[0]
        assert not rec.ok
        assert rec.error.kind == TIMEOUT_KIND
        assert rec.attempts == 2  # first try + one retry


class TestCliCampaign:
    ARGS = ["--clients", "ubc", "--providers", "gdrive", "--routes",
            "direct;via umich", "--sizes-mb", "1", "--fast"]

    def test_run_status_export(self, tmp_path, capsys):
        store_dir = str(tmp_path / "cells")
        assert cli_main(["campaign", "status"] + self.ARGS +
                        ["--cache-dir", store_dir]) == 1
        out = capsys.readouterr().out
        assert "missing 2" in out

        assert cli_main(["campaign", "run"] + self.ARGS +
                        ["--cache-dir", store_dir, "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "executed 2, cached 0" in out

        assert cli_main(["campaign", "status"] + self.ARGS +
                        ["--cache-dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "ok 2" in out and "missing 0" in out

        assert cli_main(["campaign", "export"] + self.ARGS +
                        ["--cache-dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert '"repro-campaign-export"' in out

    def test_run_resumes_from_store(self, tmp_path, capsys):
        store_dir = str(tmp_path / "cells")
        assert cli_main(["campaign", "run"] + self.ARGS +
                        ["--cache-dir", store_dir]) == 0
        capsys.readouterr()
        assert cli_main(["campaign", "run"] + self.ARGS +
                        ["--cache-dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "executed 0, cached 2" in out

    def test_export_without_store_is_an_error(self):
        with pytest.raises(SystemExit):
            cli_main(["campaign", "export"] + self.ARGS)


class TestReportCacheFlags:
    def test_table_with_cache_dir_populates_and_reuses(self, tmp_path, capsys):
        from repro.analysis.common import _CELL_CACHE

        store_dir = str(tmp_path / "cells")
        _CELL_CACHE.clear()
        assert cli_main(["table", "2", "--fast",
                         "--cache-dir", store_dir]) == 0
        first = capsys.readouterr().out
        assert len(ResultStore(store_dir)) > 0
        _CELL_CACHE.clear()
        assert cli_main(["table", "2", "--fast",
                         "--cache-dir", store_dir]) == 0
        second = capsys.readouterr().out
        assert first == second
