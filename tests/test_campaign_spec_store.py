"""Campaign spec, cell identity, result store, and export round-trips.

Everything here is single-process; the worker-pool suite lives in
``test_campaign_runner.py``.  The golden-seed tests pin the derived-seed
contract: a campaign cell's world seed must equal what the measurement
harness derives for the same label, forever — changing either side
silently invalidates every stored result.
"""

import io
import json

import pytest

from repro.analysis.common import AnalysisConfig, _CELL_CACHE, measure_cell
from repro.campaign import (
    CampaignCell,
    CampaignSpec,
    CellError,
    CellRecord,
    ResultStore,
    export_records,
    load_export,
    route_from_string,
    run_cell,
)
from repro.campaign.spec import CELL_KEY_VERSION
from repro.campaign.store import record_from_dict, record_to_dict
from repro.core.routes import DetourRoute, DirectRoute
from repro.errors import CampaignError
from repro.measure import ExperimentProtocol, experiment_seed
from repro.sim.rng import derive_seed
from repro.transfer.dtn import RelayMode

pytestmark = pytest.mark.campaign

FAST_PROTO = ExperimentProtocol(2, 0, 1.0)


def fast_cell(**over) -> CampaignCell:
    kw = dict(client="ubc", provider="gdrive", route="direct", size_mb=1.0,
              protocol=FAST_PROTO, cross_traffic=False)
    kw.update(over)
    return CampaignCell(**kw)


class TestGoldenSeeds:
    """Pinned derived seeds — the bit-identity contract, frozen."""

    GOLDEN = [
        (0, "ubc->gdrive [direct] 100MB", 5971421140900440915),
        (0, "ubc->gdrive [via ualberta] 100MB", 10525473373727383994),
        (7, "purdue->dropbox [via umich (pipelined)] 60MB", 6493889953740047265),
    ]

    @pytest.mark.parametrize("master,label,expected", GOLDEN)
    def test_pinned_values(self, master, label, expected):
        assert experiment_seed(master, label) == expected

    def test_matches_derive_seed_spelling(self):
        # the helper is sugar for the harness's historical derivation
        assert experiment_seed(3, "x") == derive_seed(3, "experiment:x")

    def test_cell_world_seed_uses_the_helper(self):
        cell = CampaignCell("ubc", "gdrive", "direct", 100.0)
        assert cell.label == "ubc->gdrive [direct] 100MB"
        assert cell.world_seed == 5971421140900440915

    def test_cell_key_pinned(self):
        # default-protocol cell; a key change invalidates every store
        assert CampaignCell("ubc", "gdrive", "direct", 100.0).key == \
            "8efe958a53d4600ba856ae5a"


class TestRouteFromString:
    def test_direct(self):
        assert isinstance(route_from_string("direct"), DirectRoute)

    def test_detour(self):
        r = route_from_string("via ualberta")
        assert isinstance(r, DetourRoute) and r.via_site == "ualberta"
        assert r.mode is RelayMode.STORE_AND_FORWARD

    def test_pipelined(self):
        r = route_from_string("via umich (pipelined)")
        assert r.mode is RelayMode.PIPELINED

    def test_round_trips_describe(self):
        for text in ("direct", "via umich", "via ualberta (pipelined)"):
            assert route_from_string(text).describe() == text

    @pytest.mark.parametrize("bad", ["", "detour", "via", "via x (warp)"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(CampaignError):
            route_from_string(bad)


class TestSpecExpansion:
    def test_deterministic_order(self):
        spec = CampaignSpec(clients=("ubc", "ucla"), providers=("gdrive",),
                            routes=("direct",), sizes_mb=(10.0, 50.0),
                            seeds=(0, 1))
        got = [(c.seed, c.client, c.size_mb) for c in spec.expand()]
        assert got == [(0, "ubc", 10.0), (0, "ubc", 50.0),
                       (0, "ucla", 10.0), (0, "ucla", 50.0),
                       (1, "ubc", 10.0), (1, "ubc", 50.0),
                       (1, "ucla", 10.0), (1, "ucla", 50.0)]

    def test_default_routes_are_the_paper_set(self):
        spec = CampaignSpec(clients=("ubc",), providers=("gdrive",),
                            sizes_mb=(10.0,))
        assert spec.routes_for("ubc") == ("direct", "via ualberta", "via umich")

    def test_explicit_routes_skip_self_detour(self):
        spec = CampaignSpec(routes=("direct", "via ualberta"))
        assert spec.routes_for("ualberta") == ("direct",)
        assert spec.routes_for("ubc") == ("direct", "via ualberta")

    def test_empty_axis_rejected(self):
        with pytest.raises(CampaignError):
            CampaignSpec(clients=())

    def test_bad_route_rejected_at_construction(self):
        with pytest.raises(CampaignError):
            CampaignSpec(routes=("warp drive",))

    def test_all_self_detours_expand_to_zero_cells(self):
        spec = CampaignSpec(clients=("umich",), routes=("via umich",))
        with pytest.raises(CampaignError):
            spec.expand()

    def test_describe_counts_cells(self):
        spec = CampaignSpec(clients=("ubc",), providers=("gdrive",),
                            routes=("direct",), sizes_mb=(10.0,))
        assert "= 1 cells" in spec.describe()


class TestCellIdentity:
    def test_key_is_stable_under_reconstruction(self):
        assert fast_cell().key == fast_cell().key

    @pytest.mark.parametrize("field,value", [
        ("client", "ucla"), ("provider", "dropbox"), ("route", "via umich"),
        ("size_mb", 2.0), ("seed", 1), ("cross_traffic", True),
        ("protocol", ExperimentProtocol(3, 1, 1.0)),
    ])
    def test_every_result_shaping_field_changes_the_key(self, field, value):
        assert fast_cell(**{field: value}).key != fast_cell().key

    def test_identity_round_trip(self):
        cell = fast_cell(seed=3)
        again = CampaignCell.from_identity(cell.identity())
        assert again == cell and again.key == cell.key

    def test_identity_version_checked(self):
        ident = fast_cell().identity()
        ident["version"] = CELL_KEY_VERSION + 1
        with pytest.raises(CampaignError):
            CampaignCell.from_identity(ident)

    def test_identity_is_json_canonical(self):
        blob = json.dumps(fast_cell().identity(), sort_keys=True)
        assert json.loads(blob) == fast_cell().identity()


class TestResultStore:
    @pytest.fixture()
    def store(self, tmp_path):
        return ResultStore(tmp_path / "cells")

    @pytest.fixture(scope="class")
    def measured(self):
        cell = fast_cell()
        return cell, run_cell(cell)

    def test_round_trip_is_bit_identical(self, store, measured):
        cell, m = measured
        store.put(CellRecord(cell=cell, status="ok", measurement=m))
        back = store.get(cell).measurement
        assert back.all_durations_s == m.all_durations_s
        assert back.kept == m.kept
        assert back.results == ()  # per-run payloads are not persisted

    def test_missing_cell_is_none(self, store):
        assert store.get(fast_cell()) is None
        assert fast_cell() not in store and len(store) == 0

    def test_contains_and_len(self, store, measured):
        cell, m = measured
        store.put(CellRecord(cell=cell, status="ok", measurement=m))
        assert cell in store and len(store) == 1

    def test_error_record_round_trip(self, store):
        cell = fast_cell(provider="nosuch")
        rec = CellRecord(cell=cell, status="error",
                         error=CellError("TopologyError", "no such host"),
                         attempts=2)
        store.put(rec)
        back = store.get(cell)
        assert not back.ok
        assert back.error == CellError("TopologyError", "no such host")
        assert back.attempts == 2

    def test_corrupt_record_raises(self, store, measured):
        cell, m = measured
        path = store.put(CellRecord(cell=cell, status="ok", measurement=m))
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CampaignError, match="corrupt"):
            store.get(cell)

    def test_identity_mismatch_raises(self, store, measured):
        cell, m = measured
        other = fast_cell(size_mb=2.0)
        # plant cell's record where other's key points: a forged collision
        path = store.put(CellRecord(cell=cell, status="ok", measurement=m))
        path.rename(store.path_for(other))
        with pytest.raises(CampaignError, match="does not match"):
            store.get(other)

    def test_discard(self, store, measured):
        cell, m = measured
        store.put(CellRecord(cell=cell, status="ok", measurement=m))
        assert store.discard(cell) is True
        assert store.discard(cell) is False
        assert store.get(cell) is None

    def test_records_sorted_by_identity(self, store, measured):
        cell, m = measured
        b = fast_cell(size_mb=2.0)
        store.put(CellRecord(cell=b, status="error",
                             error=CellError("timeout", "")))
        store.put(CellRecord(cell=cell, status="ok", measurement=m))
        assert [r.cell.size_mb for r in store.records()] == [1.0, 2.0]

    def test_record_validation(self):
        with pytest.raises(CampaignError):
            CellRecord(cell=fast_cell(), status="ok")  # no measurement
        with pytest.raises(CampaignError):
            CellRecord(cell=fast_cell(), status="error")  # no error
        with pytest.raises(CampaignError):
            CellRecord(cell=fast_cell(), status="maybe")

    def test_record_dict_round_trip(self, measured):
        cell, m = measured
        rec = CellRecord(cell=cell, status="ok", measurement=m)
        again = record_from_dict(json.loads(json.dumps(record_to_dict(rec))))
        assert again.cell == cell
        assert again.measurement.all_durations_s == m.all_durations_s
        assert again.measurement.kept == m.kept


class TestExport:
    def test_round_trip_including_errors(self):
        cell = fast_cell()
        m = run_cell(cell)
        recs = [
            CellRecord(cell=cell, status="ok", measurement=m),
            CellRecord(cell=fast_cell(provider="nosuch"), status="error",
                       error=CellError("TopologyError", "unknown host"),
                       attempts=2),
        ]
        back = load_export(io.StringIO(export_records(recs)))
        assert len(back) == 2
        assert back[0].measurement.kept == m.kept
        assert back[1].error == CellError("TopologyError", "unknown host")
        assert back[1].attempts == 2

    def test_export_is_deterministic_text(self):
        cell = fast_cell()
        m = run_cell(cell)
        recs = [CellRecord(cell=cell, status="ok", measurement=m)]
        assert export_records(recs) == export_records(recs)

    def test_rejects_foreign_documents(self):
        with pytest.raises(CampaignError):
            load_export(io.StringIO('{"format": "something-else"}'))
        with pytest.raises(CampaignError):
            load_export(io.StringIO("not json"))


class TestMeasureCellStoreIntegration:
    """``measure_cell`` is the analysis layer's door into the store."""

    CFG = dict(protocol=FAST_PROTO, sizes_mb=(1.0,), cross_traffic=False)

    def test_cells_persist_and_reload_bit_identically(self, tmp_path):
        store = ResultStore(tmp_path / "cells")
        cfg = AnalysisConfig(store=store, **self.CFG)
        route = DirectRoute()
        fresh = measure_cell(cfg, "ubc", "gdrive", route, 1.0)
        assert len(store) == 1
        # clear the in-process memo: the next call must hit the disk store
        _CELL_CACHE.clear()
        loaded = measure_cell(cfg, "ubc", "gdrive", route, 1.0)
        assert loaded.kept == fresh.kept
        assert loaded.all_durations_s == fresh.all_durations_s
        assert loaded.results == ()  # proves it came from disk, not a re-run

    def test_store_agrees_with_direct_run_cell(self, tmp_path):
        # the same cell measured through the analysis layer and through
        # the campaign worker is one world: identical durations
        store = ResultStore(tmp_path / "cells")
        cfg = AnalysisConfig(store=store, **self.CFG)
        via_analysis = measure_cell(cfg, "ubc", "gdrive", DirectRoute(), 1.0)
        via_campaign = run_cell(fast_cell())
        assert via_analysis.all_durations_s == via_campaign.all_durations_s

    def test_storeless_config_still_works(self):
        _CELL_CACHE.clear()
        cfg = AnalysisConfig(**self.CFG)
        m = measure_cell(cfg, "ubc", "gdrive", DirectRoute(), 1.0)
        assert m.kept.n == FAST_PROTO.total_runs - FAST_PROTO.discard_runs
