"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_compare_args(self):
        args = build_parser().parse_args(["compare", "ubc", "gdrive", "--size-mb", "50"])
        assert args.client == "ubc" and args.size_mb == 50.0

    def test_invalid_client_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "mit", "gdrive"])


class TestCommands:
    def test_compare(self, capsys):
        assert main(["compare", "ubc", "gdrive", "--size-mb", "20", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "via ualberta" in out and "fastest" in out

    def test_upload(self, capsys):
        assert main(["upload", "ubc", "onedrive", "--size-mb", "20"]) == 0
        out = capsys.readouterr().out
        assert "direct" in out  # OneDrive from UBC: direct wins

    def test_traceroute(self, capsys):
        assert main(["traceroute", "ubc-pl", "gdrive-frontend"]) == 0
        out = capsys.readouterr().out
        assert "vncv1rtr2.canarie.ca" in out and "ms" in out

    def test_figure_fast(self, capsys):
        assert main(["figure", "fig4", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Dropbox" in out and "10 MB" in out

    def test_figure_traceroute_ids(self, capsys):
        assert main(["figure", "fig5"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("traceroute to www.googleapis.com")

    def test_table_fast(self, capsys):
        assert main(["table", "2", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "UBC-to-Google Drive" in out

    def test_table1_fast(self, capsys):
        assert main(["table", "1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Fastest" in out

    def test_routeviews(self, capsys):
        assert main(["routeviews", "google"]) == 0
        out = capsys.readouterr().out
        assert "RIB snapshot" in out
        assert "AS4444" in out  # the pacificwave anomaly

    def test_tiv(self, capsys):
        assert main(["tiv", "--margin", "1.5"]) == 0
        out = capsys.readouterr().out
        assert "probed 20 pairs" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
