"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_compare_args(self):
        args = build_parser().parse_args(["compare", "ubc", "gdrive", "--size-mb", "50"])
        assert args.client == "ubc" and args.size_mb == 50.0

    def test_invalid_client_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "mit", "gdrive"])


class TestCommands:
    def test_compare(self, capsys):
        assert main(["compare", "ubc", "gdrive", "--size-mb", "20", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "via ualberta" in out and "fastest" in out

    def test_upload(self, capsys):
        assert main(["upload", "ubc", "onedrive", "--size-mb", "20"]) == 0
        out = capsys.readouterr().out
        assert "direct" in out  # OneDrive from UBC: direct wins

    def test_traceroute(self, capsys):
        assert main(["traceroute", "ubc-pl", "gdrive-frontend"]) == 0
        out = capsys.readouterr().out
        assert "vncv1rtr2.canarie.ca" in out and "ms" in out

    def test_figure_fast(self, capsys):
        assert main(["figure", "fig4", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Dropbox" in out and "10 MB" in out

    def test_figure_traceroute_ids(self, capsys):
        assert main(["figure", "fig5"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("traceroute to www.googleapis.com")

    def test_table_fast(self, capsys):
        assert main(["table", "2", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "UBC-to-Google Drive" in out

    def test_table1_fast(self, capsys):
        assert main(["table", "1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Fastest" in out

    def test_routeviews(self, capsys):
        assert main(["routeviews", "google"]) == 0
        out = capsys.readouterr().out
        assert "RIB snapshot" in out
        assert "AS4444" in out  # the pacificwave anomaly

    def test_tiv(self, capsys):
        assert main(["tiv", "--margin", "1.5"]) == 0
        out = capsys.readouterr().out
        assert "probed 20 pairs" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestBrokerCommand:
    FLEET = ["--sites", "ubc", "--uploads-per-site", "3",
             "--size-mb", "20", "--no-cross-traffic"]

    def test_simulate(self, capsys):
        assert main(["broker", "simulate", *self.FLEET, "--uploads"]) == 0
        out = capsys.readouterr().out
        assert "fleet [broker]: 3 uploads" in out
        assert "directory hit rate" in out
        assert out.count("#") == 3  # one ledger line per upload

    def test_simulate_direct_mode(self, capsys):
        assert main(["broker", "simulate", *self.FLEET,
                     "--mode", "direct"]) == 0
        out = capsys.readouterr().out
        assert "fleet [direct]" in out and "probes 0" in out

    def test_simulate_metrics_and_profile_trace(self, capsys, tmp_path):
        """Acceptance: a fleet run exports per-site metrics and a
        Chrome trace that Perfetto can load."""
        import json

        trace = tmp_path / "fleet_trace.json"
        prom = tmp_path / "fleet.prom"
        assert main(["broker", "simulate", *self.FLEET,
                     "--mode", "direct", "--metrics", str(prom),
                     "--profile-trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert str(trace) in out
        text = prom.read_text(encoding="utf-8")
        assert 'repro_broker_fleet_uploads_total{mode="direct",site="ubc"}' \
            in text
        assert "repro_broker_fleet_payload_bytes_total" in text
        payload = json.loads(trace.read_text(encoding="utf-8"))
        xs = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert xs
        assert all(e["ts"] >= 0 and e["dur"] >= 0 and "sim_time_s" in e["args"]
                   for e in xs)

    def test_eval_metrics_export(self, capsys, tmp_path):
        store = str(tmp_path / "cells")
        assert main(["broker", "eval", *self.FLEET,
                     "--modes", "direct", "--cache-dir", store,
                     "--metrics", "-"]) == 0
        out = capsys.readouterr().out
        assert "repro_broker_sweep_mean_transfer_seconds" in out
        assert "repro_broker_sweep_regret_mean_seconds" in out

    def test_eval_and_export(self, capsys, tmp_path):
        store = str(tmp_path / "cells")
        assert main(["broker", "eval", *self.FLEET,
                     "--modes", "direct;broker", "--cache-dir", store]) == 0
        out = capsys.readouterr().out
        assert "executed 2, cached 0" in out
        assert "regret" in out

        # a second eval answers fully from the store
        assert main(["broker", "eval", *self.FLEET,
                     "--modes", "direct;broker", "--cache-dir", store]) == 0
        assert "executed 0, cached 2" in capsys.readouterr().out

        out_file = tmp_path / "export.json"
        assert main(["broker", "export", *self.FLEET,
                     "--modes", "direct;broker", "--cache-dir", store,
                     "--out", str(out_file)]) == 0
        doc = out_file.read_text()
        assert '"cell_type": "broker-fleet"' in doc

    def test_export_requires_cache_dir(self):
        with pytest.raises(SystemExit):
            main(["broker", "export", *self.FLEET])


class TestLintCli:
    def test_fix_flags_parse(self):
        args = build_parser().parse_args(
            ["lint", "src", "--fix", "--fix-mode", "suppress", "--dry-run"])
        assert args.fix and args.fix_mode == "suppress" and args.dry_run

    def test_fix_mode_defaults_to_rewrite(self):
        args = build_parser().parse_args(["lint", "--fix"])
        assert args.fix_mode == "rewrite" and not args.dry_run

    def test_bad_fix_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--fix", "--fix-mode", "yolo"])

    def test_fix_dry_run_smoke(self, capsys, tmp_path):
        tree = tmp_path / "sim"
        tree.mkdir()
        (tree / "__init__.py").write_text("", encoding="utf-8")
        (tree / "mod.py").write_text(
            "def order(out):\n"
            "    for name in {\"b\", \"a\"}:\n"
            "        out.append(name)\n", encoding="utf-8")
        before = (tree / "mod.py").read_text(encoding="utf-8")
        assert main(["lint", str(tmp_path), "--no-baseline",
                     "--fix", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "1 finding(s) fixable in 1 file(s)" in out
        assert "no files written" in out
        assert "+    for name in sorted({\"b\", \"a\"}):" in out
        assert (tree / "mod.py").read_text(encoding="utf-8") == before
