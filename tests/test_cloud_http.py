"""HTTPS session model: retries, backoff, fault injection."""

import numpy as np
import pytest

from repro.cloud import FaultInjector, HttpsSession, RetryPolicy
from repro.errors import CloudApiError
from repro.net.tcp import TcpModel, TcpPathParams
from repro.sim import Simulator

PARAMS = TcpPathParams(rtt_s=0.040, loss=0.0)


def drive(sim, gen):
    proc = sim.process(gen)
    sim.run()
    if proc.error:
        raise proc.error
    return proc.result


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        p = RetryPolicy(base_backoff_s=0.5, multiplier=2.0)
        assert p.backoff_s(1) == 0.5
        assert p.backoff_s(2) == 1.0
        assert p.backoff_s(3) == 2.0

    def test_retryable_statuses(self):
        p = RetryPolicy()
        assert p.is_retryable(503) and p.is_retryable(429)
        assert not p.is_retryable(404) and not p.is_retryable(401)

    def test_validation(self):
        with pytest.raises(CloudApiError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(CloudApiError):
            RetryPolicy(multiplier=0.5)


class TestFaultInjector:
    def test_zero_rate_never_fires(self):
        f = FaultInjector(np.random.default_rng(0), error_rate=0.0)
        assert all(f.roll() is None for _ in range(100))
        assert f.injected == 0

    def test_rate_approximately_respected(self):
        f = FaultInjector(np.random.default_rng(1), error_rate=0.3)
        fails = sum(1 for _ in range(2000) if f.roll() is not None)
        assert 450 < fails < 750
        assert f.injected == fails

    def test_statuses_drawn_from_pool(self):
        f = FaultInjector(np.random.default_rng(2), error_rate=1.0 - 1e-9,
                          statuses=(429, 503))
        seen = {f.roll() for _ in range(50)}
        assert seen <= {429, 503} and len(seen) == 2

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(CloudApiError):
            FaultInjector(rng, error_rate=1.5)
        with pytest.raises(CloudApiError):
            FaultInjector(rng, error_rate=0.1, statuses=())


class TestHttpsSession:
    def test_clean_request_costs_rtt_plus_server(self):
        sim = Simulator()
        session = HttpsSession(sim, TcpModel(), PARAMS)

        def proc():
            yield from session.connect()
            connected_at = sim.now
            attempts = yield from session.request(0.100)
            return connected_at, sim.now, attempts

        connected_at, end, attempts = drive(sim, proc())
        assert connected_at == pytest.approx(0.120)  # 3 RTT TLS connect
        assert end - connected_at == pytest.approx(0.140)  # rtt + server
        assert attempts == 1

    def test_connect_is_idempotent(self):
        sim = Simulator()
        session = HttpsSession(sim, TcpModel(), PARAMS)

        def proc():
            yield from session.connect()
            t1 = sim.now
            yield from session.connect()
            return t1, sim.now

        t1, t2 = drive(sim, proc())
        assert t1 == t2

    def test_request_autoconnects(self):
        sim = Simulator()
        session = HttpsSession(sim, TcpModel(), PARAMS)

        def proc():
            yield from session.request(0.0)
            return sim.now

        end = drive(sim, proc())
        assert end == pytest.approx(0.120 + 0.040)

    def test_transient_fault_retried_with_backoff(self):
        sim = Simulator()
        # fail exactly the first attempt: rate ~1 then 0 via crafted rng
        class OneShotFault:
            def __init__(self):
                self.calls = 0

            def roll(self):
                self.calls += 1
                return 503 if self.calls == 1 else None

        fault = OneShotFault()
        session = HttpsSession(sim, TcpModel(), PARAMS, fault=fault,
                               retry=RetryPolicy(base_backoff_s=1.0))

        def proc():
            attempts = yield from session.request(0.010)
            return attempts, sim.now

        attempts, end = drive(sim, proc())
        assert attempts == 2
        assert session.retries == 1
        # connect 0.12 + req 0.05 + backoff 1.0 + req 0.05
        assert end == pytest.approx(1.22)

    def test_exhausted_retries_raise(self):
        sim = Simulator()
        always = FaultInjector(np.random.default_rng(0), error_rate=1.0 - 1e-12)
        session = HttpsSession(sim, TcpModel(), PARAMS, fault=always,
                               retry=RetryPolicy(max_attempts=3, base_backoff_s=0.1))

        def proc():
            yield from session.request(0.010)

        with pytest.raises(CloudApiError) as exc:
            drive(sim, proc())
        assert "after 3 attempts" in str(exc.value)
        assert session.requests_sent == 3

    def test_non_retryable_fails_fast(self):
        sim = Simulator()

        class NotFound:
            def roll(self):
                return 404

        session = HttpsSession(sim, TcpModel(), PARAMS, fault=NotFound())

        def proc():
            yield from session.request(0.010)

        with pytest.raises(CloudApiError) as exc:
            drive(sim, proc())
        assert exc.value.status == 404
        assert session.requests_sent == 1


class TestFaultyProviderEndToEnd:
    def test_upload_survives_transient_faults_but_slower(self):
        from repro.core import DirectRoute, PlanExecutor, TransferPlan
        from repro.testbed import build_case_study
        from repro.transfer import FileSpec
        from repro.units import mb

        def run(error_rate, seed=0):
            world = build_case_study(seed=seed, cross_traffic=False)
            provider = world.provider("gdrive")
            if error_rate:
                provider.fault_injector = FaultInjector(
                    np.random.default_rng(42), error_rate=error_rate)
            plan = TransferPlan("ubc", "gdrive", FileSpec("f", int(mb(50))))
            return PlanExecutor(world).run(plan).total_s

        clean = run(0.0)
        flaky = run(0.25)
        assert flaky > clean + 0.5  # backoffs cost real time
        assert flaky < 2.0 * clean  # but the upload completes

    def test_hopeless_provider_eventually_errors(self):
        from repro.core import DirectRoute, PlanExecutor, TransferPlan
        from repro.errors import CloudApiError
        from repro.testbed import build_case_study
        from repro.transfer import FileSpec
        from repro.units import mb

        world = build_case_study(seed=0, cross_traffic=False)
        provider = world.provider("gdrive")
        provider.fault_injector = FaultInjector(
            np.random.default_rng(1), error_rate=0.97)
        plan = TransferPlan("ubc", "gdrive", FileSpec("f", int(mb(10))))
        with pytest.raises(CloudApiError):
            PlanExecutor(world).run(plan)
