"""OAuth2 simulation and the server-side object store."""

import pytest

from repro.cloud import AccessToken, OAuth2Server, ObjectStore, TokenCache
from repro.errors import AuthError, CloudApiError


class TestOAuth:
    def test_register_and_issue(self):
        srv = OAuth2Server("gdrive")
        secret = srv.register_client("app@ubc")
        token = srv.issue_token("app@ubc", secret, now=100.0)
        assert token.valid_at(100.0)
        assert token.valid_at(3699.0)
        assert not token.valid_at(3700.0)

    def test_duplicate_registration_rejected(self):
        srv = OAuth2Server("p")
        srv.register_client("a")
        with pytest.raises(AuthError):
            srv.register_client("a")

    def test_bad_credentials(self):
        srv = OAuth2Server("p")
        srv.register_client("a")
        with pytest.raises(AuthError):
            srv.issue_token("a", "wrong", now=0.0)
        with pytest.raises(AuthError):
            srv.issue_token("ghost", "whatever", now=0.0)

    def test_validate_token_lifecycle(self):
        srv = OAuth2Server("p", token_lifetime_s=10.0)
        secret = srv.register_client("a")
        token = srv.issue_token("a", secret, now=0.0)
        assert srv.validate(token.value, now=5.0).client_id == "a"
        with pytest.raises(AuthError, match="expired"):
            srv.validate(token.value, now=11.0)
        with pytest.raises(AuthError, match="unknown"):
            srv.validate("forged", now=0.0)

    def test_revoke(self):
        srv = OAuth2Server("p")
        secret = srv.register_client("a")
        token = srv.issue_token("a", secret, now=0.0)
        srv.revoke(token.value)
        with pytest.raises(AuthError):
            srv.validate(token.value, now=1.0)

    def test_tokens_unique(self):
        srv = OAuth2Server("p")
        secret = srv.register_client("a")
        t1 = srv.issue_token("a", secret, now=0.0)
        t2 = srv.issue_token("a", secret, now=0.0)
        assert t1.value != t2.value

    def test_invalid_lifetime(self):
        with pytest.raises(AuthError):
            OAuth2Server("p", token_lifetime_s=0)


class TestTokenCache:
    def test_miss_then_hit(self):
        cache = TokenCache()
        assert cache.get_valid("ubc", "gdrive", now=0.0) is None
        token = AccessToken("v", "c", issued_at=0.0, expires_at=100.0)
        cache.store("ubc", "gdrive", token)
        assert cache.get_valid("ubc", "gdrive", now=50.0) is token

    def test_expired_tokens_not_returned(self):
        cache = TokenCache()
        cache.store("ubc", "gdrive", AccessToken("v", "c", 0.0, 100.0))
        assert cache.get_valid("ubc", "gdrive", now=150.0) is None

    def test_keyed_by_host_and_provider(self):
        cache = TokenCache()
        cache.store("ubc", "gdrive", AccessToken("v", "c", 0.0, 100.0))
        assert cache.get_valid("purdue", "gdrive", now=0.0) is None
        assert cache.get_valid("ubc", "dropbox", now=0.0) is None

    def test_clear(self):
        cache = TokenCache()
        cache.store("h", "p", AccessToken("v", "c", 0.0, 100.0))
        cache.clear()
        assert len(cache) == 0


class TestObjectStore:
    def test_put_get_roundtrip(self):
        store = ObjectStore("gdrive")
        obj = store.put("test.bin", 1000, "digest", owner="ubc", now=5.0)
        assert store.get("test.bin") is obj
        assert obj.revision == 1

    def test_overwrite_bumps_revision(self):
        store = ObjectStore("p")
        store.put("f", 10, "d1", "o", 0.0)
        obj = store.put("f", 20, "d2", "o", 1.0)
        assert obj.revision == 2 and obj.size_bytes == 20

    def test_missing_object_404(self):
        store = ObjectStore("p")
        with pytest.raises(CloudApiError) as exc:
            store.get("nope")
        assert exc.value.status == 404

    def test_delete(self):
        store = ObjectStore("p")
        store.put("f", 10, "d", "o", 0.0)
        store.delete("f")
        assert not store.exists("f")
        with pytest.raises(CloudApiError):
            store.delete("f")

    def test_list_filter_by_owner(self):
        store = ObjectStore("p")
        store.put("a", 1, "d", "ubc", 0.0)
        store.put("b", 2, "d", "purdue", 0.0)
        assert [o.path for o in store.list()] == ["a", "b"]
        assert [o.path for o in store.list(owner="ubc")] == ["a"]

    def test_totals(self):
        store = ObjectStore("p")
        store.put("a", 100, "d", "o", 0.0)
        store.put("b", 200, "d", "o", 0.0)
        assert store.total_bytes() == 300 and len(store) == 2

    def test_negative_size_rejected(self):
        store = ObjectStore("p")
        with pytest.raises(CloudApiError):
            store.put("f", -1, "d", "o", 0.0)
