"""Provider protocols and the CloudClient upload/download coroutines."""

import numpy as np
import pytest

from repro.cloud import (
    CloudProvider,
    make_dropbox_protocol,
    make_gdrive_protocol,
    make_onedrive_protocol,
)
from repro.errors import CloudApiError
from repro.net import DnsResolver, NetworkEngine
from repro.sim import Simulator
from repro.transfer import CloudClient, FileSpec
from repro.units import MiB, mb, mbps


@pytest.fixture
def cloud_world(mini_world):
    """mini_world plus a provider whose frontend is the `server` host."""
    topo, asg, policy, router = mini_world
    sim = Simulator()
    engine = NetworkEngine(sim, topo)
    dns = DnsResolver(topo)
    provider = CloudProvider(
        name="gdrive",
        display_name="Google Drive",
        api_hostname="www.googleapis.com",
        auth_hostname="oauth2.googleapis.com",
        frontend_nodes=["server"],
        protocol=make_gdrive_protocol(),
    )
    provider.register_in_dns(dns)
    client = CloudClient(sim, engine, router, dns, rng=np.random.default_rng(0))
    return sim, engine, router, dns, provider, client


class TestProtocols:
    def test_chunk_sizes_exact_multiple(self):
        proto = make_gdrive_protocol()
        sizes = proto.chunk_sizes(16 * MiB)
        assert sizes == [8 * MiB, 8 * MiB]

    def test_chunk_sizes_with_tail(self):
        proto = make_dropbox_protocol()
        sizes = proto.chunk_sizes(int(mb(10)))
        assert sizes[-1] < 4 * MiB
        assert sum(sizes) == mb(10)
        assert all(s == 4 * MiB for s in sizes[:-1])

    def test_onedrive_fragment_alignment(self):
        proto = make_onedrive_protocol()
        assert proto.chunk_bytes % (320 * 1024) == 0

    def test_chunk_counts_match_paper_protocols(self):
        # 100 MB: Drive ~12 chunks of 8 MiB, Dropbox ~24, OneDrive ~10
        assert len(make_gdrive_protocol().chunk_sizes(mb(100))) == 12
        assert len(make_dropbox_protocol().chunk_sizes(mb(100))) == 24
        assert len(make_onedrive_protocol().chunk_sizes(mb(100))) == 10

    def test_zero_size_rejected(self):
        with pytest.raises(CloudApiError):
            make_gdrive_protocol().chunk_sizes(0)

    def test_provider_requires_frontend(self):
        with pytest.raises(CloudApiError):
            CloudProvider("x", "X", "api.x", "auth.x", [], make_gdrive_protocol())


class TestUpload:
    def test_upload_lands_in_store(self, cloud_world):
        sim, engine, router, dns, provider, client = cloud_world
        spec = FileSpec("test-10MB.bin", int(mb(10)))
        p = sim.process(client.upload("hostB", provider, spec))
        sim.run()
        report = p.result
        assert provider.store.exists("test-10MB.bin")
        obj = provider.store.get("test-10MB.bin")
        assert obj.size_bytes == mb(10)
        assert obj.owner == "hostB"
        assert report.chunk_count == 2  # 10 MB / 8 MiB
        assert report.token_fetched

    def test_upload_time_in_expected_range(self, cloud_world):
        sim, engine, router, dns, provider, client = cloud_world
        spec = FileSpec("f", int(mb(10)))
        p = sim.process(client.upload("hostB", provider, spec))
        sim.run()
        # 10 MB at 50 Mbps bottleneck = 1.6 s + auth/init/commit overheads
        assert 1.6 < p.result.duration_s < 3.5

    def test_second_upload_skips_token_fetch_and_is_faster(self, cloud_world):
        sim, engine, router, dns, provider, client = cloud_world
        spec = FileSpec("f", int(mb(10)))

        def two_uploads():
            first = yield sim.process(client.upload("hostB", provider, spec))
            second = yield sim.process(client.upload("hostB", provider, spec))
            return first, second

        p = sim.process(two_uploads())
        sim.run()
        first, second = p.result
        assert first.token_fetched and not second.token_fetched
        assert second.duration_s < first.duration_s

    def test_upload_via_policed_path_is_slower(self, cloud_world):
        """hostA's PBR detour through the 10 Mbps policed exchange."""
        sim, engine, router, dns, provider, client = cloud_world
        spec = FileSpec("f", int(mb(10)))
        pa = sim.process(client.upload("hostA", provider, spec, remote_path="a"))
        sim.run()
        sim2 = Simulator()
        # fresh world for hostB timing (identical except source)
        engine2 = NetworkEngine(sim2, engine.topology)
        client2 = CloudClient(sim2, engine2, router, dns, rng=np.random.default_rng(0))
        pb = sim2.process(client2.upload("hostB", provider, spec, remote_path="b"))
        sim2.run()
        assert pa.result.duration_s > 2.5 * pb.result.duration_s

    def test_events_record_protocol_requests(self, cloud_world):
        sim, engine, router, dns, provider, client = cloud_world
        spec = FileSpec("f", int(mb(10)))
        p = sim.process(client.upload("hostB", provider, spec))
        sim.run()
        names = [name for _, name in p.result.events]
        assert names[0] == "POST /oauth2/token"
        assert "resumable" in names[1]
        assert sum("PUT" in n for n in names) >= 2

    def test_frontend_selected_by_geo_dns(self, cloud_world):
        sim, engine, router, dns, provider, client = cloud_world
        assert provider.frontend_for(dns, "hostB") == "server"

    def test_throughput_property(self, cloud_world):
        sim, engine, router, dns, provider, client = cloud_world
        spec = FileSpec("f", int(mb(20)))
        p = sim.process(client.upload("hostB", provider, spec))
        sim.run()
        assert p.result.throughput_bps < mbps(50)  # below the bottleneck


class TestTokenExpiry:
    def _run(self, mini_world, lifetime_s):
        """One 10 MB upload against a provider with the given token lifetime.

        Returns (process, events) — fresh sim per call, same seed, so two
        runs are time-identical up to the first point their token state
        diverges.
        """
        topo, asg, policy, router = mini_world
        sim = Simulator()
        engine = NetworkEngine(sim, topo)
        dns = DnsResolver(topo)
        provider = CloudProvider(
            "gdrive", "Google Drive", "api", "auth", ["server"],
            make_gdrive_protocol(), token_lifetime_s=lifetime_s,
        )
        provider.register_in_dns(dns)
        client = CloudClient(sim, engine, router, dns, rng=np.random.default_rng(3))
        p = sim.process(client.upload("hostB", provider, FileSpec("f", int(mb(10)))))
        sim.run()
        return p, provider

    def test_token_expiring_during_commit_is_refreshed(self, mini_world):
        # Probe run: long-lived token, record when it was issued, when the
        # pre-commit validity check runs (last chunk done) and when the
        # server validates it (commit response).
        probe, _ = self._run(mini_world, 3600.0)
        events = probe.result.events
        t_issue = events[0][0]
        t_check = events[-2][0]   # last chunk: pre-commit refresh check
        t_commit = events[-1][0]  # commit response: server-side validate
        assert t_check < t_commit

        # A lifetime ending inside the commit window: valid at the
        # pre-commit check, expired by the time the server validates.
        # Before the post-commit re-check this raised
        # AuthError("access token expired") out of the upload coroutine.
        lifetime = (t_check - t_issue + t_commit - t_issue) / 2.0
        p, provider = self._run(mini_world, lifetime)
        assert p.error is None
        assert provider.store.exists("f")
        fetches = [t for t, name in p.result.events if name == "POST /oauth2/token"]
        assert len(fetches) == 2          # initial fetch + commit-time refresh
        assert fetches[1] >= t_commit     # the refresh happened at validation

    def test_token_expiring_before_commit_is_refreshed(self, mini_world):
        # The pre-existing proactive path: expiry before the commit is even
        # sent still completes via the pre-commit refresh.
        probe, _ = self._run(mini_world, 3600.0)
        events = probe.result.events
        t_issue = events[0][0]
        lifetime = (events[-2][0] - t_issue) / 2.0
        assert lifetime > 0
        p, provider = self._run(mini_world, lifetime)
        assert p.error is None
        assert provider.store.exists("f")


class TestDownload:
    def test_download_roundtrip(self, cloud_world):
        sim, engine, router, dns, provider, client = cloud_world
        spec = FileSpec("f", int(mb(10)))

        def roundtrip():
            yield sim.process(client.upload("hostB", provider, spec))
            report = yield sim.process(client.download("hostB", provider, "f"))
            return report

        p = sim.process(roundtrip())
        sim.run()
        report = p.result
        assert report.size_bytes == mb(10)
        assert report.duration_s > 1.0

    def test_download_missing_file_404(self, cloud_world):
        sim, engine, router, dns, provider, client = cloud_world
        p = sim.process(client.download("hostB", provider, "ghost"))
        sim.run()
        assert isinstance(p.error, CloudApiError)
        assert p.error.status == 404


class TestJitterDeterminism:
    def test_same_seed_same_duration(self, mini_world):
        topo, asg, policy, router = mini_world

        def run(seed):
            sim = Simulator()
            engine = NetworkEngine(sim, topo)
            dns = DnsResolver(topo)
            provider = CloudProvider(
                "gdrive", "Google Drive", "api", "auth", ["server"],
                make_gdrive_protocol(),
            )
            provider.register_in_dns(dns)
            client = CloudClient(sim, engine, router, dns, rng=np.random.default_rng(seed))
            p = sim.process(client.upload("hostB", provider, FileSpec("f", int(mb(10)))))
            sim.run()
            return p.result.duration_s

        assert run(5) == run(5)
        assert run(5) != run(6)
