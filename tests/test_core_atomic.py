"""Unit contract of the sanctioned atomic-write protocol.

`repro.core.atomic` backs every durable artifact in the tree (campaign
records, directory-tier documents, shard run files, route caches, the
lint cache), so its contract is pinned in isolation: round-trips,
``mkdir``/``suffix`` knobs, temp-file hygiene, and — the point of the
module — that an exception mid-write leaves the destination untouched
and no temp file behind.
"""

import json
import os
from pathlib import Path

import pytest

from repro.core.atomic import (atomic_write, atomic_write_bytes,
                               atomic_write_json, atomic_write_text)

pytestmark = pytest.mark.core


def _no_tmp_files(directory: Path):
    return [p.name for p in directory.glob("*.tmp*")] == []


def test_text_round_trip_and_return_value(tmp_path):
    target = tmp_path / "doc.txt"
    assert atomic_write_text(target, "héllo\n") == target
    assert target.read_text(encoding="utf-8") == "héllo\n"
    assert _no_tmp_files(tmp_path)


def test_bytes_round_trip(tmp_path):
    target = tmp_path / "blob.bin"
    atomic_write_bytes(target, b"\x00\x01\x02")
    assert target.read_bytes() == b"\x00\x01\x02"
    assert _no_tmp_files(tmp_path)


def test_json_knobs_mirror_json_dumps(tmp_path):
    payload = {"b": 1, "a": [1, 2]}
    target = tmp_path / "doc.json"
    atomic_write_json(target, payload, sort_keys=True,
                      separators=(",", ":"))
    expected = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")) + "\n"
    assert target.read_text(encoding="utf-8") == expected
    atomic_write_json(target, payload, indent=1, trailing_newline=False)
    assert target.read_text(encoding="utf-8") \
        == json.dumps(payload, sort_keys=True, indent=1)


def test_mkdir_creates_missing_parents(tmp_path):
    target = tmp_path / "a" / "b" / "doc.json"
    atomic_write_json(target, {"k": 1}, mkdir=True)
    assert json.loads(target.read_text(encoding="utf-8")) == {"k": 1}


def test_write_without_mkdir_fails_on_missing_parent(tmp_path):
    with pytest.raises(FileNotFoundError):
        atomic_write_text(tmp_path / "missing" / "doc.txt", "x")


def test_overwrite_replaces_whole_document(tmp_path):
    target = tmp_path / "doc.txt"
    atomic_write_text(target, "a much longer first version\n")
    atomic_write_text(target, "v2\n")
    assert target.read_text(encoding="utf-8") == "v2\n"


def test_context_manager_suffix_and_pid_in_temp_name(tmp_path):
    target = tmp_path / "routes.npz"
    with atomic_write(target, suffix=".npz") as tmp:
        assert tmp.parent == tmp_path
        assert tmp.name == f"routes.npz.{os.getpid()}.tmp.npz"
        tmp.write_bytes(b"payload")
    assert target.read_bytes() == b"payload"
    assert _no_tmp_files(tmp_path)


def test_exception_leaves_target_untouched_and_no_temp(tmp_path):
    target = tmp_path / "doc.txt"
    atomic_write_text(target, "original\n")
    with pytest.raises(RuntimeError):
        with atomic_write(target) as tmp:
            tmp.write_text("half-written", encoding="utf-8")
            raise RuntimeError("killed mid-write")
    assert target.read_text(encoding="utf-8") == "original\n"
    assert _no_tmp_files(tmp_path)


def test_exception_before_temp_exists_is_clean(tmp_path):
    target = tmp_path / "doc.txt"
    with pytest.raises(ValueError):
        with atomic_write(target):
            raise ValueError("serializer refused")
    assert not target.exists()
    assert _no_tmp_files(tmp_path)
