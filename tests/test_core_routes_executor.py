"""Route specs and plan execution in the calibrated testbed."""

import pytest

from repro.core import (
    DetourRoute,
    DirectRoute,
    PlanExecutor,
    TransferPlan,
)
from repro.errors import SelectionError, TopologyError
from repro.transfer import FileSpec, RelayMode
from repro.testbed import build_case_study
from repro.units import mb


@pytest.fixture(scope="module")
def quiet_world():
    """Case-study world without cross traffic (deterministic timings)."""
    return build_case_study(seed=0, cross_traffic=False)


def fresh_executor():
    world = build_case_study(seed=0, cross_traffic=False)
    return world, PlanExecutor(world)


class TestRouteSpecs:
    def test_direct_route_properties(self):
        r = DirectRoute()
        assert r.is_direct and r.via is None
        assert r.describe() == "direct"

    def test_detour_route_properties(self):
        r = DetourRoute("ualberta")
        assert not r.is_direct and r.via == "ualberta"
        assert r.describe() == "via ualberta"

    def test_pipelined_detour_describe(self):
        r = DetourRoute("ualberta", mode=RelayMode.PIPELINED)
        assert "pipelined" in r.describe()

    def test_self_detour_rejected(self):
        with pytest.raises(SelectionError):
            TransferPlan("ubc", "gdrive", FileSpec("f", 1000), DetourRoute("ubc"))

    def test_plan_describe(self):
        plan = TransferPlan("ubc", "gdrive", FileSpec("f.bin", 1000), DetourRoute("umich"))
        text = plan.describe()
        assert "ubc" in text and "gdrive" in text and "via umich" in text and "f.bin" in text


class TestWorldLookups:
    def test_provider_lookup(self, quiet_world):
        assert quiet_world.provider("gdrive").display_name == "Google Drive"
        with pytest.raises(TopologyError, match="unknown provider"):
            quiet_world.provider("icloud")

    def test_host_lookup(self, quiet_world):
        assert quiet_world.host_of("ubc") == "ubc-pl"
        with pytest.raises(TopologyError):
            quiet_world.host_of("mit")

    def test_dtn_lookup(self, quiet_world):
        assert quiet_world.dtn_of("ualberta").host == "ualberta-dtn"
        with pytest.raises(TopologyError):
            quiet_world.dtn_of("ubc")

    def test_client_sites(self, quiet_world):
        assert quiet_world.client_sites() == ["purdue", "ubc", "ucla"]

    def test_duplicate_provider_rejected(self):
        world = build_case_study(seed=0, cross_traffic=False)
        from repro.cloud import CloudProvider, make_gdrive_protocol

        with pytest.raises(TopologyError):
            world.add_provider(CloudProvider(
                "gdrive", "dup", "x.example", "y.example",
                ["gdrive-frontend"], make_gdrive_protocol()))


class TestDirectExecution:
    def test_direct_upload_reaches_store(self):
        world, ex = fresh_executor()
        spec = FileSpec("direct.bin", int(mb(10)))
        result = ex.run(TransferPlan("ubc", "gdrive", spec, DirectRoute()))
        assert world.provider("gdrive").store.exists("direct.bin")
        assert len(result.legs) == 1
        assert result.legs[0].kind == "api"
        assert result.token_fetched

    def test_headline_calibration_direct(self):
        """Paper Sec. I: ~87 s for 100 MB UBC -> Google Drive."""
        world, ex = fresh_executor()
        spec = FileSpec("t.bin", int(mb(100)))
        result = ex.run(TransferPlan("ubc", "gdrive", spec, DirectRoute()))
        assert 75 < result.total_s < 100

    def test_throughput_property(self):
        world, ex = fresh_executor()
        result = ex.run(TransferPlan("ubc", "onedrive", FileSpec("f", int(mb(10)))))
        assert result.throughput_bps == pytest.approx(
            mb(10) * 8 / result.total_s
        )


class TestDetourExecution:
    def test_store_and_forward_sums_legs(self):
        world, ex = fresh_executor()
        spec = FileSpec("sf.bin", int(mb(100)))
        result = ex.run(TransferPlan("ubc", "gdrive", spec, DetourRoute("ualberta")))
        assert [leg.kind for leg in result.legs] == ["rsync", "api"]
        assert result.total_s == pytest.approx(sum(l.duration_s for l in result.legs), rel=1e-6)

    def test_headline_calibration_detour(self):
        """Paper Sec. I: 100 MB via UAlberta in ~36 s (19 + 17)."""
        world, ex = fresh_executor()
        spec = FileSpec("t.bin", int(mb(100)))
        result = ex.run(TransferPlan("ubc", "gdrive", spec, DetourRoute("ualberta")))
        assert 30 < result.total_s < 45
        rsync_leg, api_leg = result.legs
        assert 14 < rsync_leg.duration_s < 24
        assert 13 < api_leg.duration_s < 23

    def test_detour_beats_direct_for_ubc_gdrive(self):
        world, ex = fresh_executor()
        spec = FileSpec("t.bin", int(mb(100)))
        direct = ex.run(TransferPlan("ubc", "gdrive", spec, DirectRoute()))
        detour = ex.run(TransferPlan("ubc", "gdrive", spec, DetourRoute("ualberta")))
        assert detour.total_s < 0.55 * direct.total_s  # >45% improvement

    def test_direct_beats_detour_for_ubc_dropbox(self):
        """Fig. 4: direct upload outperforms both detours for Dropbox."""
        world, ex = fresh_executor()
        spec = FileSpec("t.bin", int(mb(100)))
        direct = ex.run(TransferPlan("ubc", "dropbox", spec, DirectRoute()))
        via_ua = ex.run(TransferPlan("ubc", "dropbox", spec, DetourRoute("ualberta")))
        via_um = ex.run(TransferPlan("ubc", "dropbox", spec, DetourRoute("umich")))
        assert direct.total_s < via_ua.total_s < via_um.total_s

    def test_detour_stages_file_on_dtn(self):
        world, ex = fresh_executor()
        spec = FileSpec("staged.bin", int(mb(10)))
        ex.run(TransferPlan("ubc", "gdrive", spec, DetourRoute("ualberta")))
        assert world.dtn_of("ualberta").has("staged.bin")

    def test_detour_deletes_before_rerun(self):
        """The paper's no-delta-benefit protocol: re-running re-transfers."""
        world, ex = fresh_executor()
        spec = FileSpec("re.bin", int(mb(10)))
        r1 = ex.run(TransferPlan("ubc", "gdrive", spec, DetourRoute("ualberta")))
        r2 = ex.run(TransferPlan("ubc", "gdrive", spec, DetourRoute("ualberta")))
        # second run must not be rsync-delta fast; only token warm-up differs
        assert r2.legs[0].duration_s == pytest.approx(r1.legs[0].duration_s, rel=0.15)

    def test_pipelined_beats_store_and_forward(self):
        world, ex = fresh_executor()
        spec = FileSpec("p.bin", int(mb(100)))
        sf = ex.run(TransferPlan("ubc", "gdrive", spec, DetourRoute("ualberta")))
        world2 = build_case_study(seed=0, cross_traffic=False)
        ex2 = PlanExecutor(world2)
        pl = ex2.run(TransferPlan(
            "ubc", "gdrive", spec, DetourRoute("ualberta", mode=RelayMode.PIPELINED)))
        assert pl.total_s < 0.75 * sf.total_s
        # lower bound: can't beat the slower leg alone
        slower_leg = max(l.duration_s for l in sf.legs)
        assert pl.total_s > 0.8 * slower_leg

    def test_ucla_last_mile_makes_detours_useless(self):
        """Sec. III-C: nothing helps when the last mile is the bottleneck."""
        world, ex = fresh_executor()
        spec = FileSpec("t.bin", int(mb(30)))
        direct = ex.run(TransferPlan("ucla", "gdrive", spec, DirectRoute()))
        via_ua = ex.run(TransferPlan("ucla", "gdrive", spec, DetourRoute("ualberta")))
        via_um = ex.run(TransferPlan("ucla", "gdrive", spec, DetourRoute("umich")))
        assert direct.total_s < via_ua.total_s < via_um.total_s
        # and direct is itself terrible (~1.3 Mbps)
        assert direct.total_s > 150

    def test_purdue_gdrive_both_detours_win_big(self):
        """Table III: both detours cut Purdue->Drive by ~70%+."""
        world, ex = fresh_executor()
        spec = FileSpec("t.bin", int(mb(50)))
        direct = ex.run(TransferPlan("purdue", "gdrive", spec, DirectRoute()))
        via_ua = ex.run(TransferPlan("purdue", "gdrive", spec, DetourRoute("ualberta")))
        via_um = ex.run(TransferPlan("purdue", "gdrive", spec, DetourRoute("umich")))
        # quiet world (no elephants on the congested peering): detours still
        # win decisively; with cross traffic the gap widens to the paper's ~75%
        assert via_ua.total_s < 0.6 * direct.total_s
        assert via_um.total_s < 0.6 * direct.total_s

    def test_result_describe_readable(self):
        world, ex = fresh_executor()
        result = ex.run(TransferPlan("ubc", "gdrive", FileSpec("d.bin", int(mb(10))),
                                     DetourRoute("ualberta")))
        text = result.describe()
        assert "rsync" in text and "api" in text and "via ualberta" in text
