"""Detour selection algorithms, the planner, and bottleneck monitoring."""

import numpy as np
import pytest

from repro.core import (
    BottleneckMonitor,
    DetourPlanner,
    DetourRoute,
    DirectRoute,
    HistorySelector,
    MonitoredUpload,
    OracleSelector,
    PlanExecutor,
    ProbeSelector,
    SelectionContext,
    TransferPlan,
)
from repro.errors import MeasurementError, SelectionError
from repro.testbed import build_case_study, world_factory
from repro.transfer import FileSpec
from repro.units import mb


def make_ctx(client="ubc", provider="gdrive", size=int(mb(100)), seed=0):
    world = build_case_study(seed=seed, cross_traffic=False)
    return SelectionContext(world, client, provider, size, ("ualberta", "umich"))


def drive(world, gen):
    proc = world.sim.process(gen)
    world.sim.run_until_triggered(proc.done, horizon=1e7)
    return proc.result


class TestSelectionContext:
    def test_routes_enumeration(self):
        ctx = make_ctx()
        descrs = [r.describe() for r in ctx.routes()]
        assert descrs == ["direct", "via ualberta", "via umich"]


class TestProbeSelector:
    def test_picks_ualberta_for_ubc_gdrive(self):
        """The paper's Table I cell (A, Google Drive): fastest via UAlberta."""
        ctx = make_ctx("ubc", "gdrive")
        selector = ProbeSelector()
        route = drive(ctx.world, selector.choose(ctx))
        assert route.describe() == "via ualberta"
        assert selector.last_predictions["via ualberta"] < selector.last_predictions["direct"]

    def test_picks_direct_for_ubc_dropbox(self):
        """Table I cell (A, Dropbox): fastest direct."""
        ctx = make_ctx("ubc", "dropbox")
        route = drive(ctx.world, ProbeSelector().choose(ctx))
        assert route.is_direct

    def test_picks_direct_for_ucla(self):
        """Table I row (C): direct fastest everywhere from UCLA."""
        ctx = make_ctx("ucla", "gdrive", size=int(mb(30)))
        route = drive(ctx.world, ProbeSelector().choose(ctx))
        assert route.is_direct

    def test_picks_detour_for_purdue_gdrive(self):
        ctx = make_ctx("purdue", "gdrive")
        route = drive(ctx.world, ProbeSelector().choose(ctx))
        assert not route.is_direct

    def test_predictions_scale_with_size(self):
        sel = ProbeSelector()
        ctx_small = make_ctx("ubc", "gdrive", size=int(mb(10)))
        drive(ctx_small.world, sel.choose(ctx_small))
        small_pred = dict(sel.last_predictions)
        ctx_big = make_ctx("ubc", "gdrive", size=int(mb(100)))
        drive(ctx_big.world, sel.choose(ctx_big))
        assert sel.last_predictions["direct"] > small_pred["direct"]

    def test_invalid_configs(self):
        with pytest.raises(SelectionError):
            ProbeSelector(probe_sizes=(1000,))
        with pytest.raises(SelectionError):
            ProbeSelector(probe_sizes=(0, 100))


class TestOracleSelector:
    def test_oracle_matches_paper_best_for_ubc(self):
        factory = world_factory(cross_traffic=False)
        selector = OracleSelector(factory, runs=2, discard=0)
        ctx = make_ctx("ubc", "gdrive")
        route = drive(ctx.world, selector.choose(ctx))
        assert route.describe() == "via ualberta"

    def test_oracle_picks_direct_for_onedrive_ubc(self):
        factory = world_factory(cross_traffic=False)
        selector = OracleSelector(factory, runs=2, discard=0)
        ctx = make_ctx("ubc", "onedrive", size=int(mb(30)))
        route = drive(ctx.world, selector.choose(ctx))
        assert route.is_direct


class TestHistorySelector:
    def test_explores_unseen_routes_first(self):
        ctx = make_ctx()
        sel = HistorySelector(epsilon=0.0, rng=np.random.default_rng(0))
        first = drive(ctx.world, sel.choose(ctx))
        assert first.is_direct  # routes() order: direct first
        sel.update(ctx, first, ctx.size_bytes, 87.0)
        second = drive(ctx.world, sel.choose(ctx))
        assert second.describe() == "via ualberta"

    def test_exploits_best_after_learning(self):
        ctx = make_ctx()
        sel = HistorySelector(epsilon=0.0, rng=np.random.default_rng(0))
        sel.update(ctx, DirectRoute(), int(mb(100)), 87.0)
        sel.update(ctx, DetourRoute("ualberta"), int(mb(100)), 36.0)
        sel.update(ctx, DetourRoute("umich"), int(mb(100)), 132.0)
        best = drive(ctx.world, sel.choose(ctx))
        assert best.describe() == "via ualberta"

    def test_ewma_adapts_to_drift(self):
        ctx = make_ctx()
        sel = HistorySelector(alpha=0.5, epsilon=0.0, rng=np.random.default_rng(0))
        for route, t in [(DirectRoute(), 30.0), (DetourRoute("ualberta"), 40.0),
                         (DetourRoute("umich"), 130.0)]:
            sel.update(ctx, route, int(mb(100)), t)
        assert drive(ctx.world, sel.choose(ctx)).is_direct
        # direct deteriorates badly; estimates shift after a few updates
        for _ in range(4):
            sel.update(ctx, DirectRoute(), int(mb(100)), 200.0)
        assert drive(ctx.world, sel.choose(ctx)).describe() == "via ualberta"

    def test_epsilon_explores(self):
        ctx = make_ctx()
        sel = HistorySelector(epsilon=0.5, rng=np.random.default_rng(3))
        for route, t in [(DirectRoute(), 10.0), (DetourRoute("ualberta"), 40.0),
                         (DetourRoute("umich"), 130.0)]:
            sel.update(ctx, route, int(mb(100)), t)
        chosen = {drive(ctx.world, sel.choose(ctx)).describe() for _ in range(30)}
        assert len(chosen) > 1  # exploration actually happens

    def test_invalid_params(self):
        with pytest.raises(SelectionError):
            HistorySelector(alpha=0)
        with pytest.raises(SelectionError):
            HistorySelector(epsilon=1.0)
        with pytest.raises(SelectionError):
            HistorySelector()  # rng is mandatory: no silent default_rng(0)
        sel = HistorySelector(rng=np.random.default_rng(0))
        with pytest.raises(SelectionError):
            sel.update(make_ctx(), DirectRoute(), 0, 1.0)


class TestPlanner:
    def test_compare_ranks_routes_like_paper(self):
        world = build_case_study(seed=0, cross_traffic=False)
        planner = DetourPlanner(world, runs_per_route=2, discard_runs=0,
                                inter_run_gap_s=1.0)
        comparison = planner.compare("ubc", "gdrive", int(mb(100)))
        assert comparison.best.route.describe() == "via ualberta"
        assert comparison.gain_over_direct_pct() < -40
        text = comparison.render()
        assert "fastest" in text and "direct" in text

    def test_upload_executes_best_route(self):
        world = build_case_study(seed=0, cross_traffic=False)
        planner = DetourPlanner(world, runs_per_route=1, discard_runs=0)
        planned = planner.upload("ubc", "gdrive", int(mb(50)), file_name="final.bin")
        assert planned.best.route.describe() == "via ualberta"
        assert planned.final.plan.route.describe() == "via ualberta"
        assert world.provider("gdrive").store.exists("final.bin")

    def test_candidate_routes_exclude_client_dtn(self):
        world = build_case_study(seed=0, cross_traffic=False)
        planner = DetourPlanner(world)
        routes = planner.candidate_routes("umich")
        assert [r.describe() for r in routes] == ["direct", "via ualberta"]

    def test_explicit_vias_validated(self):
        world = build_case_study(seed=0, cross_traffic=False)
        planner = DetourPlanner(world)
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            planner.candidate_routes("ubc", vias=["mit"])

    def test_bad_protocol_rejected(self):
        world = build_case_study(seed=0, cross_traffic=False)
        with pytest.raises(MeasurementError):
            DetourPlanner(world, runs_per_route=0)
        with pytest.raises(MeasurementError):
            planner = DetourPlanner(world)
            planner.compare("ubc", "gdrive", 0)

    def test_significance_flag_with_identical_routes(self):
        world = build_case_study(seed=0, cross_traffic=False)
        planner = DetourPlanner(world, runs_per_route=2, discard_runs=0)
        comparison = planner.compare("ubc", "gdrive", int(mb(100)))
        # quiet world, big gap -> clearly significant
        assert comparison.best_is_significant()


class TestMonitor:
    def test_probe_all_covers_routes(self):
        world = build_case_study(seed=0, cross_traffic=False)
        monitor = BottleneckMonitor(world, "ubc", "gdrive", ("ualberta", "umich"))
        estimates = drive(world, monitor.probe_all())
        assert set(estimates) == {"direct", "via ualberta", "via umich"}
        assert all(v > 0 for v in estimates.values())

    def test_best_route_requires_probes(self):
        world = build_case_study(seed=0, cross_traffic=False)
        monitor = BottleneckMonitor(world, "ubc", "gdrive", ("ualberta",))
        with pytest.raises(SelectionError):
            monitor.best_route()

    def test_monitored_upload_uses_best_route(self):
        world = build_case_study(seed=0, cross_traffic=False)
        monitor = BottleneckMonitor(world, "ubc", "gdrive", ("ualberta", "umich"),
                                    probe_bytes=int(mb(2)))
        upload = MonitoredUpload(monitor, segment_bytes=int(mb(20)))
        result = drive(world, upload.run(FileSpec("big.bin", int(mb(60)))))
        assert sum(s.size_bytes for s in result.segments) == mb(60)
        assert result.routes_used[0] == "via ualberta"

    def test_monitored_upload_switches_when_route_degrades(self):
        """Kill the UAlberta detour mid-transfer; the monitor reroutes."""
        world = build_case_study(seed=0, cross_traffic=False)
        monitor = BottleneckMonitor(world, "ubc", "gdrive", ("ualberta",),
                                    probe_bytes=int(mb(2)), alpha=1.0)
        upload = MonitoredUpload(monitor, segment_bytes=int(mb(15)),
                                 switch_threshold=1.2)

        # Congest the CANARIE->Google peering (the detour's second hop;
        # the direct route bypasses it via Pacific Wave) with an elephant
        # herd, crushing the detour's fair share to ~5 Mbps.
        def sabotage():
            yield 30.0
            link = world.topology.link("canarie-vncv--google-peer-vncv")
            for i in range(9):
                world.engine.start_transfer(
                    [link.direction_from("canarie-vncv")], mb(100000),
                    label=f"sabotage-{i}")

        world.sim.process(sabotage())
        result = drive(world, upload.run(FileSpec("big.bin", int(mb(120)))))
        assert result.switch_count >= 1
        assert len(result.routes_used) >= 2
        assert result.routes_used[0] == "via ualberta"

    def test_invalid_monitor_params(self):
        world = build_case_study(seed=0, cross_traffic=False)
        with pytest.raises(SelectionError):
            BottleneckMonitor(world, "ubc", "gdrive", (), probe_bytes=0)
        monitor = BottleneckMonitor(world, "ubc", "gdrive", ())
        with pytest.raises(SelectionError):
            MonitoredUpload(monitor, segment_bytes=0)
        with pytest.raises(SelectionError):
            MonitoredUpload(monitor, switch_threshold=0.5)
