"""Module doctests and example smoke runs."""

import doctest
import runpy
import sys

import pytest

DOCTESTED_MODULES = [
    "repro.sim.kernel",
    "repro.sim.rng",
    "repro.net.policer",
    "repro.net.address",
    "repro.transfer.checksums",
]


@pytest.mark.parametrize("module_name", DOCTESTED_MODULES)
def test_module_doctests(module_name):
    module = __import__(module_name, fromlist=["_"])
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module_name}: {results.failed} doctest failures"
    assert results.attempted > 0, f"{module_name}: docstrings lost their examples"


FAST_EXAMPLES = [
    "examples/quickstart.py",
    "examples/traceroute_diagnosis.py",
    "examples/custom_scenario.py",
    "examples/dynamic_rerouting.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(script, run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 200  # produced a real report


def test_quickstart_output_content(capsys):
    runpy.run_path("examples/quickstart.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "via ualberta" in out
    assert "fastest" in out
    assert "Stored: holiday-photos.tar" in out
