"""Detoured downloads: the upload machinery in reverse (extension)."""

import pytest

from repro.core import DetourRoute, DirectRoute, PlanExecutor, TransferPlan
from repro.errors import TransferError
from repro.testbed import build_case_study
from repro.transfer import FileSpec, RelayMode
from repro.units import mb


@pytest.fixture()
def seeded_world():
    """World with a 100 MB object already stored on each provider."""
    world = build_case_study(seed=0, cross_traffic=False)
    for provider in world.providers.values():
        provider.store.put("dataset.bin", int(mb(100)), "digest", "owner", now=0.0)
    return world


def run_download(world, client, provider, route):
    executor = PlanExecutor(world)
    plan = TransferPlan(client, provider, FileSpec("dataset.bin", int(mb(100))), route)
    proc = world.sim.process(executor.execute_download(plan))
    world.sim.run_until_triggered(proc.done, horizon=1e7)
    if proc.error:
        raise proc.error
    return proc.result


class TestDirectDownloads:
    def test_ubc_gdrive_download_not_policed(self, seeded_world):
        """The pacificwave PBR matches PlanetLab *sources*; the reverse
        (Google -> UBC) direction takes the clean peering, so downloads
        are ~5x faster than the 87 s uploads — a real asymmetry of
        source-based policy routing."""
        result = run_download(seeded_world, "ubc", "gdrive", DirectRoute())
        assert result.total_s < 30

    def test_ucla_download_still_choked_by_last_mile(self, seeded_world):
        # access links are symmetric: the 1.35 Mbit/s cap binds both ways
        result = run_download(seeded_world, "ucla", "gdrive", DirectRoute())
        assert result.total_s > 400

    def test_download_leg_direction(self, seeded_world):
        result = run_download(seeded_world, "ubc", "gdrive", DirectRoute())
        leg = result.legs[0]
        assert leg.src == "gdrive-frontend"
        assert leg.dst == "ubc-pl"


class TestDetouredDownloads:
    def test_detour_download_stages_on_dtn(self, seeded_world):
        result = run_download(seeded_world, "ubc", "gdrive", DetourRoute("ualberta"))
        assert [l.kind for l in result.legs] == ["api", "rsync"]
        assert seeded_world.dtn_of("ualberta").has("dataset.bin")

    def test_detour_download_sums_legs(self, seeded_world):
        result = run_download(seeded_world, "ubc", "gdrive", DetourRoute("ualberta"))
        assert result.total_s == pytest.approx(
            sum(l.duration_s for l in result.legs), rel=1e-6)

    def test_direct_download_beats_detour_from_ubc(self, seeded_world):
        """With no policer on the reverse path, the detour is pure
        overhead for downloads — detours are direction-specific."""
        direct = run_download(seeded_world, "ubc", "gdrive", DirectRoute())
        detour = run_download(seeded_world, "ubc", "gdrive", DetourRoute("ualberta"))
        assert direct.total_s < detour.total_s

    def test_pipelined_download_unsupported(self, seeded_world):
        with pytest.raises(TransferError, match="pipelined"):
            run_download(seeded_world, "ubc", "gdrive",
                         DetourRoute("ualberta", mode=RelayMode.PIPELINED))

    def test_missing_object_propagates_404(self):
        from repro.errors import CloudApiError

        world = build_case_study(seed=0, cross_traffic=False)
        with pytest.raises(CloudApiError):
            run_download(world, "ubc", "gdrive", DirectRoute())
