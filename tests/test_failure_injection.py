"""Failure injection: the system degrades loudly, not silently."""

import pytest

from repro.cloud import CloudProvider, make_gdrive_protocol
from repro.core import DetourRoute, DirectRoute, PlanExecutor, TransferPlan
from repro.errors import AuthError, CloudApiError, TransferError
from repro.testbed import build_case_study
from repro.transfer import CloudClient, DataTransferNode, FileSpec
from repro.units import mb, mbps


def drive_expect_error(world, gen, exc_type):
    proc = world.sim.process(gen)
    world.sim.run_until_triggered(proc.done, horizon=1e7)
    assert proc.finished
    assert isinstance(proc.error, exc_type), f"got {proc.error!r}"
    return proc.error


class TestAuthFailures:
    def test_revoked_token_fails_upload_commit(self):
        """Revocation (not expiry) between chunks surfaces as a 401."""
        world = build_case_study(seed=0, cross_traffic=False)
        executor = PlanExecutor(world)
        provider = world.provider("gdrive")

        # sabotage: revoke every issued token shortly after upload start
        def revoker():
            yield 5.0
            for value in list(provider.oauth._issued):
                provider.oauth.revoke(value)

        world.sim.process(revoker())
        plan = TransferPlan("ubc", "gdrive", FileSpec("f", int(mb(100))), DirectRoute())
        err = drive_expect_error(world, executor.execute(plan), AuthError)
        assert err.status == 401

    def test_failed_upload_leaves_no_object(self):
        world = build_case_study(seed=0, cross_traffic=False)
        executor = PlanExecutor(world)
        provider = world.provider("gdrive")

        def revoker():
            yield 5.0
            for value in list(provider.oauth._issued):
                provider.oauth.revoke(value)

        world.sim.process(revoker())
        plan = TransferPlan("ubc", "gdrive", FileSpec("ghost.bin", int(mb(100))))
        drive_expect_error(world, executor.execute(plan), AuthError)
        assert not provider.store.exists("ghost.bin")

    def test_wrong_secret_rejected_at_token_endpoint(self):
        world = build_case_study(seed=0, cross_traffic=False)
        provider = world.provider("gdrive")
        provider.oauth.register_client("mallory")
        with pytest.raises(AuthError):
            provider.oauth.issue_token("mallory", "guessed-secret", now=0.0)


class TestDtnFailures:
    def test_detour_fails_when_dtn_disk_full(self):
        world = build_case_study(seed=0, cross_traffic=False)
        # shrink the UAlberta DTN below the file size
        world.dtns["ualberta"] = DataTransferNode("ualberta-dtn",
                                                  capacity_bytes=mb(50))
        executor = PlanExecutor(world)
        plan = TransferPlan("ubc", "gdrive", FileSpec("big.bin", int(mb(100))),
                            DetourRoute("ualberta"))
        err = drive_expect_error(world, executor.execute(plan), TransferError)
        assert "capacity" in str(err)

    def test_direct_route_unaffected_by_dtn_failure(self):
        world = build_case_study(seed=0, cross_traffic=False)
        world.dtns["ualberta"] = DataTransferNode("ualberta-dtn", capacity_bytes=1)
        executor = PlanExecutor(world)
        result = executor.run(TransferPlan(
            "ubc", "gdrive", FileSpec("ok.bin", int(mb(10))), DirectRoute()))
        assert world.provider("gdrive").store.exists("ok.bin")


class TestTransferCancellation:
    def test_cancelled_flow_fails_its_waiter_and_frees_bandwidth(self):
        world = build_case_study(seed=0, cross_traffic=False)
        link = world.topology.link("canarie-vncv--google-peer-vncv")
        dirs = [link.direction_from("canarie-vncv")]
        victim = world.engine.start_transfer(dirs, mb(100), label="victim")
        survivor = world.engine.start_transfer(dirs, mb(50), label="survivor")

        def canceller():
            yield 2.0
            world.engine.cancel(victim)

        world.sim.process(canceller())
        world.sim.run_until_triggered(survivor.done, horizon=1e6)
        assert isinstance(victim.done._failed, TransferError)
        # survivor: 2 s at 26 Mbit/s, remainder at 52 Mbit/s
        expected = 2.0 + (mb(50) - 2.0 * 26e6 / 8) * 8 / 52e6
        assert survivor.done.value.duration_s == pytest.approx(expected, rel=0.01)

    def test_interrupting_a_plan_cancels_cleanly(self):
        world = build_case_study(seed=0, cross_traffic=False)
        executor = PlanExecutor(world)
        plan = TransferPlan("ubc", "gdrive", FileSpec("f", int(mb(100))))
        proc = world.sim.process(executor.execute(plan))

        def killer():
            yield 10.0
            proc.interrupt("operator abort")

        world.sim.process(killer())
        world.sim.run_until_triggered(proc.done, horizon=1e6)
        assert proc.finished
        assert proc.error is None  # unhandled interrupt = quiet cancellation
        assert proc.result is None


class TestApiMisuse:
    def test_download_of_missing_object_is_404_before_any_traffic(self):
        world = build_case_study(seed=0, cross_traffic=False)
        client = CloudClient(world.sim, world.engine, world.router, world.dns,
                             world.tcp, world.token_cache)
        start = world.sim.now
        err = drive_expect_error(
            world, client.download("ubc-pl", world.provider("gdrive"), "nope"),
            CloudApiError)
        assert err.status == 404
        assert world.sim.now == start  # failed before spending simulated time

    def test_upload_of_empty_file_rejected(self):
        with pytest.raises(TransferError):
            FileSpec("empty", 0)


class TestExtremeDegradation:
    def test_tiny_firewall_cap_slows_but_completes(self):
        from repro.testbed import build_science_dmz_world

        world = build_science_dmz_world(seed=0, per_flow_cap_bps=mbps(0.5),
                                        cross_traffic=False)
        executor = PlanExecutor(world)
        result = executor.run(TransferPlan(
            "ualberta", "gdrive", FileSpec("slow.bin", int(mb(5))), DirectRoute()))
        # 5 MB at 0.5 Mbit/s = 80 s minimum
        assert result.total_s > 80
        assert world.provider("gdrive").store.exists("slow.bin")
