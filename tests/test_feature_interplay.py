"""Interplay of orthogonal features: they compose without surprises."""

import pytest

from repro.core import (
    DetourRoute,
    MultipathUpload,
    DirectRoute,
    PlanExecutor,
    TransferPlan,
)
from repro.testbed import DMZ_DTN_SITE, build_science_dmz_world
from repro.transfer import FileSpec, RelayMode
from repro.units import mb, mbps


def drive(world, gen):
    proc = world.sim.process(gen)
    world.sim.run_until_triggered(proc.done, horizon=1e7)
    if proc.error:
        raise proc.error
    return proc.result


class TestPipelinedThroughFirewall:
    def test_pipelined_detour_respects_firewall_cap(self):
        """Cut-through relaying cannot launder traffic past inspection:
        the pipelined detour's egress leg is still capped."""
        world = build_science_dmz_world(seed=0, per_flow_cap_bps=mbps(10),
                                        cross_traffic=False)
        result = PlanExecutor(world).run(TransferPlan(
            "ubc", "gdrive", FileSpec("p.bin", int(mb(50))),
            DetourRoute("ualberta", mode=RelayMode.PIPELINED)))
        # egress leg at 10 Mbit/s dominates: >= 40 s for 50 MB
        assert result.total_s > 38

    def test_pipelined_detour_via_dmz_is_uncapped(self):
        world = build_science_dmz_world(seed=0, per_flow_cap_bps=mbps(10),
                                        cross_traffic=False)
        result = PlanExecutor(world).run(TransferPlan(
            "ubc", "gdrive", FileSpec("p.bin", int(mb(50))),
            DetourRoute(DMZ_DTN_SITE, mode=RelayMode.PIPELINED)))
        assert result.total_s < 25


class TestMultipathWithSessionLimits:
    def test_multipath_parts_queue_on_limited_dtn(self):
        """Multipath probing + transfer through a 1-slot DTN still works;
        only one detour-borne piece holds the slot at a time."""
        from repro.testbed import build_case_study

        world = build_case_study(seed=0, cross_traffic=False)
        world.add_dtn("limited", "ualberta-dtn", max_sessions=1)
        mp = MultipathUpload(world)
        result = drive(world, mp.run(
            "ubc", "gdrive", FileSpec("m.bin", int(mb(60))),
            routes=[DirectRoute(), DetourRoute("limited")]))
        assert sum(p.part_bytes for p in result.parts) == mb(60)
        dtn = world.dtn_of("limited")
        # probes + the real part all went through the session gate
        assert dtn.sessions.total_acquisitions >= 3


class TestFaultsOnDetours:
    def test_detour_retries_transient_api_faults(self):
        import numpy as np

        from repro.cloud import FaultInjector
        from repro.testbed import build_case_study

        world = build_case_study(seed=0, cross_traffic=False)
        provider = world.provider("gdrive")
        provider.fault_injector = FaultInjector(
            np.random.default_rng(5), error_rate=0.2)
        result = PlanExecutor(world).run(TransferPlan(
            "ubc", "gdrive", FileSpec("f.bin", int(mb(50))),
            DetourRoute("ualberta")))
        assert world.provider("gdrive").store.exists("f.bin")
        assert provider.fault_injector.injected > 0
