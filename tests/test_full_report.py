"""The one-shot full report generator."""

import pytest

from repro.analysis import AnalysisConfig, generate_full_report
from repro.measure import ExperimentProtocol

FAST = AnalysisConfig(sizes_mb=(10,), protocol=ExperimentProtocol(2, 0, 1.0),
                      cross_traffic=False)


class TestFullReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_full_report(FAST)

    def test_contains_all_tables(self, report):
        for marker in ["Table I:", "Table II:", "Table III:", "Table IV:",
                       "Table V:", "PAPER-VS-MEASURED"]:
            assert marker in report

    def test_contains_key_conclusions(self, report):
        assert "via ualberta" in report
        assert "Fastest" in report
        assert "ratio" in report

    def test_table4_falls_back_to_available_sizes(self, report):
        # cfg only has 10 MB; Table IV must use it rather than crash
        assert "10 MB dropbox" in report

    def test_deterministic(self, report):
        assert generate_full_report(FAST) == report
