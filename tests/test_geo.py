"""Geography substrate: distances, sites, geolocation registry."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geo import (
    CLIENT_SITES,
    CLOUD_DATACENTERS,
    GeoPoint,
    GeoRegistry,
    INTERMEDIATE_SITES,
    SITES,
    bearing_deg,
    haversine_km,
    path_length_km,
    site,
)
from repro.geo.coords import detour_stretch


def points():
    return st.builds(
        GeoPoint,
        lat=st.floats(min_value=-90, max_value=90, allow_nan=False),
        lon=st.floats(min_value=-180, max_value=180, allow_nan=False),
    )


class TestHaversine:
    def test_zero_distance(self):
        p = GeoPoint(49.26, -123.24)
        assert haversine_km(p, p) == 0.0

    def test_known_distance_vancouver_edmonton(self):
        # UBC to UAlberta is ~810 km great-circle
        d = haversine_km(site("ubc").location, site("ualberta").location)
        assert 750 < d < 870

    def test_known_distance_ubc_mountainview(self):
        d = haversine_km(site("ubc").location, site("gdrive-dc").location)
        assert 1200 < d < 1450

    @given(points(), points())
    def test_symmetry(self, a, b):
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a), abs=1e-9)

    @given(points(), points(), points())
    def test_triangle_inequality_on_sphere(self, a, b, c):
        assert haversine_km(a, c) <= haversine_km(a, b) + haversine_km(b, c) + 1e-6

    @given(points(), points())
    def test_bounded_by_half_circumference(self, a, b):
        assert haversine_km(a, b) <= math.pi * 6371.01 + 1.0


class TestGeoPoint:
    def test_bad_latitude_rejected(self):
        with pytest.raises(ValueError):
            GeoPoint(91, 0)

    def test_bad_longitude_rejected(self):
        with pytest.raises(ValueError):
            GeoPoint(0, 181)

    def test_str_format(self):
        assert str(GeoPoint(49.2606, -123.246)) == "49.2606N,123.2460W"

    def test_propagation_delay_positive(self):
        d = site("ubc").location.propagation_delay_s(site("ualberta").location)
        assert 0.004 < d < 0.012  # few ms one-way


class TestPathsAndDetours:
    def test_path_length_degenerate(self):
        assert path_length_km([]) == 0.0
        assert path_length_km([GeoPoint(0, 0)]) == 0.0

    def test_path_length_sums_segments(self):
        a, b, c = site("ubc").location, site("ualberta").location, site("gdrive-dc").location
        assert path_length_km([a, b, c]) == pytest.approx(haversine_km(a, b) + haversine_km(b, c))

    def test_paper_detour_is_geographic_backtrack(self):
        # Fig. 3: UBC -> UAlberta -> Mountain View is much longer on the map
        stretch = detour_stretch(
            site("ubc").location, site("ualberta").location, site("gdrive-dc").location
        )
        assert stretch > 1.8  # a significant geographical detour

    def test_bearing_range(self):
        b = bearing_deg(site("ubc").location, site("gdrive-dc").location)
        assert 0 <= b < 360
        # Mountain View is roughly south of Vancouver
        assert 140 < b < 220


class TestSites:
    def test_all_paper_sites_present(self):
        for name in ["ubc", "purdue", "ucla", "ualberta", "umich", "gdrive-dc", "dropbox-dc", "onedrive-dc"]:
            assert name in SITES

    def test_role_partition(self):
        assert {s.name for s in CLIENT_SITES} == {"ubc", "purdue", "ucla"}
        assert {s.name for s in INTERMEDIATE_SITES} == {"ualberta", "umich"}
        assert {s.name for s in CLOUD_DATACENTERS} == {"gdrive-dc", "dropbox-dc", "onedrive-dc"}

    def test_planetlab_flags(self):
        assert site("ubc").planetlab and site("ucla").planetlab
        assert not site("ualberta").planetlab

    def test_unknown_site_raises_with_hint(self):
        with pytest.raises(KeyError, match="unknown site"):
            site("mit")

    def test_datacenter_cities_match_paper(self):
        assert "Mountain View" in site("gdrive-dc").city
        assert "Ashburn" in site("dropbox-dc").city
        assert "Seattle" in site("onedrive-dc").city


class TestGeoRegistry:
    def test_longest_prefix_wins(self):
        reg = GeoRegistry()
        reg.register("142.103.0.0/16", site("ubc"))
        reg.register("142.103.78.0/24", site("ualberta"))  # more specific
        assert reg.site_of("142.103.78.5").name == "ualberta"
        assert reg.site_of("142.103.1.1").name == "ubc"

    def test_miss_returns_none(self):
        reg = GeoRegistry()
        reg.register("10.0.0.0/8", site("ubc"))
        assert reg.lookup("192.168.1.1") is None

    def test_locate_returns_geopoint(self):
        reg = GeoRegistry()
        reg.register("199.212.24.0/24", site("canarie-vancouver"))
        loc = reg.locate("199.212.24.1")
        assert loc == site("canarie-vancouver").location

    def test_bad_prefix_rejected(self):
        reg = GeoRegistry()
        from repro.errors import AddressError

        with pytest.raises(AddressError):
            reg.register("299.0.0.0/8", site("ubc"))

    def test_bad_address_rejected(self):
        reg = GeoRegistry()
        from repro.errors import AddressError

        with pytest.raises(AddressError):
            reg.lookup("not-an-ip")

    def test_len_and_prefixes(self):
        reg = GeoRegistry()
        reg.register("10.0.0.0/8", site("ubc"))
        reg.register("10.1.0.0/16", site("ucla"))
        assert len(reg) == 2
        assert set(reg.prefixes()) == {"10.0.0.0/8", "10.1.0.0/16"}
