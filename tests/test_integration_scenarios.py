"""Cross-module integration scenarios under realistic conditions."""

import pytest

import repro
from repro.core import (
    BottleneckMonitor,
    DetourPlanner,
    DetourRoute,
    DirectRoute,
    MonitoredUpload,
    PlanExecutor,
    TransferPlan,
)
from repro.testbed import build_case_study, build_science_dmz_world
from repro.transfer import FileSpec, RelayMode
from repro.units import mb, mbps


class TestTopLevelApi:
    def test_lazy_exports(self):
        assert repro.build_case_study is not None
        assert repro.DetourPlanner is not None
        assert repro.FileSpec("f", 10).size_bytes == 10
        with pytest.raises(AttributeError):
            repro.no_such_thing

    def test_quickstart_docstring_flow(self):
        world = repro.build_case_study(seed=1)
        planner = repro.DetourPlanner(world, runs_per_route=1, discard_runs=0)
        report = planner.upload("ubc", "gdrive", size_bytes=int(mb(20)))
        assert report.best.route.describe() == "via ualberta"


class TestNoisyWorldScenarios:
    def test_pipelined_detour_with_cross_traffic(self):
        """Pipelining holds up when background flows perturb both legs."""
        world_sf = build_case_study(seed=9)
        sf = PlanExecutor(world_sf).run(TransferPlan(
            "purdue", "onedrive", FileSpec("p.bin", int(mb(60))),
            DetourRoute("ualberta")))
        world_pl = build_case_study(seed=9)
        pl = PlanExecutor(world_pl).run(TransferPlan(
            "purdue", "onedrive", FileSpec("p.bin", int(mb(60))),
            DetourRoute("ualberta", mode=RelayMode.PIPELINED)))
        assert pl.total_s < sf.total_s

    def test_planner_in_noisy_world_still_finds_detour(self):
        world = build_case_study(seed=3)  # cross traffic on
        planner = DetourPlanner(world, runs_per_route=3, discard_runs=1)
        comparison = planner.compare("purdue", "gdrive", int(mb(50)))
        assert not comparison.best.route.is_direct
        assert comparison.gain_over_direct_pct() < -40

    def test_monitor_probes_survive_cross_traffic(self):
        world = build_case_study(seed=5)
        monitor = BottleneckMonitor(world, "purdue", "gdrive",
                                    ("ualberta", "umich"), probe_bytes=int(mb(2)))
        proc = world.sim.process(monitor.probe_all())
        world.sim.run_until_triggered(proc.done, horizon=1e6)
        estimates = proc.result
        assert estimates["via ualberta"] > estimates["direct"]

    def test_table4_overlap_emerges_from_noise(self):
        """Integration of harness + cross traffic: repeated runs in one
        noisy world produce non-trivial sigma."""
        from repro.measure import ExperimentProtocol, ExperimentRunner

        runner = ExperimentRunner(
            lambda seed: build_case_study(seed=seed),
            ExperimentProtocol(total_runs=5, discard_runs=1, inter_run_gap_s=5.0),
            master_seed=11,
        )

        def run_factory(world, run_index):
            plan = TransferPlan("purdue", "gdrive", FileSpec("t", int(mb(30))))
            result = yield from PlanExecutor(world).execute(plan)
            return result

        m = runner.measure("noise-check", run_factory)
        assert m.kept.std > 0.02 * m.kept.mean  # visible run-to-run noise


class TestDmzIntegration:
    def test_planner_discovers_dmz_dtn(self):
        """The planner enumerates the DMZ DTN automatically and prefers
        it over the firewalled one."""
        world = build_science_dmz_world(seed=0, per_flow_cap_bps=mbps(10),
                                        cross_traffic=False)
        planner = DetourPlanner(world, runs_per_route=1, discard_runs=0)
        comparison = planner.compare("ubc", "gdrive", int(mb(100)))
        assert comparison.best.route.describe() == "via ualberta-dmz"

    def test_probe_selector_sees_through_the_firewall(self):
        from repro.core import ProbeSelector, SelectionContext

        world = build_science_dmz_world(seed=0, per_flow_cap_bps=mbps(5),
                                        cross_traffic=False)
        ctx = SelectionContext(world, "ubc", "gdrive", int(mb(100)),
                               ("ualberta", "ualberta-dmz"))
        proc = world.sim.process(ProbeSelector().choose(ctx))
        world.sim.run_until_triggered(proc.done, horizon=1e6)
        assert proc.result.describe() == "via ualberta-dmz"


class TestEndToEndConsistency:
    def test_planner_and_executor_agree(self):
        """The route the planner measures fastest is fastest when run
        standalone too (same world, deterministic)."""
        world = build_case_study(seed=0, cross_traffic=False)
        planner = DetourPlanner(world, runs_per_route=1, discard_runs=0)
        comparison = planner.compare("ubc", "gdrive", int(mb(50)))
        times = {}
        for m in comparison.measurements:
            result = PlanExecutor(world).run(TransferPlan(
                "ubc", "gdrive", FileSpec("x.bin", int(mb(50))), m.route))
            times[m.route.describe()] = result.total_s
        assert min(times, key=times.get) == comparison.best.route.describe()

    def test_store_contents_after_mixed_workload(self):
        world = build_case_study(seed=0, cross_traffic=False)
        executor = PlanExecutor(world)
        for i, (client, provider) in enumerate([
            ("ubc", "gdrive"), ("purdue", "dropbox"), ("ucla", "onedrive"),
        ]):
            executor.run(TransferPlan(
                client, provider, FileSpec(f"file{i}.bin", int(mb(5)))))
        assert world.provider("gdrive").store.exists("file0.bin")
        assert world.provider("dropbox").store.exists("file1.bin")
        assert world.provider("onedrive").store.exists("file2.bin")
        assert world.provider("gdrive").store.total_bytes() == mb(5)
