"""Gap-filling tests: kernel run control, starved flows, misc edges."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError, TransferError
from repro.net import NetworkEngine, TokenBucket
from repro.net.topology import Link, Node, NodeKind, Topology
from repro.sim import Signal, Simulator
from repro.units import mb, mbps, ms


class TestRunUntilTriggered:
    def test_stops_at_trigger_not_heap_drain(self):
        sim = Simulator()
        sig = Signal(sim)
        late = []
        sim.schedule(5.0, lambda: sig.trigger("done"))
        sim.schedule(100.0, lambda: late.append(True))  # must NOT run
        assert sim.run_until_triggered(sig) is True
        assert late == []
        assert sim.now == pytest.approx(5.0)

    def test_horizon_stops_early(self):
        sim = Simulator()
        sig = Signal(sim)
        sim.schedule(50.0, lambda: sig.trigger())
        assert sim.run_until_triggered(sig, horizon=10.0) is False
        assert not sig.triggered

    def test_heap_drain_returns_trigger_state(self):
        sim = Simulator()
        sig = Signal(sim)
        sim.schedule(1.0, lambda: None)
        assert sim.run_until_triggered(sig) is False

    def test_already_triggered_is_immediate(self):
        sim = Simulator()
        sig = Signal(sim)
        sig.trigger()
        sim.schedule(10.0, lambda: None)
        assert sim.run_until_triggered(sig) is True
        assert sim.now == 0.0

    def test_perpetual_background_does_not_block(self):
        """The motivating case: infinite background process, finite task."""
        sim = Simulator()
        sig = Signal(sim)
        ticks = []

        def background():
            while True:
                yield 1.0
                ticks.append(sim.now)

        def task():
            yield 7.5
            sig.trigger()

        sim.process(background())
        sim.process(task())
        assert sim.run_until_triggered(sig, horizon=1e6)
        assert sim.now == pytest.approx(7.5)
        assert len(ticks) == 7  # background only ran while needed


class TestStarvedFlows:
    def _topo(self):
        topo = Topology()
        topo.add_node(Node("a", NodeKind.HOST, 1, "10.0.0.1"))
        topo.add_node(Node("b", NodeKind.HOST, 1, "10.0.0.2"))
        topo.add_link(Link("a", "b", capacity_bps=mbps(10), delay_s=ms(1)))
        return topo

    def test_flow_with_zero_ceiling_share_waits_for_capacity(self):
        """A hard-capped competitor can momentarily starve nothing here —
        max-min always gives a positive share — but a *cancelled* flow's
        capacity is reclaimed immediately."""
        topo = self._topo()
        sim = Simulator()
        engine = NetworkEngine(sim, topo)
        d = topo.path_directions(["a", "b"])
        hog = engine.start_transfer(d, mb(1000))
        small = engine.start_transfer(d, mb(5))
        sim.schedule(1.0, lambda: engine.cancel(hog))
        sim.run_until_triggered(small.done, horizon=1e5)
        # 1 s at 5 Mbit/s + remaining 4.375 MB at 10 Mbit/s = 4.5 s
        assert small.done.value.duration_s == pytest.approx(4.5, rel=0.01)

    def test_many_flows_all_progress(self):
        topo = self._topo()
        sim = Simulator()
        engine = NetworkEngine(sim, topo)
        d = topo.path_directions(["a", "b"])
        flows = [engine.start_transfer(d, mb(1)) for _ in range(20)]
        sim.run()
        ends = [f.done.value.end_time for f in flows]
        # equal shares, equal sizes -> all complete together at 16 s
        assert all(e == pytest.approx(16.0) for e in ends)


class TestTokenBucketProperty:
    @given(
        rate=st.floats(min_value=1e5, max_value=1e8),
        burst=st.floats(min_value=1e3, max_value=1e7),
        sizes=st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_sustained_rate_never_exceeded(self, rate, burst, sizes):
        """Over any sequence, bytes passed <= burst + rate * elapsed."""
        tb = TokenBucket(rate_bps=rate, burst_bytes=burst)
        now = 0.0
        sent = 0.0
        for size in sizes:
            delay = tb.consume(size, now)
            now += delay
            sent += size
            assert sent <= burst + (rate / 8) * now + 1e-6


class TestSignalEdgeCases:
    def test_fail_after_trigger_rejected(self):
        sim = Simulator()
        sig = Signal(sim)
        sig.trigger(1)
        with pytest.raises(SimulationError):
            sig.fail(ValueError("late"))

    def test_waiter_on_failed_signal_gets_exception_later(self):
        sim = Simulator()
        sig = Signal(sim)
        sig.fail(KeyError("pre-failed"))

        def waiter():
            try:
                yield sig
            except KeyError:
                return "saw it"

        p = sim.process(waiter())
        sim.run()
        assert p.result == "saw it"


class TestEngineEdgeCases:
    def test_duplicate_start_times_all_complete(self):
        topo = TestStarvedFlows()._topo()
        sim = Simulator()
        engine = NetworkEngine(sim, topo)
        d = topo.path_directions(["a", "b"])
        flows = []
        for _ in range(5):
            sim.schedule(2.0, lambda: flows.append(engine.start_transfer(d, mb(2))))
        sim.run()
        assert len(flows) == 5
        assert all(f.finished for f in flows)

    def test_tiny_transfer(self):
        topo = TestStarvedFlows()._topo()
        sim = Simulator()
        engine = NetworkEngine(sim, topo)
        t = engine.start_transfer(topo.path_directions(["a", "b"]), 1.0)
        sim.run()
        assert t.done.value.duration_s == pytest.approx(8 / mbps(10))
