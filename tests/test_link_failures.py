"""Dynamic link failures: rerouting, starvation, RON-style recovery."""

import pytest

from repro.core import BottleneckMonitor, DetourRoute, DirectRoute, MonitoredUpload, PlanExecutor, TransferPlan
from repro.errors import RoutingError
from repro.overlay import ProbeMesh, ResilientOverlay
from repro.testbed import build_case_study
from repro.transfer import FileSpec
from repro.units import mb, mbps


def drive(world, gen):
    proc = world.sim.process(gen)
    world.sim.run_until_triggered(proc.done, horizon=1e7)
    if proc.error:
        raise proc.error
    return proc.result


class TestFailureMechanics:
    def test_failed_link_avoided_by_new_paths(self):
        world = build_case_study(seed=0, cross_traffic=False)
        before = world.router.resolve("ualberta-dtn", "gdrive-frontend")
        assert "google-peer-vncv" in before.nodes
        world.fail_link("canarie-vncv--google-peer-vncv")
        with pytest.raises(RoutingError):
            # CANARIE's only Google peering is gone and the PBR rule does
            # not cover UAlberta prefixes: cleanly unreachable
            world.router.resolve("ualberta-dtn", "gdrive-frontend")

    def test_pbr_falls_through_when_its_egress_dies(self):
        """If the Pacific Wave link dies, UBC's Google traffic falls back
        to the (previously policy-bypassed) direct peering — and gets
        FASTER.  Failures can fix policy artifacts."""
        world = build_case_study(seed=0, cross_traffic=False)
        before = world.router.resolve("ubc-pl", "gdrive-frontend")
        assert "pacwave-sea" in before.nodes
        world.fail_link("canarie-vncv--pacwave-sea")
        after = world.router.resolve("ubc-pl", "gdrive-frontend")
        assert "pacwave-sea" not in after.nodes
        assert "google-peer-vncv" in after.nodes
        assert after.bottleneck_bps > before.bottleneck_bps * 4

    def test_restore_returns_original_path(self):
        world = build_case_study(seed=0, cross_traffic=False)
        world.fail_link("canarie-vncv--pacwave-sea")
        world.restore_link("canarie-vncv--pacwave-sea")
        path = world.router.resolve("ubc-pl", "gdrive-frontend")
        assert "pacwave-sea" in path.nodes

    def test_fail_is_idempotent(self):
        world = build_case_study(seed=0, cross_traffic=False)
        world.fail_link("canarie-vncv--pacwave-sea")
        world.fail_link("canarie-vncv--pacwave-sea")
        world.restore_link("canarie-vncv--pacwave-sea")
        world.restore_link("canarie-vncv--pacwave-sea")

    def test_inflight_flow_starves_then_recovers(self):
        world = build_case_study(seed=0, cross_traffic=False)
        link = world.topology.link("canarie-vncv--canarie-edmn")
        t = world.engine.start_transfer(
            [link.direction_from("canarie-vncv")], mb(100), label="victim")

        def chaos():
            yield 0.1
            world.fail_link(link.name)
            yield 10.0
            world.restore_link(link.name)

        world.sim.process(chaos())
        world.sim.run_until_triggered(t.done, horizon=1e6)
        # 100 MB at ~2 Gbit/s = ~0.4 s normally; the 10 s outage dominates
        result = t.done.value
        assert 10.2 < result.duration_s < 11.0

    def test_failure_traced(self):
        world = build_case_study(seed=0, cross_traffic=False, trace=True)
        world.fail_link("canarie-vncv--pacwave-sea")
        world.restore_link("canarie-vncv--pacwave-sea")
        kinds = [e.kind for e in world.tracer.filter(component="net.topology")]
        assert kinds == ["link_down", "link_up"]


class TestRonRecovery:
    def test_probe_records_dead_route_as_unreachable(self):
        """The CANARIE-Internet2 peering dies: UBC -> UMich becomes
        unroutable; the mesh records it as down instead of crashing."""
        world = build_case_study(seed=0, cross_traffic=False)
        mesh = ProbeMesh(world, ["ubc-pl", "umich-pl"],
                         probe_bytes=int(mb(1)), alpha=1.0)
        drive(world, mesh.probe_round())
        assert mesh.estimate("ubc-pl", "umich-pl").bandwidth_bps > mbps(2)

        world.fail_link("canarie-vncv--i2-seattle")
        drive(world, mesh.probe_pair("ubc-pl", "umich-pl"))
        assert mesh.estimate("ubc-pl", "umich-pl").bandwidth_bps == 0.0

    def test_overlay_relays_around_bgp_unreachability(self):
        """RON's founding scenario: after a failure, BGP offers *no* path
        between two members (no valley-free route remains), but a relay
        through a third member restores connectivity."""
        from repro.cloud import make_gdrive_protocol
        from repro.testbed import WorldBuilder
        from repro.units import ms

        b = WorldBuilder(seed=0)
        b.add_site("ron-a", 40.0, -100.0, "A-ville")
        b.add_site("ron-b", 42.0, -90.0, "B-town")
        b.add_site("ron-c", 44.0, -95.0, "C-burg")
        t1 = b.autonomous_system("ron-t1")
        t2 = b.autonomous_system("ron-t2")
        a = b.autonomous_system("ron-as-a")
        bb = b.autonomous_system("ron-as-b")
        c = b.autonomous_system("ron-as-c")
        b.customer(t1, a).customer(t2, a)
        b.customer(t1, bb)
        b.customer(t1, c).customer(t2, c)
        b.router("t1-core", t1, site="ron-a")
        b.router("t2-core", t2, site="ron-c")
        b.campus("ron-a", a, access_bps=mbps(50), site="ron-a")
        b.campus("ron-b", bb, access_bps=mbps(50), site="ron-b")
        b.campus("ron-c", c, access_bps=mbps(50), site="ron-c")
        b.link("ron-a-border", "t1-core", mbps(1000), ms(2), name="a-t1")
        b.link("ron-a-border", "t2-core", mbps(1000), ms(3))
        b.link("ron-b-border", "t1-core", mbps(1000), ms(2))
        b.link("ron-c-border", "t1-core", mbps(1000), ms(2))
        b.link("ron-c-border", "t2-core", mbps(1000), ms(2))
        world = b.build()

        mesh = ProbeMesh(world, ["ron-a-host", "ron-b-host", "ron-c-host"],
                         probe_bytes=int(mb(1)), alpha=1.0)
        ron = ResilientOverlay(mesh)
        drive(world, mesh.probe_round())
        assert ron.select_path("ron-a-host", "ron-b-host", int(mb(20))).is_direct

        # A's T1 uplink dies; T1 and T2 do not peer, so BGP has NOTHING
        world.fail_link("a-t1")
        with pytest.raises(RoutingError):
            world.router.resolve("ron-a-host", "ron-b-host")

        drive(world, mesh.probe_round())
        path = ron.select_path("ron-a-host", "ron-b-host", int(mb(20)))
        assert path.relay == "ron-c-host"  # C is dual-homed: the relay works
        _, elapsed = drive(world, ron.send("ron-a-host", "ron-b-host",
                                           FileSpec("ron.bin", int(mb(20)))))
        assert elapsed < 30  # connectivity restored at real bandwidth

    def test_monitored_upload_survives_detour_failure(self):
        """The bottleneck monitor aborts a stalled segment (timeout),
        declares the detour dead, and finishes on the direct route."""
        world = build_case_study(seed=0, cross_traffic=False)
        monitor = BottleneckMonitor(world, "ubc", "gdrive", ("ualberta",),
                                    probe_bytes=int(mb(1)), alpha=1.0)
        upload = MonitoredUpload(monitor, segment_bytes=int(mb(10)),
                                 switch_threshold=1.2, segment_timeout_s=60.0)

        def chaos():
            # wait until a detour segment's rsync leg is actually in
            # flight, then kill the Edmonton link under it: the flow
            # stalls at the residual rate until the timeout fires
            while True:
                yield 0.5
                inflight = any(
                    t.label.startswith("rsync:") and "big.bin" in t.label
                    for t in world.engine.active_transfers()
                )
                if inflight and world.sim.now > 20.0:
                    world.fail_link("canarie-vncv--canarie-edmn")
                    return

        world.sim.process(chaos())
        result = drive(world, upload.run(FileSpec("big.bin", int(mb(80)))))
        assert result.routes_used[0] == "via ualberta"
        assert result.routes_used[-1] == "direct"
        assert any(not seg.completed for seg in result.segments)
        completed_bytes = sum(s.size_bytes for s in result.segments if s.completed)
        assert completed_bytes == mb(80)
        # finished in plausible time despite the mid-flight failure
        assert result.total_s < 300
        # and the engine is clean: no leaked starving flows
        leftovers = [t for t in world.engine.active_transfers()
                     if "big.bin" in t.label]
        assert leftovers == []
