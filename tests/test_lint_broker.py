"""Lint coverage over ``repro/broker``: model-scope rules apply there.

The broker is control-plane *model* code — its decisions feed simulation
results — so the determinism (SL1xx) and unit (SL2xx) rules must fire
inside ``broker/`` exactly as they do in ``core/``, the observability
and parallelism rules (SL4xx/SL5xx, TREE scope) must keep applying, and
the real tree must be clean with **zero** baseline debt for the package.
"""

import textwrap
from pathlib import Path

import pytest

from repro.lint import DEFAULT_CONFIG, Baseline, LintEngine
from repro.lint.runner import BASELINE_FILENAME

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint(source, rel="broker/fixture.py"):
    engine = LintEngine(config=DEFAULT_CONFIG)
    return engine.lint_source(textwrap.dedent(source), rel=rel)


def rules_hit(source, rel="broker/fixture.py"):
    return {f.rule for f in lint(source, rel=rel)}


class TestBrokerIsModelScope:
    def test_config_includes_broker(self):
        assert "broker" in DEFAULT_CONFIG.model_packages

    def test_sl103_adhoc_rng_flagged_in_broker(self):
        src = """\
            import numpy as np

            def pick():
                rng = np.random.default_rng()
                return rng.random()
            """
        assert "SL103" in rules_hit(src)

    def test_sl104_set_iteration_flagged_in_broker(self):
        src = """\
            def drain(pairs):
                for pair in set(pairs):
                    print(pair)
            """
        assert "SL104" in rules_hit(src)

    def test_sl101_wall_clock_flagged_in_broker(self):
        src = """\
            import time

            def stamp():
                return time.time()
            """
        assert "SL101" in rules_hit(src)

    def test_sl202_bits_math_flagged_in_broker(self):
        src = """\
            def duration(nbytes, rate_bps):
                return nbytes * 8 / rate_bps
            """
        assert "SL202" in rules_hit(src)

    def test_same_fixture_quiet_outside_model_scope(self):
        src = """\
            def drain(pairs):
                for pair in set(pairs):
                    print(pair)
            """
        assert "SL104" not in rules_hit(src, rel="analysis/fixture.py")


class TestTreeRulesStillApply:
    def test_sl401_metric_naming_enforced_in_broker(self):
        src = """\
            def register(metrics):
                return metrics.counter("broker_hits", "badly named")
            """
        assert "SL401" in rules_hit(src)

    def test_sl402_raw_span_events_flagged_in_broker(self):
        src = """\
            def trace(tracer, now):
                tracer.emit(now, "broker", "span_begin", span_id=1)
            """
        assert "SL402" in rules_hit(src)

    def test_sl501_multiprocessing_flagged_in_broker(self):
        assert "SL501" in rules_hit("import multiprocessing\n")


class TestRealBrokerTreeIsClean:
    def test_zero_error_findings(self):
        # scan from the package root so findings carry the "broker/" rel
        # prefix and the MODEL-scope rules actually apply to the package
        engine = LintEngine(config=DEFAULT_CONFIG)
        report = engine.lint_tree(REPO_ROOT / "src" / "repro")
        broker_errors = [f for f in report.errors
                        if f.file.startswith("broker/")]
        assert broker_errors == [], "\n".join(
            f"{f.file}:{f.line} [{f.rule}] {f.message}"
            for f in broker_errors)

    def test_baseline_has_no_broker_debt(self):
        baseline = Baseline.load(REPO_ROOT / BASELINE_FILENAME)
        broker_entries = [e for e in baseline.entries
                         if e.file.startswith("broker/")]
        assert broker_entries == []
