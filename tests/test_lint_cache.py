"""The incremental analysis cache: hit accounting and crash-safety.

The cache is an accelerator, never an input: every test here asserts
both the counter behavior *and* that the produced report is identical
to an uncached run.
"""

import json
from pathlib import Path

import pytest

from repro.lint.config import LintConfig
from repro.lint.graph import ProjectAnalyzer, ruleset_fingerprint

pytestmark = pytest.mark.lint

CFG = LintConfig(model_packages=frozenset({"sim"}))

FILES = {
    "__init__.py": "",
    "sim/__init__.py": "",
    "sim/engine.py": (
        "from proj.util.clockish import stamp\n\n\n"
        "def step():\n"
        "    return stamp()\n"
    ),
    "util/__init__.py": "",
    "util/clockish.py": (
        "import time\n\n\n"
        "def stamp():\n"
        "    return time.time()\n"
    ),
    "util/helpers.py": (
        "def double(x):\n"
        "    return 2 * x\n"
    ),
}


@pytest.fixture
def proj(tmp_path):
    root = tmp_path / "proj"
    for rel, source in FILES.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return root


def _payload(result):
    """The report as the JSON the CLI would emit (no cache state)."""
    return json.dumps({
        "files_scanned": result.report.files_scanned,
        "findings": [f.to_dict() for f in result.report.findings],
    }, indent=2)


def _run(proj, cache_dir):
    return ProjectAnalyzer(config=CFG, cache_dir=cache_dir).run([proj])


def test_cold_run_all_misses_then_warm_run_all_hits(proj, tmp_path):
    cache_dir = tmp_path / "cache"
    cold = _run(proj, cache_dir)
    assert cold.cache_stats.misses == len(FILES)
    assert cold.cache_stats.hits == 0

    warm = _run(proj, cache_dir)
    assert warm.cache_stats.hits == len(FILES)
    assert warm.cache_stats.misses == 0
    assert _payload(warm) == _payload(cold)


def test_mutating_one_file_recomputes_only_that_summary(proj, tmp_path):
    cache_dir = tmp_path / "cache"
    _run(proj, cache_dir)
    target = proj / "util" / "helpers.py"
    target.write_text(FILES["util/helpers.py"] + "\n\ndef triple(x):\n"
                      "    return 3 * x\n", encoding="utf-8")

    result = _run(proj, cache_dir)
    assert result.cache_stats.misses == 1
    assert result.cache_stats.invalidated == 1
    assert result.cache_stats.hits == len(FILES) - 1
    # The changed file's summary really was rebuilt:
    assert "triple" in result.summaries["util/helpers.py"].defs


def test_corrupt_cache_file_recomputes_transparently(proj, tmp_path):
    cache_dir = tmp_path / "cache"
    reference = _run(proj, cache_dir)
    for cache_file in cache_dir.glob("lint-cache-*.json"):
        cache_file.write_text("{not json", encoding="utf-8")

    result = _run(proj, cache_dir)
    assert result.cache_stats.corrupt
    assert result.cache_stats.misses == len(FILES)
    assert _payload(result) == _payload(reference)
    # ...and the corrupt file was replaced by a good one:
    assert _run(proj, cache_dir).cache_stats.hits == len(FILES)


def test_stale_entry_hash_mismatch_recomputes_that_file(proj, tmp_path):
    cache_dir = tmp_path / "cache"
    reference = _run(proj, cache_dir)
    cache_file = next(cache_dir.glob("lint-cache-*.json"))
    data = json.loads(cache_file.read_text(encoding="utf-8"))
    data["files"]["sim/engine.py"]["sha256"] = "0" * 64
    cache_file.write_text(json.dumps(data), encoding="utf-8")

    result = _run(proj, cache_dir)
    assert result.cache_stats.invalidated == 1
    assert result.cache_stats.hits == len(FILES) - 1
    assert _payload(result) == _payload(reference)


def test_cached_and_uncached_reports_identical(proj, tmp_path):
    cache_dir = tmp_path / "cache"
    _run(proj, cache_dir)
    warm = _run(proj, cache_dir)
    uncached = ProjectAnalyzer(config=CFG, cache_dir=None).run([proj])
    assert _payload(warm) == _payload(uncached)
    # The taint finding is served from cache, not re-derived per-file:
    assert any(f.rule == "SL601" for f in warm.report.findings)


def test_config_change_changes_fingerprint(proj, tmp_path):
    cache_dir = tmp_path / "cache"
    _run(proj, cache_dir)
    other_cfg = LintConfig(model_packages=frozenset({"sim", "util"}))
    result = ProjectAnalyzer(config=other_cfg,
                             cache_dir=cache_dir).run([proj])
    # Different rule-set fingerprint -> disjoint cache file, all misses.
    assert result.cache_stats.misses == len(FILES)
    assert len(list(cache_dir.glob("lint-cache-*.json"))) == 2


def test_fingerprint_is_deterministic():
    a1 = ProjectAnalyzer(config=CFG)
    a2 = ProjectAnalyzer(config=CFG)
    fp1 = ruleset_fingerprint(a1.config, a1.engine.active_rules(),
                              a1.graph_rules)
    fp2 = ruleset_fingerprint(a2.config, a2.engine.active_rules(),
                              a2.graph_rules)
    assert fp1 == fp2
    assert len(fp1) == 16


def test_cache_survives_deleted_file(proj, tmp_path):
    cache_dir = tmp_path / "cache"
    _run(proj, cache_dir)
    (proj / "util" / "helpers.py").unlink()
    result = _run(proj, cache_dir)
    assert result.report.files_scanned == len(FILES) - 1
    assert "util/helpers.py" not in result.summaries
    # The vanished file's entry is not resurrected on the next run:
    assert _run(proj, cache_dir).report.files_scanned == len(FILES) - 1


def test_older_fingerprint_cache_recomputed_transparently(proj, tmp_path):
    """A warm cache written by an older rule set (different fingerprint)
    must never serve summaries: the run recomputes everything and
    replaces the file."""
    cache_dir = tmp_path / "cache"
    reference = _run(proj, cache_dir)
    cache_file = next(cache_dir.glob("lint-cache-*.json"))
    data = json.loads(cache_file.read_text(encoding="utf-8"))
    # Re-stamp the document with a PR-era fingerprint.  The sha256
    # entries are still correct, so a fingerprint-blind loader would
    # happily serve every summary from it.
    data["fingerprint"] = "0" * 16
    cache_file.write_text(json.dumps(data), encoding="utf-8")

    result = _run(proj, cache_dir)
    assert result.cache_stats.hits == 0
    assert result.cache_stats.misses == len(FILES)
    assert _payload(result) == _payload(reference)
    # ...and the stale document was replaced by a current one:
    refreshed = json.loads(cache_file.read_text(encoding="utf-8"))
    assert refreshed["fingerprint"] != "0" * 16
    assert _run(proj, cache_dir).cache_stats.hits == len(FILES)


def test_stale_fingerprint_filename_is_never_read(proj, tmp_path):
    """Caches are keyed by fingerprint in the *filename* too: an
    old-fingerprint file sitting in the directory is simply ignored."""
    cache_dir = tmp_path / "cache"
    reference = _run(proj, cache_dir)
    cache_file = next(cache_dir.glob("lint-cache-*.json"))
    stale = cache_dir / ("lint-cache-" + "f" * 16 + ".json")
    stale.write_text(cache_file.read_text(encoding="utf-8"),
                     encoding="utf-8")
    cache_file.unlink()

    result = _run(proj, cache_dir)
    assert result.cache_stats.misses == len(FILES)
    assert _payload(result) == _payload(reference)


def test_v3_config_fields_change_fingerprint():
    """layers / restricted_imports / hot_entrypoints are part of the
    rule-set fingerprint: changing any of them must invalidate caches
    (this is what keeps a PR-5-era warm cache from masking SL8xx/SL9xx
    findings)."""
    from dataclasses import replace

    def fp_of(config):
        analyzer = ProjectAnalyzer(config=config)
        return ruleset_fingerprint(analyzer.config,
                                   analyzer.engine.active_rules(),
                                   analyzer.graph_rules)

    base = fp_of(CFG)
    assert fp_of(replace(CFG, layers=(("sim",), ("util",)))) != base
    assert fp_of(replace(
        CFG, hot_entrypoints=("sim.engine.step",))) != base
    assert fp_of(replace(
        CFG, restricted_imports={"sim": frozenset({"cli"})})) != base
