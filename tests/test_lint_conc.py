"""Behavior of the SL10xx cross-process concurrency-safety family.

Each test builds a tiny multi-module project on disk and runs the
whole-program analyzer over it with a purpose-built
:class:`~repro.lint.config.LintConfig` whose ``worker_entrypoints``
point at fixture functions — then asserts on exactly which findings
fire.  Every true-positive fixture has a non-finding twin next to it,
so the tests pin both halves of each rule's contract.  The fix tests at
the bottom pin the SL1002 rewriter's byte-idempotence, and the
validation tests pin the SL001 / exit-2 contract for structural
misconfiguration of the family's knobs.
"""

import io
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.config import LintConfig
from repro.lint.findings import Severity
from repro.lint.graph import ProjectAnalyzer

pytestmark = pytest.mark.lint


def _project(tmp_path: Path, files: dict) -> Path:
    root = tmp_path / "proj"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    for pkg in {p.parent for p in root.rglob("*.py")} | {root}:
        init = pkg / "__init__.py"
        if not init.exists():
            init.write_text("", encoding="utf-8")
    return root


def _run(tmp_path: Path, files: dict, config: LintConfig):
    root = _project(tmp_path, files)
    analyzer = ProjectAnalyzer(config=config, cache_dir=None)
    return analyzer.run([root])


def _findings(result, prefix):
    return [f for f in result.report.findings if f.rule.startswith(prefix)]


def _conc_cfg(*entries, **kw):
    return LintConfig(model_packages=frozenset(), layers=(),
                      restricted_imports={}, hot_entrypoints=(),
                      worker_entrypoints=entries, **kw)


# -- SL1001: worker-reachable mutation of module/class state -----------


def test_sl1001_module_store_in_worker(tmp_path):
    result = _run(tmp_path, {
        "work/state.py": (
            "CACHE = {}\n"
            "\n"
            "\n"
            "def child_main(task):\n"
            "    CACHE[task] = 1\n"
            "    return CACHE\n"
        ),
    }, _conc_cfg("work.state.child_main"))
    sl1001 = _findings(result, "SL1001")
    assert len(sl1001) == 1
    f = sl1001[0]
    assert f.severity is Severity.ERROR
    assert f.line == 5
    assert "`CACHE" in f.message
    assert "worker-reachable proj.work.state.child_main" in f.message
    assert "from work.state.child_main" in f.message


def test_sl1001_local_dict_twin_is_clean(tmp_path):
    result = _run(tmp_path, {
        "work/state.py": (
            "def child_main(task):\n"
            "    cache = {}\n"
            "    cache[task] = 1\n"
            "    return cache\n"
        ),
    }, _conc_cfg("work.state.child_main"))
    assert _findings(result, "SL100") == []


def test_sl1001_global_rebinding_and_transitive_reach(tmp_path):
    # The mutation sits one call-graph hop below the entrypoint.
    result = _run(tmp_path, {
        "work/count.py": (
            "COUNT = 0\n"
            "\n"
            "\n"
            "def bump():\n"
            "    global COUNT\n"
            "    COUNT = COUNT + 1\n"
            "\n"
            "\n"
            "def child_main(task):\n"
            "    bump()\n"
            "    return task\n"
        ),
    }, _conc_cfg("work.count.child_main"))
    sl1001 = _findings(result, "SL1001")
    assert len(sl1001) == 1
    assert "rebinds module global" in sl1001[0].message
    assert "proj.work.count.bump" in sl1001[0].message


def test_sl1001_mutcall_on_module_binding(tmp_path):
    result = _run(tmp_path, {
        "work/reg.py": (
            "ITEMS = []\n"
            "\n"
            "\n"
            "def child_main(task):\n"
            "    ITEMS.append(task)\n"
        ),
    }, _conc_cfg("work.reg.child_main"))
    sl1001 = _findings(result, "SL1001")
    assert len(sl1001) == 1
    assert "mutates module-level binding in place" in sl1001[0].message


def test_sl1001_foreign_library_state_not_flagged(tmp_path):
    # Mutating non-project module state (os.environ) is outside the
    # family's contract.
    result = _run(tmp_path, {
        "work/env.py": (
            "import os\n"
            "\n"
            "\n"
            "def child_main(task):\n"
            "    os.environ.update({\"T\": str(task)})\n"
        ),
    }, _conc_cfg("work.env.child_main"))
    assert _findings(result, "SL1001") == []


def test_sl1001_closure_cell_with_dataclass_field_twin(tmp_path):
    # Regression: a dataclass field named like the closure variable must
    # not make the closure look module-level (class-body bindings are
    # not module globals).
    result = _run(tmp_path, {
        "work/fleet.py": (
            "from dataclasses import dataclass\n"
            "\n"
            "\n"
            "@dataclass\n"
            "class Result:\n"
            "    records: list\n"
            "\n"
            "\n"
            "def child_main(tasks):\n"
            "    records = []\n"
            "\n"
            "    def one(t):\n"
            "        records.append(t)\n"
            "\n"
            "    for t in tasks:\n"
            "        one(t)\n"
            "    return Result(records=records)\n"
        ),
    }, _conc_cfg("work.fleet.child_main"))
    assert _findings(result, "SL1001") == []


def test_sl1001_inline_suppression(tmp_path):
    result = _run(tmp_path, {
        "work/memo.py": (
            "MEMO = {}\n"
            "\n"
            "\n"
            "def child_main(task):\n"
            "    MEMO[task] = 1  "
            "# simlint: ignore[SL1001] -- per-process memo, content-keyed\n"
        ),
    }, _conc_cfg("work.memo.child_main"))
    assert _findings(result, "SL1001") == []
    assert len(result.report.suppressed) >= 1


# -- SL1002: durable writes outside the atomic protocol ----------------


def test_sl1002_worker_open_w_and_json_dump(tmp_path):
    result = _run(tmp_path, {
        "work/out.py": (
            "import json\n"
            "\n"
            "\n"
            "def child_main(path, payload):\n"
            "    with open(path, \"w\") as fh:\n"
            "        json.dump(payload, fh)\n"
        ),
    }, _conc_cfg("work.out.child_main"))
    sl1002 = _findings(result, "SL1002")
    assert len(sl1002) == 2
    assert all(f.severity is Severity.WARNING for f in sl1002)
    assert "`open(..., 'w')`" in sl1002[0].message
    assert "json.dump" in sl1002[1].message
    assert all("repro.core.atomic" in f.message for f in sl1002)


def test_sl1002_read_and_append_modes_are_clean(tmp_path):
    # Reads are harmless; append-only journals are a different
    # durability protocol, excluded by design.
    result = _run(tmp_path, {
        "work/out.py": (
            "def child_main(path):\n"
            "    with open(path) as fh:\n"
            "        head = fh.readline()\n"
            "    with open(path, \"a\") as fh:\n"
            "        fh.write(head)\n"
            "    return head\n"
        ),
    }, _conc_cfg("work.out.child_main"))
    assert _findings(result, "SL1002") == []


def test_sl1002_non_worker_write_is_clean(tmp_path):
    # A durable write outside the worker set (and without a hand-rolled
    # rename) is the parent's business.
    result = _run(tmp_path, {
        "work/report.py": (
            "def save_report(path, body):\n"
            "    path.write_text(body)\n"
        ),
    }, _conc_cfg("work.other.child_main"))
    assert _findings(result, "SL1002") == []


def test_sl1002_hand_rolled_rename_flagged_anywhere(tmp_path):
    result = _run(tmp_path, {
        "work/pub.py": (
            "import os\n"
            "\n"
            "\n"
            "def publish(path, tmp, body):\n"
            "    tmp.write_text(body)\n"
            "    os.replace(tmp, path)\n"
        ),
    }, _conc_cfg("work.other.child_main"))
    sl1002 = _findings(result, "SL1002")
    assert len(sl1002) == 1
    assert "hand-rolls the tmp+rename protocol" in sl1002[0].message


def test_sl1002_exempt_file_is_clean(tmp_path):
    files = {
        "work/pub.py": (
            "import os\n"
            "\n"
            "\n"
            "def publish(path, tmp, body):\n"
            "    tmp.write_text(body)\n"
            "    os.replace(tmp, path)\n"
        ),
    }
    cfg = _conc_cfg("work.other.child_main",
                    atomic_write_files=frozenset({"work/pub.py"}))
    assert _findings(_run(tmp_path, files, cfg), "SL1002") == []


# -- SL1003: unguarded tier read-modify-write --------------------------


def test_sl1003_fetch_then_publish_without_merge(tmp_path):
    result = _run(tmp_path, {
        "work/tier.py": (
            "def refresh(service, name, snap):\n"
            "    base = service.fetch_snapshot(name)\n"
            "    service.publish_snapshot(name, snap)\n"
            "    return base\n"
        ),
    }, _conc_cfg("work.other.child_main"))
    sl1003 = _findings(result, "SL1003")
    assert len(sl1003) == 1
    assert sl1003[0].line == 3
    assert sl1003[0].severity is Severity.ERROR
    assert "freshest-wins" in sl1003[0].message


def test_sl1003_merged_before_publish_twin_is_clean(tmp_path):
    result = _run(tmp_path, {
        "work/tier.py": (
            "def refresh(service, name, snap):\n"
            "    base = service.fetch_snapshot(name)\n"
            "    folded = base.merged(snap)\n"
            "    service.publish_snapshot(name, folded)\n"
            "    return folded\n"
        ),
    }, _conc_cfg("work.other.child_main"))
    assert _findings(result, "SL1003") == []


def test_sl1003_publish_without_fetch_is_clean(tmp_path):
    # Publish-only (write-once artifacts) is not a read-modify-write.
    result = _run(tmp_path, {
        "work/tier.py": (
            "def announce(service, name, snap):\n"
            "    service.publish_snapshot(name, snap)\n"
        ),
    }, _conc_cfg("work.other.child_main"))
    assert _findings(result, "SL1003") == []


# -- SL1004: RNG state crossing a process/cell boundary ----------------


def test_sl1004_rng_in_spawn_args(tmp_path):
    result = _run(tmp_path, {
        "work/spawn.py": (
            "import multiprocessing as mp\n"
            "\n"
            "\n"
            "def launch(rng, task):\n"
            "    p = mp.Process(target=task, args=(rng,))\n"
            "    p.start()\n"
            "    return p\n"
        ),
    }, _conc_cfg("work.other.child_main"))
    sl1004 = _findings(result, "SL1004")
    assert len(sl1004) == 1
    assert sl1004[0].line == 5
    assert "pickles RNG-carrying `rng`" in sl1004[0].message


def test_sl1004_seed_in_spawn_args_twin_is_clean(tmp_path):
    result = _run(tmp_path, {
        "work/spawn.py": (
            "import multiprocessing as mp\n"
            "\n"
            "\n"
            "def launch(seed, task):\n"
            "    p = mp.Process(target=task, args=(seed,))\n"
            "    p.start()\n"
            "    return p\n"
        ),
    }, _conc_cfg("work.other.child_main"))
    assert _findings(result, "SL1004") == []


def test_sl1004_entrypoint_rng_parameter(tmp_path):
    result = _run(tmp_path, {
        "work/entry.py": (
            "def child_main(rng, tasks):\n"
            "    return list(tasks)\n"
        ),
    }, _conc_cfg("work.entry.child_main"))
    sl1004 = _findings(result, "SL1004")
    assert len(sl1004) == 1
    assert "takes parameter `rng`" in sl1004[0].message
    assert "take a seed" in sl1004[0].message


def test_sl1004_entrypoint_seed_parameter_twin_is_clean(tmp_path):
    result = _run(tmp_path, {
        "work/entry.py": (
            "def child_main(seed, tasks):\n"
            "    return list(tasks)\n"
        ),
    }, _conc_cfg("work.entry.child_main"))
    assert _findings(result, "SL1004") == []


_RNGS = (
    "class RngRegistry:\n"
    "    def __init__(self, seed):\n"
    "        self.seed = seed\n"
    "\n"
    "    def stream(self, name):\n"
    "        return name\n"
)


def test_sl1004_loop_invariant_stream_in_worker(tmp_path):
    result = _run(tmp_path, {
        "work/rngs.py": _RNGS,
        "work/cells.py": (
            "from work.rngs import RngRegistry\n"
            "\n"
            "\n"
            "def child_main(cells):\n"
            "    reg = RngRegistry(7)\n"
            "    out = []\n"
            "    for c in cells:\n"
            "        out.append(reg.stream(\"jitter\"))\n"
            "    return out\n"
        ),
    }, _conc_cfg("work.cells.child_main"))
    sl1004 = _findings(result, "SL1004")
    assert len(sl1004) == 1
    assert "loop-invariant name" in sl1004[0].message


def test_sl1004_per_entity_stream_twin_is_clean(tmp_path):
    result = _run(tmp_path, {
        "work/rngs.py": _RNGS,
        "work/cells.py": (
            "from work.rngs import RngRegistry\n"
            "\n"
            "\n"
            "def child_main(cells):\n"
            "    reg = RngRegistry(7)\n"
            "    out = []\n"
            "    for c in cells:\n"
            "        out.append(reg.stream(f\"jitter-{c}\"))\n"
            "    return out\n"
        ),
    }, _conc_cfg("work.cells.child_main"))
    assert _findings(result, "SL1004") == []


def test_sl1004_loop_stream_outside_worker_set_is_clean(tmp_path):
    # Loop-invariant streaming in single-process code is legal (and
    # common in analysis scripts); only the worker set is a hazard.
    result = _run(tmp_path, {
        "work/rngs.py": _RNGS,
        "work/solo.py": (
            "from work.rngs import RngRegistry\n"
            "\n"
            "\n"
            "def sweep(cells):\n"
            "    reg = RngRegistry(7)\n"
            "    return [reg.stream(\"jitter\") for c in cells]\n"
        ),
    }, _conc_cfg("work.other.child_main"))
    assert _findings(result, "SL1004") == []


# -- the SL1002 autofix ------------------------------------------------

_FIXABLE = (
    "def child_main(path, body):\n"
    "    path.write_text(body, encoding=\"utf-8\")\n"
    "    return path\n"
)


def _run_fix(root: Path, cfg: LintConfig, **kw):
    sink = io.StringIO()
    code = run_lint([root], graph=True, no_cache=True, no_baseline=True,
                    config=cfg, out=sink.write, **kw)
    return code, sink.getvalue()


def test_sl1002_fix_rewrites_to_atomic_helper(tmp_path):
    root = _project(tmp_path, {"work/out.py": _FIXABLE})
    cfg = _conc_cfg("work.out.child_main")
    _run_fix(root, cfg, fix=True)
    fixed = (root / "work" / "out.py").read_text(encoding="utf-8")
    assert "from repro.core.atomic import atomic_write_text" in fixed
    assert "atomic_write_text(path, body, encoding=\"utf-8\")" in fixed
    assert ".write_text(" not in fixed


def test_sl1002_fix_is_byte_idempotent(tmp_path):
    root = _project(tmp_path, {"work/out.py": _FIXABLE})
    cfg = _conc_cfg("work.out.child_main")
    _run_fix(root, cfg, fix=True)
    once = (root / "work" / "out.py").read_bytes()
    _run_fix(root, cfg, fix=True)
    assert (root / "work" / "out.py").read_bytes() == once
    # ... and the fixed tree lints clean.
    code, out = _run_fix(root, cfg)
    assert code == 0, out


def test_sl1002_fix_refuses_hand_rolled_protocol(tmp_path):
    source = (
        "import os\n"
        "\n"
        "\n"
        "def publish(path, tmp, body):\n"
        "    tmp.write_text(body)\n"
        "    os.replace(tmp, path)\n"
    )
    root = _project(tmp_path, {"work/pub.py": source})
    cfg = _conc_cfg("work.other.child_main")
    _run_fix(root, cfg, fix=True)
    # The os.replace scaffolding needs a human: the file is untouched
    # and the warning still reports.
    assert (root / "work" / "pub.py").read_text(encoding="utf-8") == source
    _, out = _run_fix(root, cfg)
    assert "hand-rolls the tmp+rename protocol" in out


# -- configuration validation (SL001 / exit 2) -------------------------


def test_non_dotted_worker_entrypoint_is_config_error(tmp_path):
    root = _project(tmp_path, {"work/ok.py": "def f(x):\n    return x\n"})
    cfg = _conc_cfg("childmain")
    sink = io.StringIO()
    code = run_lint([root], graph=True, no_cache=True, no_baseline=True,
                    config=cfg, out=sink.write)
    assert code == 2
    assert "SL001" in sink.getvalue()
    assert "worker entrypoint 'childmain'" in sink.getvalue()


def test_absolute_atomic_write_file_is_config_error(tmp_path):
    root = _project(tmp_path, {"work/ok.py": "def f(x):\n    return x\n"})
    cfg = _conc_cfg("work.ok.f",
                    atomic_write_files=frozenset({"/abs/atomic.py"}))
    sink = io.StringIO()
    code = run_lint([root], graph=True, no_cache=True, no_baseline=True,
                    config=cfg, out=sink.write)
    assert code == 2
    assert "atomic_write_files entry '/abs/atomic.py'" in sink.getvalue()
