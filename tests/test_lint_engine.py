"""Engine mechanics: suppressions, baseline, output formats, CLI wiring."""

import json

import pytest

from repro.cli import main
from repro.lint import (
    Baseline,
    BaselineEntry,
    DEFAULT_CONFIG,
    Finding,
    LintEngine,
    LintReport,
    Severity,
    run_lint,
)

CLOCK_SNIPPET = "import time\n\ndef stamp():\n    return time.time()\n"


def write_module(root, rel, source):
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


class TestSuppressions:
    def test_same_line_ignore_suppresses(self):
        report = LintReport()
        findings = LintEngine().lint_source(
            "import time\nt = time.time()  # simlint: ignore[SL101] -- fixture\n",
            rel="sim/clock.py", report=report)
        assert findings == []
        assert [f.rule for f in report.suppressed] == ["SL101"]

    def test_wrong_rule_id_does_not_suppress(self):
        findings = LintEngine().lint_source(
            "import time\nt = time.time()  # simlint: ignore[SL999]\n",
            rel="sim/clock.py")
        assert [f.rule for f in findings] == ["SL101"]

    def test_star_suppresses_everything_on_the_line(self):
        findings = LintEngine().lint_source(
            "import time\nt = time.time()  # simlint: ignore[*]\n",
            rel="sim/clock.py")
        assert findings == []

    def test_multiple_ids_in_one_comment(self):
        src = ("import time\n"
               "import numpy as np\n"
               "rng = np.random.default_rng(0); t = time.time()"
               "  # simlint: ignore[SL101, SL103]\n")
        assert LintEngine().lint_source(src, rel="sim/clock.py") == []

    def test_suppression_on_other_line_has_no_effect(self):
        findings = LintEngine().lint_source(
            "# simlint: ignore[SL101]\nimport time\nt = time.time()\n",
            rel="sim/clock.py")
        assert [f.rule for f in findings] == ["SL101"]


class TestEngineBehaviour:
    def test_syntax_error_becomes_sl001(self):
        findings = LintEngine().lint_source("def broken(:\n", rel="net/bad.py")
        assert [f.rule for f in findings] == ["SL001"]
        assert findings[0].severity is Severity.ERROR

    def test_disabled_rule_is_skipped(self):
        config = DEFAULT_CONFIG.with_disabled("SL101")
        findings = LintEngine(config=config).lint_source(
            CLOCK_SNIPPET, rel="sim/clock.py")
        assert "SL101" not in {f.rule for f in findings}

    def test_findings_sorted_by_location(self):
        src = ("import time\n"
               "def f(acc=[]):\n"
               "    return time.time()\n")
        findings = LintEngine().lint_source(src, rel="sim/clock.py")
        assert findings == sorted(findings, key=Finding.sort_key)

    def test_lint_tree_counts_files_and_uses_posix_rel_paths(self, tmp_path):
        write_module(tmp_path, "net/a.py", CLOCK_SNIPPET)
        write_module(tmp_path, "analysis/b.py", "x = 1\n")
        report = LintEngine().lint_tree(tmp_path)
        assert report.files_scanned == 2
        assert [f.file for f in report.findings] == ["net/a.py"]
        assert "\\" not in report.findings[0].file

    def test_report_error_warning_split(self):
        report = LintReport(findings=[
            Finding("a.py", 1, "SL101", Severity.ERROR, "m"),
            Finding("a.py", 2, "SL203", Severity.WARNING, "m"),
        ])
        assert len(report.errors) == 1
        assert len(report.warnings) == 1


class TestFindingSchema:
    def test_to_dict_schema_is_exactly_the_documented_one(self):
        f = Finding("net/a.py", 12, "SL101", Severity.ERROR, "no wall clock")
        d = f.to_dict()
        assert set(d) == {"file", "line", "rule", "severity", "message"}
        assert d["file"] == "net/a.py"
        assert d["line"] == 12
        assert d["rule"] == "SL101"
        assert d["severity"] == "error"
        assert d["message"] == "no wall clock"

    def test_render_is_file_line_rule(self):
        f = Finding("net/a.py", 12, "SL101", Severity.ERROR, "no wall clock")
        assert f.render().startswith("net/a.py:12: SL101")


class TestBaseline:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "lint_baseline.json"
        Baseline(entries=[
            BaselineEntry("net/a.py", "SL101", count=2, justification="legacy"),
        ]).save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == [
            BaselineEntry("net/a.py", "SL101", count=2, justification="legacy")]

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "lint_baseline.json"
        path.write_text('{"version": 99, "entries": []}', encoding="utf-8")
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_filter_forgives_up_to_count_and_keeps_excess(self):
        baseline = Baseline(entries=[BaselineEntry("net/a.py", "SL101", count=1)])
        findings = [
            Finding("net/a.py", 3, "SL101", Severity.ERROR, "m"),
            Finding("net/a.py", 9, "SL101", Severity.ERROR, "m"),
            Finding("net/b.py", 1, "SL102", Severity.ERROR, "m"),
        ]
        kept, baselined, stale = baseline.filter(findings)
        assert [f.line for f in baselined] == [3]
        assert [(f.file, f.line) for f in kept] == [("net/a.py", 9), ("net/b.py", 1)]
        assert stale == []

    def test_stale_entries_detected(self):
        baseline = Baseline(entries=[BaselineEntry("net/gone.py", "SL101")])
        kept, baselined, stale = baseline.filter([])
        assert kept == [] and baselined == []
        assert [e.key() for e in stale] == [("net/gone.py", "SL101")]

    def test_from_findings_preserves_old_justifications(self):
        previous = Baseline(entries=[
            BaselineEntry("net/a.py", "SL101", justification="known debt")])
        findings = [
            Finding("net/a.py", 3, "SL101", Severity.ERROR, "m"),
            Finding("net/a.py", 9, "SL101", Severity.ERROR, "m"),
            Finding("net/b.py", 1, "SL201", Severity.ERROR, "m"),
        ]
        rebuilt = Baseline.from_findings(findings, previous=previous)
        by_key = {e.key(): e for e in rebuilt.entries}
        assert by_key[("net/a.py", "SL101")].count == 2
        assert by_key[("net/a.py", "SL101")].justification == "known debt"
        assert by_key[("net/b.py", "SL201")].justification.startswith("TODO")


class TestRunner:
    def test_dirty_tree_exits_nonzero(self, tmp_path):
        """The acceptance fixture: time.time() in a sim module must fail."""
        write_module(tmp_path, "sim/clock.py", CLOCK_SNIPPET)
        lines = []
        code = run_lint([tmp_path], no_baseline=True, out=lines.append)
        assert code == 1
        assert any("SL101" in line for line in lines)

    def test_clean_tree_exits_zero(self, tmp_path):
        write_module(tmp_path, "sim/ok.py", "def f(sim):\n    return sim.now\n")
        assert run_lint([tmp_path], no_baseline=True, out=lambda s: None) == 0

    def test_warnings_do_not_fail_the_gate(self, tmp_path):
        write_module(tmp_path, "net/conv.py",
                     "def f(link_bps):\n    speed_mbps = link_bps * 2\n"
                     "    return speed_mbps\n")
        lines = []
        code = run_lint([tmp_path], no_baseline=True, out=lines.append)
        assert code == 0
        assert any("SL203" in line for line in lines)

    def test_json_output_schema(self, tmp_path):
        write_module(tmp_path, "sim/clock.py", CLOCK_SNIPPET)
        lines = []
        code = run_lint([tmp_path], fmt="json", no_baseline=True,
                        out=lines.append)
        assert code == 1
        payload = json.loads("\n".join(lines))
        assert set(payload) == {"files_scanned", "findings", "baselined",
                                "suppressed", "stale_baseline_entries"}
        assert payload["files_scanned"] == 1
        (finding,) = payload["findings"]
        assert set(finding) == {"file", "line", "rule", "severity", "message"}
        assert finding["rule"] == "SL101"

    def test_baseline_forgives_and_stale_is_reported(self, tmp_path):
        write_module(tmp_path, "sim/clock.py", CLOCK_SNIPPET)
        baseline_path = tmp_path / "lint_baseline.json"
        Baseline(entries=[
            BaselineEntry("sim/clock.py", "SL101", justification="fixture"),
            BaselineEntry("sim/gone.py", "SL102", justification="paid off"),
        ]).save(baseline_path)
        lines = []
        code = run_lint([tmp_path], baseline_path=baseline_path,
                        out=lines.append)
        assert code == 0
        assert any("stale" in line for line in lines)

    def test_nonexistent_scan_path_is_operational_error(self, tmp_path):
        lines = []
        code = run_lint([tmp_path / "no_such_dir"], no_baseline=True,
                        out=lines.append)
        assert code == 2
        assert any("no such file" in line for line in lines)

    def test_missing_explicit_baseline_is_operational_error(self, tmp_path):
        write_module(tmp_path, "sim/ok.py", "x = 1\n")
        code = run_lint([tmp_path], baseline_path=tmp_path / "nope.json",
                        out=lambda s: None)
        assert code == 2

    def test_corrupt_baseline_is_operational_error(self, tmp_path):
        write_module(tmp_path, "sim/ok.py", "x = 1\n")
        bad = tmp_path / "lint_baseline.json"
        bad.write_text("not json", encoding="utf-8")
        code = run_lint([tmp_path], baseline_path=bad, out=lambda s: None)
        assert code == 2

    def test_update_baseline_writes_file_and_next_run_is_clean(self, tmp_path):
        write_module(tmp_path, "sim/clock.py", CLOCK_SNIPPET)
        baseline_path = tmp_path / "lint_baseline.json"
        code = run_lint([tmp_path], baseline_path=baseline_path,
                        update_baseline=True, out=lambda s: None)
        assert code == 0
        data = json.loads(baseline_path.read_text(encoding="utf-8"))
        assert data["version"] == 1
        assert data["entries"][0]["file"] == "sim/clock.py"
        assert data["entries"][0]["rule"] == "SL101"
        # the freshly written baseline makes the same tree pass
        assert run_lint([tmp_path], baseline_path=baseline_path,
                        out=lambda s: None) == 0


class TestCli:
    def test_cli_lint_dirty_tree_exits_one(self, tmp_path, capsys):
        write_module(tmp_path, "sim/clock.py", CLOCK_SNIPPET)
        code = main(["lint", str(tmp_path), "--no-baseline"])
        assert code == 1
        assert "SL101" in capsys.readouterr().out

    def test_cli_lint_json_format(self, tmp_path, capsys):
        write_module(tmp_path, "sim/clock.py", CLOCK_SNIPPET)
        code = main(["lint", str(tmp_path), "--no-baseline", "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "SL101"

    def test_cli_lint_clean_tree_exits_zero(self, tmp_path, capsys):
        write_module(tmp_path, "net/ok.py", "def f(rng):\n    return rng.random()\n")
        code = main(["lint", str(tmp_path), "--no-baseline"])
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_cli_lint_explicit_baseline_flag(self, tmp_path, capsys):
        write_module(tmp_path, "sim/clock.py", CLOCK_SNIPPET)
        baseline_path = tmp_path / "baseline.json"
        Baseline(entries=[
            BaselineEntry("sim/clock.py", "SL101", justification="fixture"),
        ]).save(baseline_path)
        code = main(["lint", str(tmp_path), "--baseline", str(baseline_path)])
        assert code == 0
        assert "1 baselined" in capsys.readouterr().out
