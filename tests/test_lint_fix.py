"""The autofix engine: golden rewrites, idempotence, dry-run safety.

Each fixer gets a golden before/after fixture (byte-exact comparison —
the rewriters promise token preservation, so the expected output is
fully determined).  On top of the per-fixer goldens the suite pins the
engine-level contracts: fixing twice equals fixing once, ``--dry-run``
writes nothing, suppress mode silences what it annotates, and a fixed
copy of the real ``src/repro`` still passes the RNG byte-determinism
tests in a subprocess.
"""

import hashlib
import io
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import LintEngine, run_lint
from repro.lint.config import LintConfig
from repro.lint.fix import (
    FIXABLE_RULES,
    MODE_REWRITE,
    MODE_SUPPRESS,
    apply_edits,
    fix_findings,
    plan_edits,
)
from repro.lint.graph import ProjectAnalyzer

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[1]

CFG = LintConfig(model_packages=frozenset({"sim"}), layers=(),
                 restricted_imports={}, hot_entrypoints=())


def _project(tmp_path: Path, files: dict) -> Path:
    root = tmp_path / "proj"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    for pkg in {p.parent for p in root.rglob("*.py")} | {root}:
        init = pkg / "__init__.py"
        if not init.exists():
            init.write_text("", encoding="utf-8")
    return root


def _fix_tree(root: Path, config=CFG, graph=False, mode=MODE_REWRITE):
    """Lint *root*, fix everything fixable, return the FixResult."""
    if graph:
        result = ProjectAnalyzer(config=config, cache_dir=None).run([root])
        findings = result.report.findings
    else:
        findings = LintEngine(config=config).lint_tree(root).findings
    rel_paths = {p.relative_to(root).as_posix(): p
                 for p in root.rglob("*.py")}
    return fix_findings(findings, rel_paths, mode=mode)


def _tree_hash(root: Path) -> str:
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


# -- SL104: set iteration -> sorted(...) -------------------------------


SL104_BEFORE = (
    "def order(out):\n"
    "    for name in {\"b\", \"a\"}:\n"
    "        out.append(name)\n"
)

SL104_AFTER = (
    "def order(out):\n"
    "    for name in sorted({\"b\", \"a\"}):\n"
    "        out.append(name)\n"
)


def test_sl104_golden(tmp_path):
    root = _project(tmp_path, {"sim/mod.py": SL104_BEFORE})
    result = _fix_tree(root)
    assert [f.rule for f in result.fixed] == ["SL104"]
    assert result.write() == 1
    assert (root / "sim" / "mod.py").read_text(encoding="utf-8") \
        == SL104_AFTER


def test_sl104_comprehension_golden(tmp_path):
    before = "def names(tags):\n    return [t for t in set(tags)]\n"
    after = "def names(tags):\n    return [t for t in sorted(set(tags))]\n"
    root = _project(tmp_path, {"sim/mod.py": before})
    _fix_tree(root).write()
    assert (root / "sim" / "mod.py").read_text(encoding="utf-8") == after


# -- SL201: magic literal -> units constant ----------------------------


SL201_BEFORE = (
    "\"\"\"Chunking policy.\"\"\"\n"
    "\n"
    "def cap():\n"
    "    return 10 ** 6\n"
)

SL201_AFTER = (
    "\"\"\"Chunking policy.\"\"\"\n"
    "from repro import units\n"
    "\n"
    "def cap():\n"
    "    return units.MB\n"
)


def test_sl201_golden_adds_import(tmp_path):
    root = _project(tmp_path, {"sim/mod.py": SL201_BEFORE})
    result = _fix_tree(root)
    assert [f.rule for f in result.fixed] == ["SL201"]
    result.write()
    assert (root / "sim" / "mod.py").read_text(encoding="utf-8") \
        == SL201_AFTER


def test_sl201_golden_reuses_existing_binding(tmp_path):
    before = (
        "from repro import units\n"
        "\n"
        "def cap():\n"
        "    return 2 ** 20\n"
    )
    after = (
        "from repro import units\n"
        "\n"
        "def cap():\n"
        "    return units.MiB\n"
    )
    root = _project(tmp_path, {"sim/mod.py": before})
    _fix_tree(root).write()
    assert (root / "sim" / "mod.py").read_text(encoding="utf-8") == after


# -- SL802: hoist a hot attribute chain --------------------------------


HOT_CFG = LintConfig(model_packages=frozenset(), layers=(),
                     restricted_imports={},
                     hot_entrypoints=("sim.engine.Kernel.run",))

SL802_BEFORE = (
    "class Kernel:\n"
    "    def run(self, items):\n"
    "        for it in items:\n"
    "            self.out.push(it)\n"
    "            self.out.push(it + 1)\n"
)

SL802_AFTER = (
    "class Kernel:\n"
    "    def run(self, items):\n"
    "        out_push = self.out.push\n"
    "        for it in items:\n"
    "            out_push(it)\n"
    "            out_push(it + 1)\n"
)


def test_sl802_golden_hoists_chain(tmp_path):
    root = _project(tmp_path, {"sim/engine.py": SL802_BEFORE})
    result = _fix_tree(root, config=HOT_CFG, graph=True)
    assert [f.rule for f in result.fixed] == ["SL802"]
    result.write()
    assert (root / "sim" / "engine.py").read_text(encoding="utf-8") \
        == SL802_AFTER


def test_sl802_hoist_name_collision_uses_fallback(tmp_path):
    before = SL802_BEFORE.replace(
        "for it in items:",
        "out_push = None\n        for it in items:")
    root = _project(tmp_path, {"sim/engine.py": before})
    result = _fix_tree(root, config=HOT_CFG, graph=True)
    result.write()
    fixed = (root / "sim" / "engine.py").read_text(encoding="utf-8")
    assert "out_push_hoisted = self.out.push" in fixed
    assert "out_push_hoisted(it)" in fixed


def test_sl802_double_collision_skips_not_guesses(tmp_path):
    before = SL802_BEFORE.replace(
        "for it in items:",
        "out_push = out_push_hoisted = None\n        for it in items:")
    root = _project(tmp_path, {"sim/engine.py": before})
    result = _fix_tree(root, config=HOT_CFG, graph=True)
    assert result.fixed == []
    assert [f.rule for f in result.skipped] == ["SL802"]
    assert (root / "sim" / "engine.py").read_text(encoding="utf-8") == before


# -- engine contracts --------------------------------------------------


MIXED_FILES = {
    "sim/mod.py": SL104_BEFORE,
    "sim/sizes.py": SL201_BEFORE,
    "sim/engine.py": SL802_BEFORE,
}

MIXED_CFG = LintConfig(model_packages=frozenset({"sim"}), layers=(),
                       restricted_imports={},
                       hot_entrypoints=("sim.engine.Kernel.run",))


def _run_lint_fix(root, **kw):
    sink = io.StringIO()
    code = run_lint([root], graph=True, no_cache=True, no_baseline=True,
                    config=MIXED_CFG, fix=True,
                    out=lambda s: sink.write(s + "\n"), **kw)
    return code, sink.getvalue()


def test_fix_twice_equals_fix_once(tmp_path):
    root = _project(tmp_path, MIXED_FILES)
    code, out = _run_lint_fix(root)
    assert code == 0
    assert "3 finding(s) fixable in 3 file(s)" in out
    once = _tree_hash(root)

    code, out = _run_lint_fix(root)
    assert code == 0
    assert "0 finding(s) fixable in 0 file(s)" in out
    assert _tree_hash(root) == once


def test_fixed_tree_relints_clean(tmp_path):
    root = _project(tmp_path, MIXED_FILES)
    _run_lint_fix(root)
    sink = io.StringIO()
    code = run_lint([root], graph=True, no_cache=True, no_baseline=True,
                    config=MIXED_CFG, out=lambda s: sink.write(s + "\n"))
    assert code == 0
    for rule in FIXABLE_RULES:
        assert rule not in sink.getvalue()


def test_dry_run_leaves_tree_untouched(tmp_path):
    root = _project(tmp_path, MIXED_FILES)
    before = _tree_hash(root)
    code, out = _run_lint_fix(root, dry_run=True)
    assert code == 0
    assert "no files written" in out
    assert "--- a/sim/engine.py" in out
    assert "+++ b/sim/engine.py" in out
    assert _tree_hash(root) == before


def test_suppress_mode_inserts_marker_and_silences(tmp_path):
    root = _project(tmp_path, {"sim/mod.py": SL104_BEFORE})
    code, out = _run_lint_fix(root, fix_mode=MODE_SUPPRESS)
    assert code == 0
    fixed = (root / "sim" / "mod.py").read_text(encoding="utf-8")
    assert "# simlint: ignore[SL104]" in fixed

    sink = io.StringIO()
    code = run_lint([root], graph=True, no_cache=True, no_baseline=True,
                    config=MIXED_CFG, out=lambda s: sink.write(s + "\n"))
    assert code == 0
    assert "1 suppressed" in sink.getvalue()


def test_suppress_mode_is_idempotent(tmp_path):
    root = _project(tmp_path, {"sim/mod.py": SL104_BEFORE})
    _run_lint_fix(root, fix_mode=MODE_SUPPRESS)
    once = _tree_hash(root)
    _run_lint_fix(root, fix_mode=MODE_SUPPRESS)
    assert _tree_hash(root) == once


def test_unknown_fix_mode_raises():
    with pytest.raises(ValueError):
        fix_findings([], {}, mode="yolo")


def test_apply_edits_refuses_overlap():
    source = "x = 10 ** 6\n"
    assert apply_edits(source, [(1, 4, 1, 11, "units.MB"),
                                (1, 4, 1, 6, "99")]) is None


def test_apply_edits_handles_multibyte_lines():
    # ast columns are UTF-8 byte offsets; "é" is 2 bytes wide.
    source = "label = \"é\"  # name\nvals = {1, 2}\n"
    out = apply_edits(source, [(2, 7, 2, 7, "sorted("),
                               (2, 13, 2, 13, ")")])
    assert out == "label = \"é\"  # name\nvals = sorted({1, 2})\n"


def test_plan_edits_unknown_rule_returns_none():
    import ast as _ast

    from repro.lint.findings import Finding, Severity

    finding = Finding("x.py", 1, "SL999", Severity.ERROR, "nope")
    assert plan_edits(_ast.parse("x = 1\n"), "x = 1\n", finding) is None


# -- the real tree: fix + byte-determinism -----------------------------


def test_fixed_src_repro_stays_byte_deterministic(tmp_path):
    """Run the fixer over a copy of ``src/repro`` and re-run the RNG
    byte-determinism suite against the fixed copy in a subprocess."""
    src = tmp_path / "src"
    shutil.copytree(REPO_ROOT / "src" / "repro", src / "repro")
    sink = io.StringIO()
    code = run_lint([src / "repro"], graph=True, no_cache=True,
                    no_baseline=True, fix=True,
                    out=lambda s: sink.write(s + "\n"))
    assert code == 0, sink.getvalue()

    test_file = tmp_path / "test_sim_rng_trace.py"
    test_file.write_text(
        (REPO_ROOT / "tests" / "test_sim_rng_trace.py")
        .read_text(encoding="utf-8"), encoding="utf-8")
    env = dict(os.environ, PYTHONPATH=str(src))
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q", str(test_file)],
        capture_output=True, text=True, env=env, cwd=str(tmp_path))
    assert proc.returncode == 0, proc.stdout + proc.stderr
