"""The tier-1 whole-program lint gate over the real ``src/repro`` tree.

Beyond cleanliness this gate pins the analysis-layer contracts:

* byte-determinism — two runs produce byte-identical JSON reports;
* the incremental cache is an accelerator (warm >= 3x faster than cold,
  both within wall-clock budget), recorded to
  ``benchmarks/results/BENCH_lint.json``;
* the linter passes its own rules when ``lint`` is treated as model
  code (no hash-ordered traversal inside the analyzer);
* SARIF output and the 0/1/2 exit-code contract.
"""

import io
import json
import time
from pathlib import Path

import pytest

from repro.lint import Baseline, LintEngine, run_lint
from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.graph import ProjectAnalyzer, to_dot
from repro.lint.runner import BASELINE_FILENAME, default_scan_root

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE_PATH = REPO_ROOT / BASELINE_FILENAME
BENCH_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_lint.json"

#: Wall-clock budgets for one whole-program pass over src/repro.
COLD_BUDGET_S = 10.0
WARM_BUDGET_S = 2.0
MIN_WARM_SPEEDUP = 3.0

#: The warm pass finishes in ~0.2 s, where single-run scheduler jitter
#: is a visible fraction of the measurement; the recorded warm time is
#: the best of this many runs so the ledger tracks cache cost, not noise.
WARM_RUNS = 3


def _graph_lint(cache_dir, **kw):
    buf = []
    code = run_lint([default_scan_root()], graph=True, cache_dir=cache_dir,
                    baseline_path=BASELINE_PATH, out=buf.append, **kw)
    return code, "\n".join(buf)


def test_graph_gate_src_repro_is_clean(tmp_path):
    code, out = _graph_lint(tmp_path / "cache")
    assert code == 0, f"repro lint --graph found new violations:\n{out}"


def test_no_unbaselined_graph_family_findings(tmp_path):
    """Zero unbaselined SL6xx/SL7xx/SL8xx/SL9xx on the real tree.

    The analyzer is given the repository's docs/tests/examples corpus as
    SL904 reference roots, exactly as the CLI discovers them.
    """
    reference = [REPO_ROOT / name
                 for name in ("docs", "tests", "examples", "README.md")]
    result = ProjectAnalyzer(
        cache_dir=None, reference_roots=reference).run([default_scan_root()])
    kept, _, _ = Baseline.load(BASELINE_PATH).filter(result.report.findings)
    # "SL100" (not "SL10") keeps the per-file SL1xx ids out of the match.
    graph_findings = [f for f in kept
                      if f.rule.startswith(("SL6", "SL7", "SL8", "SL9",
                                            "SL100"))]
    assert graph_findings == [], "\n".join(f.render() for f in graph_findings)


def test_graph_run_byte_deterministic_and_warm_speedup(tmp_path):
    cache_dir = tmp_path / "cache"

    t0 = time.perf_counter()
    code_cold, out_cold = _graph_lint(cache_dir, fmt="json")
    cold_s = time.perf_counter() - t0

    warm_s = float("inf")
    for _ in range(WARM_RUNS):
        t0 = time.perf_counter()
        code_warm, out_warm = _graph_lint(cache_dir, fmt="json")
        warm_s = min(warm_s, time.perf_counter() - t0)
        assert code_cold == code_warm == 0
        assert out_warm == out_cold, \
            "cold and warm reports must be byte-identical"

    _, out_nocache = _graph_lint(None, fmt="json", no_cache=True)
    assert out_nocache == out_cold, "the cache must never change the report"

    assert cold_s < COLD_BUDGET_S, f"cold graph lint took {cold_s:.2f}s"
    assert warm_s < WARM_BUDGET_S, f"warm graph lint took {warm_s:.2f}s"
    speedup = cold_s / warm_s
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm run only {speedup:.2f}x faster than cold "
        f"({cold_s:.3f}s -> {warm_s:.3f}s)")

    payload = json.loads(out_cold)
    BENCH_PATH.parent.mkdir(parents=True, exist_ok=True)
    BENCH_PATH.write_text(json.dumps({
        "files": payload["files_scanned"],
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "speedup": round(speedup, 2),
    }, indent=1) + "\n", encoding="utf-8")


def test_two_fresh_runs_identical_finding_order():
    a = ProjectAnalyzer(cache_dir=None).run([default_scan_root()])
    b = ProjectAnalyzer(cache_dir=None).run([default_scan_root()])
    assert [f.to_dict() for f in a.report.findings] \
        == [f.to_dict() for f in b.report.findings]
    assert a.graph.stats() == b.graph.stats()


def test_unknown_edges_are_recorded_not_dropped():
    result = ProjectAnalyzer(cache_dir=None).run([default_scan_root()])
    stats = result.graph.stats()
    # Dynamic dispatch exists in the tree (callbacks, injected clocks);
    # the resolver must surface it as explicit unknown edges.
    assert stats["unknown_edges"] > 0
    assert stats["project_edges"] > 500
    assert stats["entrypoints"] > 300


def test_linter_passes_its_own_determinism_rules():
    """The analyzer must satisfy the discipline it enforces: treating
    ``lint`` as model code turns the SL1xx family on it."""
    cfg = LintConfig(model_packages=frozenset({"lint"}))
    report = LintEngine(config=cfg).lint_tree(
        default_scan_root() / "lint")
    assert report.findings == [], "\n".join(
        f.render() for f in report.findings)


def test_dot_export_is_deterministic():
    result = ProjectAnalyzer(cache_dir=None).run([default_scan_root()])
    dot_a = to_dot(result.graph, focus="repro.sim")
    dot_b = to_dot(result.graph, focus="repro.sim")
    assert dot_a == dot_b
    assert dot_a.startswith("digraph repro_lint_callgraph {")
    assert dot_a.rstrip().endswith("}")


def test_sarif_output_is_valid_and_lists_graph_rules(tmp_path):
    code, out = _graph_lint(tmp_path / "cache", fmt="sarif")
    assert code == 0
    log = json.loads(out)
    assert log["version"] == "2.1.0"
    rules = {r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]}
    assert {"SL001", "SL101", "SL601", "SL602", "SL603",
            "SL701", "SL702", "SL703",
            "SL801", "SL802", "SL803", "SL804",
            "SL901", "SL902", "SL903", "SL904",
            "SL1001", "SL1002", "SL1003", "SL1004"} <= rules


def test_exit_code_contract(tmp_path):
    # 2: unparseable file, with or without --graph.
    bad = tmp_path / "bad"
    bad.mkdir()
    (bad / "broken.py").write_text("def f(:\n", encoding="utf-8")
    sink = io.StringIO()
    assert run_lint([bad], no_baseline=True,
                    out=sink.write) == 2
    assert run_lint([bad], no_baseline=True, graph=True, no_cache=True,
                    out=sink.write) == 2
    # 2: bad paths.
    assert run_lint([tmp_path / "nope"], no_baseline=True,
                    out=sink.write) == 2
    # 1: a real finding in model code.
    dirty = tmp_path / "dirty" / "sim"
    dirty.mkdir(parents=True)
    (dirty / "engine.py").write_text(
        "import time\n\n\ndef step():\n    return time.time()\n",
        encoding="utf-8")
    cfg = LintConfig(model_packages=frozenset({"sim"}))
    assert run_lint([tmp_path / "dirty"], no_baseline=True, graph=True,
                    no_cache=True, config=cfg, out=sink.write) == 1
    # 0: clean tree.
    clean = tmp_path / "clean"
    clean.mkdir()
    (clean / "ok.py").write_text("def f(x):\n    return x\n",
                                 encoding="utf-8")
    assert run_lint([clean], no_baseline=True, graph=True, no_cache=True,
                    out=sink.write) == 0


def test_default_config_model_packages_cover_graph_entrypoints():
    """The taint entrypoint set must include the simulator core."""
    assert {"sim", "net", "core", "transfer"} \
        <= set(DEFAULT_CONFIG.model_packages)
