"""Behavior of the whole-program rule families (SL6xx taint, SL7xx units).

Each test builds a tiny multi-module project on disk, runs the
:class:`repro.lint.graph.ProjectAnalyzer` over it with ``sim`` as the
model package, and asserts on the findings — including the full call
chain the taint rules print.
"""

from pathlib import Path

import pytest

from repro.lint import Baseline, BaselineEntry
from repro.lint.config import LintConfig
from repro.lint.graph import ProjectAnalyzer

pytestmark = pytest.mark.lint

CFG = LintConfig(model_packages=frozenset({"sim"}))


def _project(tmp_path: Path, files: dict) -> Path:
    root = tmp_path / "proj"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    for pkg in {p.parent for p in root.rglob("*.py")} | {root}:
        init = pkg / "__init__.py"
        if not init.exists():
            init.write_text("", encoding="utf-8")
    return root

def _run(tmp_path: Path, files: dict, config: LintConfig = CFG):
    root = _project(tmp_path, files)
    analyzer = ProjectAnalyzer(config=config, cache_dir=None)
    return analyzer.run([root])


def _rules(result):
    return [(f.rule, f.file, f.message) for f in result.report.findings]


# -- SL6xx: transitive determinism taint ---------------------------------


def test_sl601_wall_clock_chain_reported(tmp_path):
    result = _run(tmp_path, {
        "util/clockish.py": (
            "import time\n\n\n"
            "def stamp():\n"
            "    return time.time()\n"
        ),
        "sim/engine.py": (
            "from proj.util.clockish import stamp\n\n\n"
            "def step():\n"
            "    return stamp()\n"
        ),
    })
    sl601 = [f for f in result.report.findings if f.rule == "SL601"]
    assert len(sl601) == 1
    f = sl601[0]
    assert f.file == "util/clockish.py"
    assert "time.time()" in f.message
    assert ("reachable from model code via proj.sim.engine.step"
            " -> proj.util.clockish.stamp") in f.message


def test_sl601_not_reported_when_unreachable_from_model_code(tmp_path):
    result = _run(tmp_path, {
        "util/clockish.py": (
            "import time\n\n\n"
            "def stamp():\n"
            "    return time.time()\n"
        ),
        "sim/engine.py": "def step():\n    return 1\n",
    })
    assert [f.rule for f in result.report.findings] == []


def test_sl601_sink_inside_model_package_is_per_file_territory(tmp_path):
    """A wall-clock read *in* model code is SL101's job, not SL601's."""
    result = _run(tmp_path, {
        "sim/engine.py": (
            "import time\n\n\n"
            "def step():\n"
            "    return time.time()\n"
        ),
    })
    rules = [f.rule for f in result.report.findings]
    assert "SL101" in rules
    assert "SL601" not in rules


def test_sl602_argless_default_rng_and_os_urandom(tmp_path):
    result = _run(tmp_path, {
        "util/entropy.py": (
            "import os\n"
            "import numpy as np\n\n\n"
            "def fresh_rng():\n"
            "    return np.random.default_rng()\n\n\n"
            "def seeded_rng(seed):\n"
            "    return np.random.default_rng(seed)\n\n\n"
            "def noise():\n"
            "    return os.urandom(8)\n"
        ),
        "sim/engine.py": (
            "from proj.util.entropy import fresh_rng, noise, seeded_rng\n\n\n"
            "def a():\n"
            "    return fresh_rng()\n\n\n"
            "def b():\n"
            "    return noise()\n\n\n"
            "def c(seed):\n"
            "    return seeded_rng(seed)\n"
        ),
    })
    sl602 = [f for f in result.report.findings if f.rule == "SL602"]
    messages = "\n".join(f.message for f in sl602)
    assert "default_rng()" in messages and "os.urandom()" in messages
    # The *seeded* construction is deliberate injection — never tainted.
    assert "seeded_rng" not in messages


def test_sl603_set_iteration_feeding_return(tmp_path):
    result = _run(tmp_path, {
        "util/pick.py": (
            "def pick(items):\n"
            "    out = []\n"
            "    for x in set(items):\n"
            "        out.append(x)\n"
            "    return out\n\n\n"
            "def harmless(items):\n"
            "    for x in set(items):\n"
            "        print(x)\n"
        ),
        "sim/engine.py": (
            "from proj.util.pick import harmless, pick\n\n\n"
            "def choose(xs):\n"
            "    return pick(xs)\n\n\n"
            "def log(xs):\n"
            "    harmless(xs)\n"
        ),
    })
    sl603 = [f for f in result.report.findings if f.rule == "SL603"]
    assert len(sl603) == 1
    assert "proj.util.pick.pick" in sl603[0].message


def test_sl6xx_chain_through_intermediate_module(tmp_path):
    """Taint crosses more than one non-model hop and prints every hop."""
    result = _run(tmp_path, {
        "util/clockish.py": (
            "import time\n\n\n"
            "def stamp():\n"
            "    return time.time()\n"
        ),
        "util/middle.py": (
            "from proj.util.clockish import stamp\n\n\n"
            "def relay():\n"
            "    return stamp()\n"
        ),
        "sim/engine.py": (
            "from proj.util.middle import relay\n\n\n"
            "def step():\n"
            "    return relay()\n"
        ),
    })
    sl601 = [f for f in result.report.findings if f.rule == "SL601"]
    assert len(sl601) == 1
    assert ("proj.sim.engine.step -> proj.util.middle.relay"
            " -> proj.util.clockish.stamp") in sl601[0].message


def test_graph_finding_suppressible_at_sink_line(tmp_path):
    result = _run(tmp_path, {
        "util/clockish.py": (
            "import time\n\n\n"
            "def stamp():\n"
            "    return time.time()  # simlint: ignore[SL601] -- ok here\n"
        ),
        "sim/engine.py": (
            "from proj.util.clockish import stamp\n\n\n"
            "def step():\n"
            "    return stamp()\n"
        ),
    })
    assert [f.rule for f in result.report.findings] == []
    assert [f.rule for f in result.report.suppressed] == ["SL601"]


def test_unknown_calls_become_explicit_unknown_edges(tmp_path):
    result = _run(tmp_path, {
        "sim/engine.py": (
            "def step(handler):\n"
            "    return handler.fire()\n"
        ),
    })
    unknown = [e for e in result.graph.edges if e.kind == "unknown"]
    assert len(unknown) == 1
    assert result.graph.stats()["unknown_edges"] == 1


def test_method_call_through_self_resolves(tmp_path):
    result = _run(tmp_path, {
        "util/clockish.py": (
            "import time\n\n\n"
            "class Clock:\n"
            "    def read(self):\n"
            "        return self._raw()\n\n"
            "    def _raw(self):\n"
            "        return time.time()\n"
        ),
        "sim/engine.py": (
            "from proj.util.clockish import Clock\n\n\n"
            "def step():\n"
            "    return Clock().read()\n"
        ),
    })
    sl601 = [f for f in result.report.findings if f.rule == "SL601"]
    assert len(sl601) == 1
    assert "proj.util.clockish.Clock.read" in sl601[0].message
    assert "proj.util.clockish.Clock._raw" in sl601[0].message


# -- SL7xx: unit dataflow ------------------------------------------------


def test_sl701_mixed_unit_arithmetic(tmp_path):
    result = _run(tmp_path, {
        "sim/engine.py": (
            "def total(payload_mb, duration_s):\n"
            "    return payload_mb + duration_s\n\n\n"
            "def fine(size_mb, other_mb):\n"
            "    return size_mb + other_mb\n\n\n"
            "def ratio(size_bytes, duration_s):\n"
            "    return size_bytes / duration_s\n"
        ),
    })
    sl701 = [f for f in result.report.findings if f.rule == "SL701"]
    assert len(sl701) == 1
    assert "'mb'" in sl701[0].message and "'s'" in sl701[0].message


def test_sl702_contradicting_argument_binding(tmp_path):
    result = _run(tmp_path, {
        "util/send.py": (
            "def send(size_bytes):\n"
            "    return size_bytes\n"
        ),
        "sim/engine.py": (
            "from proj.util.send import send\n\n\n"
            "def bad():\n"
            "    latency_s = 3.0\n"
            "    return send(latency_s)\n\n\n"
            "def good():\n"
            "    payload_bytes = 4096\n"
            "    return send(payload_bytes)\n\n\n"
            "def kw_bad():\n"
            "    window_s = 1.0\n"
            "    return send(size_bytes=window_s)\n"
        ),
    })
    sl702 = [f for f in result.report.findings if f.rule == "SL702"]
    assert len(sl702) == 2
    for f in sl702:
        assert "size_bytes" in f.message and "'s'" in f.message


def test_sl702_unit_flows_through_converter_return(tmp_path):
    """``units.mb`` returns bytes, so feeding it to a ``_bytes``
    parameter is clean while feeding it to ``_s`` contradicts."""
    result = _run(tmp_path, {
        "util/send.py": (
            "def send(size_bytes):\n"
            "    return size_bytes\n\n\n"
            "def wait(timeout_s):\n"
            "    return timeout_s\n"
        ),
        "sim/engine.py": (
            "from repro import units\n\n"
            "from proj.util.send import send, wait\n\n\n"
            "def good(n):\n"
            "    return send(units.mb(n))\n\n\n"
            "def bad(n):\n"
            "    return wait(units.mb(n))\n"
        ),
    })
    sl702 = [f for f in result.report.findings if f.rule == "SL702"]
    assert len(sl702) == 1
    assert "timeout_s" in sl702[0].message
    assert "'bytes'" in sl702[0].message


def test_sl703_assignment_contradicts_callee_unit(tmp_path):
    result = _run(tmp_path, {
        "util/conv.py": (
            "from repro import units\n\n\n"
            "def chunk_bytes(n):\n"
            "    return units.mb(n)\n"
        ),
        "sim/engine.py": (
            "from proj.util.conv import chunk_bytes\n\n\n"
            "def bad():\n"
            "    duration_s = chunk_bytes(5)\n"
            "    return duration_s\n\n\n"
            "def good():\n"
            "    size_bytes = chunk_bytes(5)\n"
            "    return size_bytes\n"
        ),
    })
    sl703 = [f for f in result.report.findings if f.rule == "SL703"]
    assert len(sl703) == 1
    assert "duration_s" in sl703[0].message


def test_sl7xx_unresolved_call_terms_never_fire(tmp_path):
    """A call with no known return unit must not produce findings."""
    result = _run(tmp_path, {
        "sim/engine.py": (
            "def check(xs, max_bytes):\n"
            "    return len(xs) > max_bytes\n"
        ),
    })
    assert [f.rule for f in result.report.findings] == []


# -- baseline interaction -------------------------------------------------


def test_graph_rule_baseline_entries_not_stale_in_per_file_run():
    """A per-file-only run must not mark SL6xx baseline debt as stale."""
    baseline = Baseline(entries=[
        BaselineEntry(file="util/clockish.py", rule="SL601",
                      justification="known debt"),
    ])
    kept, baselined, stale = baseline.filter(
        [], active_rules={"SL101", "SL201"})
    assert (kept, baselined, stale) == ([], [], [])
    # ...while a run that *did* execute SL601 reports it stale:
    _, _, stale = baseline.filter([], active_rules={"SL101", "SL601"})
    assert [e.rule for e in stale] == ["SL601"]
