"""SL4xx fixtures: metric naming and span-emission discipline."""

import textwrap

from repro.lint import DEFAULT_CONFIG, LintEngine


def lint(source, rel="net/fixture.py", config=None):
    engine = LintEngine(config=config or DEFAULT_CONFIG)
    return engine.lint_source(textwrap.dedent(source), rel=rel)


def rules_hit(source, rel="net/fixture.py", config=None):
    return {f.rule for f in lint(source, rel=rel, config=config)}


class TestSL401MetricNaming:
    def test_bad_name_flagged(self):
        findings = lint("""\
            def setup(metrics):
                return metrics.counter("flows_started", "no prefix or suffix")
            """)
        assert [f.rule for f in findings] == ["SL401"]
        assert findings[0].line == 2

    def test_missing_unit_suffix_flagged(self):
        assert "SL401" in rules_hit(
            'x = registry.gauge("repro_active_flows")\n')

    def test_camel_case_flagged(self):
        assert "SL401" in rules_hit(
            'x = metrics.histogram("repro_FlowDuration_seconds")\n')

    def test_convention_name_ok(self):
        assert "SL401" not in rules_hit(
            'x = metrics.counter("repro_engine_flows_started_total", "help")\n')

    def test_all_unit_suffixes_ok(self):
        for sfx in ("total", "seconds", "bytes", "bps", "ratio", "count"):
            assert "SL401" not in rules_hit(
                f'x = metrics.counter("repro_t_x_{sfx}")\n'), sfx

    def test_non_registry_receiver_ignored(self):
        # .counter() on something that isn't a metrics registry is not ours.
        assert "SL401" not in rules_hit('x = geiger.counter("clicks")\n')

    def test_non_constant_name_ignored(self):
        assert "SL401" not in rules_hit("x = metrics.counter(name)\n")

    def test_applies_outside_model_packages_too(self):
        # TREE scope: the obs package itself must follow the convention.
        assert "SL401" in rules_hit(
            'x = registry.counter("bad")\n', rel="obs/fixture.py")


class TestSL402SpanEmitPairing:
    def test_hand_emitted_begin_flagged(self):
        findings = lint("""\
            def f(tracer, now):
                tracer.emit(now, "core", "span_begin", span=1, name="x")
            """)
        assert [f.rule for f in findings] == ["SL402"]

    def test_hand_emitted_end_flagged(self):
        assert "SL402" in rules_hit(
            'tracer.emit(0.0, "core", "span_end", span=1)\n')

    def test_ordinary_events_ok(self):
        assert "SL402" not in rules_hit(
            'tracer.emit(0.0, "net.flow", "flow_end", fid=3)\n')

    def test_span_tracer_module_exempt(self):
        src = 'self.tracer.emit(time, component, "span_begin", span=i)\n'
        assert "SL402" in rules_hit(src, rel="net/fixture.py")
        assert "SL402" not in rules_hit(src, rel="obs/spans.py")

    def test_context_manager_usage_ok(self):
        assert "SL402" not in rules_hit("""\
            def f(spans):
                with spans.span("core.executor", "plan:direct"):
                    pass
            """)


class TestSL403ObsWallClock:
    CLOCK_READ = """\
        import time

        def export(events):
            return {"at": time.time(), "n": len(events)}
        """

    def test_clock_read_under_obs_flagged(self):
        findings = [f for f in lint(self.CLOCK_READ, rel="obs/fixture.py")
                    if f.rule == "SL403"]
        assert len(findings) == 1
        assert findings[0].line == 4
        assert "obs/profile.py" in findings[0].message

    def test_every_wall_clock_function_flagged(self):
        for call in ("time.time()", "time.perf_counter()",
                     "time.monotonic()"):
            src = f"import time\nx = {call}\n"
            assert "SL403" in rules_hit(src, rel="obs/fixture.py"), call

    def test_profiler_module_exempt(self):
        assert "SL403" not in rules_hit(self.CLOCK_READ, rel="obs/profile.py")

    def test_outside_obs_ignored(self):
        # the campaign layer is the sanctioned orchestration-side clock
        # reader; SL403 has nothing to say there
        assert "SL403" not in rules_hit(self.CLOCK_READ,
                                        rel="campaign/fixture.py")

    def test_exemption_is_configurable(self):
        from dataclasses import replace

        cfg = replace(DEFAULT_CONFIG,
                      profiler_files=frozenset({"obs/other.py"}))
        assert "SL403" not in rules_hit(self.CLOCK_READ, rel="obs/other.py",
                                        config=cfg)
        assert "SL403" in rules_hit(self.CLOCK_READ, rel="obs/profile.py",
                                    config=cfg)

    def test_sim_time_reads_ok(self):
        assert "SL403" not in rules_hit(
            "def fold(sim, ev):\n    return (sim.now, ev.wall_s)\n",
            rel="obs/fixture.py")


class TestCatalogue:
    def test_sl4xx_registered(self):
        from repro.lint.engine import all_rules

        ids = {r.rule_id for r in all_rules()}
        assert {"SL401", "SL402", "SL403"} <= ids

    def test_obs_package_is_clean(self):
        """The shipped obs code satisfies its own rules, no baseline."""
        from pathlib import Path

        import repro

        root = Path(repro.__file__).parent
        engine = LintEngine()
        report = engine.lint_tree(root / "obs")
        assert report.findings == []
