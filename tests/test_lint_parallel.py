"""SL5xx fixtures: parallelism containment (campaign engine only)."""

import textwrap

from repro.lint import DEFAULT_CONFIG, LintEngine


def lint(source, rel="net/fixture.py", config=None):
    engine = LintEngine(config=config or DEFAULT_CONFIG)
    return engine.lint_source(textwrap.dedent(source), rel=rel)


def rules_hit(source, rel="net/fixture.py", config=None):
    return {f.rule for f in lint(source, rel=rel, config=config)}


class TestSL501ParallelImportContainment:
    def test_multiprocessing_import_flagged(self):
        findings = lint("import multiprocessing\n")
        assert [f.rule for f in findings] == ["SL501"]
        assert findings[0].line == 1

    def test_submodule_import_flagged(self):
        assert "SL501" in rules_hit("import multiprocessing.connection\n")

    def test_concurrent_futures_import_flagged(self):
        assert "SL501" in rules_hit("import concurrent.futures\n")

    def test_from_concurrent_import_futures_flagged(self):
        # names the parent module; the rule must still see it
        assert "SL501" in rules_hit("from concurrent import futures\n")

    def test_from_multiprocessing_import_flagged(self):
        assert "SL501" in rules_hit("from multiprocessing import Process\n")

    def test_campaign_package_is_exempt(self):
        assert "SL501" not in rules_hit(
            "import multiprocessing\n", rel="campaign/pool.py")

    def test_applies_everywhere_else(self):
        # TREE scope: analysis, obs, cli — no package is special-cased
        for rel in ("analysis/fixture.py", "obs/fixture.py", "cli.py"):
            assert "SL501" in rules_hit("import multiprocessing\n", rel=rel), rel

    def test_similarly_named_module_ok(self):
        assert "SL501" not in rules_hit("import multiprocessing_utils\n")

    def test_ordinary_imports_ok(self):
        assert "SL501" not in rules_hit("import concurrent_log_handler\n")


class TestSL502RawFork:
    def test_os_fork_flagged(self):
        findings = lint("""\
            import os

            def spawn():
                return os.fork()
            """, rel="campaign/fixture.py")
        assert [f.rule for f in findings] == ["SL502"]
        assert findings[0].line == 4

    def test_forkpty_flagged(self):
        assert "SL502" in rules_hit("pid, fd = os.forkpty()\n")

    def test_no_exemption_even_in_campaign(self):
        # the pool itself must go through multiprocessing
        assert "SL502" in rules_hit("os.fork()\n", rel="campaign/pool.py")

    def test_other_os_calls_ok(self):
        assert "SL502" not in rules_hit("os.replace('a', 'b')\n")

    def test_non_os_fork_ok(self):
        assert "SL502" not in rules_hit("repo.fork()\n")


class TestZeroBaseline:
    def test_no_sl5xx_entries_are_grandfathered(self):
        # zero-baseline family: violations get fixed, never baselined
        from pathlib import Path

        from repro.lint import Baseline
        from repro.lint.runner import BASELINE_FILENAME

        path = Path(__file__).resolve().parents[1] / BASELINE_FILENAME
        baseline = Baseline.load(path)
        offenders = [e for e in baseline.entries if e.rule.startswith("SL5")]
        assert offenders == []
