"""Behavior of the SL8xx hot-path and SL9xx layering rule families.

Each test builds a tiny multi-module project on disk and runs the
whole-program analyzer over it with a purpose-built
:class:`~repro.lint.config.LintConfig` — a two- or three-layer DAG and
a single hot entrypoint — then asserts on exactly which findings fire.
The configuration-validation tests at the bottom pin the SL001 / exit-2
contract for every structural misconfiguration.
"""

import io
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.config import LintConfig
from repro.lint.findings import Severity
from repro.lint.graph import ProjectAnalyzer

pytestmark = pytest.mark.lint


def _project(tmp_path: Path, files: dict) -> Path:
    root = tmp_path / "proj"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    for pkg in {p.parent for p in root.rglob("*.py")} | {root}:
        init = pkg / "__init__.py"
        if not init.exists():
            init.write_text("", encoding="utf-8")
    return root


def _run(tmp_path: Path, files: dict, config: LintConfig,
         reference_roots=None):
    root = _project(tmp_path, files)
    analyzer = ProjectAnalyzer(config=config, cache_dir=None,
                               reference_roots=reference_roots)
    return analyzer.run([root])


def _findings(result, prefix):
    return [f for f in result.report.findings if f.rule.startswith(prefix)]


# -- SL8xx: hot-path performance ---------------------------------------


def _perf_cfg(*entries):
    return LintConfig(model_packages=frozenset(), layers=(),
                      restricted_imports={}, hot_entrypoints=entries)


def test_sl801_fresh_container_in_hot_loop(tmp_path):
    result = _run(tmp_path, {
        "sim/engine.py": (
            "def step(events, sink):\n"
            "    for e in events:\n"
            "        buf = []\n"
            "        buf.append(e)\n"
            "        sink(buf)\n"
        ),
    }, _perf_cfg("sim.engine.step"))
    sl801 = _findings(result, "SL801")
    assert len(sl801) == 1
    f = sl801[0]
    assert f.severity is Severity.WARNING
    assert "fresh list `buf`" in f.message
    assert "proj.sim.engine.step" in f.message
    assert "reachable from sim.engine.step" in f.message


def test_sl802_repeated_attribute_chain_in_hot_loop(tmp_path):
    result = _run(tmp_path, {
        "sim/engine.py": (
            "class Kernel:\n"
            "    def run(self, items):\n"
            "        for it in items:\n"
            "            self.out.push(it)\n"
            "            self.out.push(it + 1)\n"
        ),
    }, _perf_cfg("sim.engine.Kernel.run"))
    sl802 = _findings(result, "SL802")
    assert len(sl802) == 1
    assert "`self.out.push` is resolved 2x per iteration" in sl802[0].message
    assert "hoist it into a local before the loop" in sl802[0].message


def test_sl803_exception_control_flow_in_hot_loop(tmp_path):
    result = _run(tmp_path, {
        "sim/engine.py": (
            "def drain(queue, counts):\n"
            "    for item in queue:\n"
            "        try:\n"
            "            counts[item] += 1\n"
            "        except KeyError:\n"
            "            counts[item] = 1\n"
        ),
    }, _perf_cfg("sim.engine.drain"))
    sl803 = _findings(result, "SL803")
    assert len(sl803) == 1
    assert "try/except KeyError" in sl803[0].message
    assert "lookup or guard" in sl803[0].message


def test_sl804_list_membership_in_hot_loop(tmp_path):
    result = _run(tmp_path, {
        "sim/engine.py": (
            "def dedup(xs):\n"
            "    seen = []\n"
            "    out = []\n"
            "    for x in xs:\n"
            "        if x in seen:\n"
            "            continue\n"
            "        seen.append(x)\n"
            "        out.append(x)\n"
            "    return out\n"
        ),
    }, _perf_cfg("sim.engine.dedup"))
    sl804 = _findings(result, "SL804")
    assert len(sl804) == 1
    assert "membership test against list `seen`" in sl804[0].message
    assert "use a set or dict" in sl804[0].message


def test_cold_code_with_same_patterns_is_silent(tmp_path):
    """The same four anti-patterns outside the hot set produce nothing."""
    result = _run(tmp_path, {
        "sim/engine.py": (
            "def step(events):\n"
            "    return list(events)\n"
        ),
        "sim/setup.py": (
            "def build(rows, sink):\n"
            "    seen = []\n"
            "    for r in rows:\n"
            "        buf = []\n"
            "        sink.out.push(r)\n"
            "        sink.out.push(buf)\n"
            "        try:\n"
            "            seen[0] += 1\n"
            "        except IndexError:\n"
            "            pass\n"
            "        if r in seen:\n"
            "            continue\n"
        ),
    }, _perf_cfg("sim.engine.step"))
    assert _findings(result, "SL8") == []


def test_hot_set_follows_calls_transitively(tmp_path):
    """A helper only *called from* the entrypoint is still hot."""
    result = _run(tmp_path, {
        "sim/engine.py": (
            "from proj.sim.helpers import flush\n\n\n"
            "def step(events, sink):\n"
            "    flush(events, sink)\n"
        ),
        "sim/helpers.py": (
            "def flush(events, sink):\n"
            "    for e in events:\n"
            "        scratch = {}\n"
            "        sink(e, scratch)\n"
        ),
    }, _perf_cfg("sim.engine.step"))
    sl801 = _findings(result, "SL801")
    assert len(sl801) == 1
    assert "proj.sim.helpers.flush" in sl801[0].message
    assert "reachable from sim.engine.step" in sl801[0].message


def test_no_hot_entrypoints_disables_sl8xx(tmp_path):
    result = _run(tmp_path, {
        "sim/engine.py": (
            "def step(events):\n"
            "    for e in events:\n"
            "        buf = []\n"
            "        buf.append(e)\n"
        ),
    }, _perf_cfg())
    assert _findings(result, "SL8") == []


# -- SL9xx: architecture layering --------------------------------------


def _layer_cfg(layers, restricted=None):
    return LintConfig(model_packages=frozenset(), layers=layers,
                      restricted_imports=restricted or {},
                      hot_entrypoints=())


def test_sl901_upward_import(tmp_path):
    result = _run(tmp_path, {
        "util/helpers.py": (
            "from proj.sim.engine import step\n\n\n"
            "def wrapped():\n"
            "    return step()\n"
        ),
        "sim/engine.py": "def step():\n    return 0\n",
    }, _layer_cfg((("util",), ("sim",))))
    sl901 = _findings(result, "SL901")
    assert len(sl901) == 1
    f = sl901[0]
    assert f.severity is Severity.ERROR
    assert f.file == "util/helpers.py"
    assert "upward import: 'util' (layer 0) imports 'sim' (layer 1)" \
        in f.message
    # The legal direction produces nothing.
    assert _findings(result, "SL9") == sl901


def test_sl901_restricted_import(tmp_path):
    cfg = _layer_cfg((("util",), ("sim",), ("api",)),
                     restricted={"util": frozenset({"sim"})})
    result = _run(tmp_path, {
        "util/helpers.py": "def f():\n    return 0\n",
        "sim/engine.py": "from proj.util.helpers import f\n",
        "api/surface.py": "from proj.util.helpers import f\n",
    }, cfg)
    sl901 = _findings(result, "SL901")
    assert len(sl901) == 1
    assert sl901[0].file == "api/surface.py"
    assert "'api' imports restricted package 'util'" in sl901[0].message


def test_sl902_private_module_import(tmp_path):
    result = _run(tmp_path, {
        "util/_secret.py": "def f():\n    return 0\n",
        "util/facade.py": "from proj.util._secret import f\n",
        "sim/engine.py": "from proj.util._secret import f\n",
    }, _layer_cfg((("util",), ("sim",))))
    sl902 = _findings(result, "SL902")
    # Same-package access to the private module is fine; cross-package
    # access is the violation.
    assert len(sl902) == 1
    assert sl902[0].file == "sim/engine.py"
    assert "private to package 'util'" in sl902[0].message


def test_sl903_import_cycle(tmp_path):
    result = _run(tmp_path, {
        "sim/alpha.py": (
            "from proj.sim.beta import g\n\n\n"
            "def f():\n    return g()\n"
        ),
        "sim/beta.py": (
            "from proj.sim.alpha import f\n\n\n"
            "def g():\n    return f()\n"
        ),
    }, _layer_cfg((("sim",),)))
    sl903 = _findings(result, "SL903")
    assert len(sl903) == 1
    assert "module-level import cycle" in sl903[0].message
    assert "proj.sim.alpha" in sl903[0].message
    assert "proj.sim.beta" in sl903[0].message


def test_sl903_function_scope_import_breaks_cycle(tmp_path):
    result = _run(tmp_path, {
        "sim/alpha.py": (
            "from proj.sim.beta import g\n\n\n"
            "def f():\n    return g()\n"
        ),
        "sim/beta.py": (
            "def g():\n"
            "    from proj.sim.alpha import f\n"
            "    return f\n"
        ),
    }, _layer_cfg((("sim",),)))
    assert _findings(result, "SL903") == []


def test_sl904_dead_export(tmp_path):
    result = _run(tmp_path, {
        "util/__init__.py": (
            "from proj.util.impl import dead_name, used_name\n\n"
            "__all__ = [\"dead_name\", \"used_name\"]\n"
        ),
        "util/impl.py": (
            "def used_name():\n    return 1\n\n\n"
            "def dead_name():\n    return 2\n"
        ),
        "sim/app.py": (
            "from proj.util import used_name\n\n\n"
            "def run():\n    return used_name()\n"
        ),
    }, _layer_cfg((("util",), ("sim",))))
    sl904 = _findings(result, "SL904")
    assert len(sl904) == 1
    f = sl904[0]
    assert f.severity is Severity.WARNING
    assert "`dead_name` is exported from proj.util" in f.message


def test_sl904_reference_corpus_counts_as_use(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "api.md").write_text("Call `dead_name()` to do the thing.\n",
                                 encoding="utf-8")
    result = _run(tmp_path, {
        "util/__init__.py": (
            "from proj.util.impl import dead_name\n\n"
            "__all__ = [\"dead_name\"]\n"
        ),
        "util/impl.py": "def dead_name():\n    return 2\n",
        "sim/app.py": "def run():\n    return 0\n",
    }, _layer_cfg((("util",), ("sim",))), reference_roots=[docs])
    assert _findings(result, "SL904") == []


def test_empty_layer_dag_disables_sl9xx(tmp_path):
    result = _run(tmp_path, {
        "util/helpers.py": "from proj.sim.engine import step\n",
        "sim/engine.py": "def step():\n    return 0\n",
    }, _layer_cfg(()))
    assert _findings(result, "SL9") == []


def test_packages_absent_from_dag_are_unconstrained(tmp_path):
    result = _run(tmp_path, {
        "extras/helpers.py": "from proj.sim.engine import step\n",
        "sim/engine.py": "def step():\n    return 0\n",
    }, _layer_cfg((("sim",),)))
    assert _findings(result, "SL901") == []


# -- configuration validation (SL001, exit 2) --------------------------


def _clean_tree(tmp_path):
    root = tmp_path / "clean"
    root.mkdir()
    (root / "ok.py").write_text("def f(x):\n    return x\n", encoding="utf-8")
    return root


def _lint_with(tmp_path, cfg):
    sink = io.StringIO()
    code = run_lint([_clean_tree(tmp_path)], no_baseline=True, config=cfg,
                    out=lambda s: sink.write(s + "\n"))
    return code, sink.getvalue()


def test_config_duplicate_package_across_layers(tmp_path):
    cfg = LintConfig(layers=(("sim",), ("sim", "net")),
                     restricted_imports={}, hot_entrypoints=())
    assert "more than one layer" in cfg.validate()[0]
    code, out = _lint_with(tmp_path, cfg)
    assert code == 2
    assert "SL001" in out
    assert "invalid lint config" in out
    assert "declares package 'sim' in more than one layer" in out


def test_config_restricted_target_not_in_dag(tmp_path):
    cfg = LintConfig(layers=(("sim",),),
                     restricted_imports={"ghost": frozenset({"sim"})},
                     hot_entrypoints=())
    code, out = _lint_with(tmp_path, cfg)
    assert code == 2
    assert "restricted_imports names unknown package 'ghost'" in out


def test_config_restricted_importer_not_in_dag(tmp_path):
    cfg = LintConfig(layers=(("sim",),),
                     restricted_imports={"sim": frozenset({"ghost"})},
                     hot_entrypoints=())
    code, out = _lint_with(tmp_path, cfg)
    assert code == 2
    assert "allows unknown package 'ghost' to import 'sim'" in out


def test_config_hot_entrypoint_not_dotted(tmp_path):
    cfg = LintConfig(layers=(("sim",),), restricted_imports={},
                     hot_entrypoints=("step",))
    code, out = _lint_with(tmp_path, cfg)
    assert code == 2
    assert "must be a dotted path" in out


def test_config_hot_entrypoint_unknown_package(tmp_path):
    cfg = LintConfig(layers=(("sim",),), restricted_imports={},
                     hot_entrypoints=("ghost.engine.step",))
    code, out = _lint_with(tmp_path, cfg)
    assert code == 2
    assert "hot entrypoint 'ghost.engine.step' names unknown package" in out


def test_default_config_validates_clean():
    assert LintConfig().validate() == []
