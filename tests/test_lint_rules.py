"""Per-rule fixtures for the simulation-invariant linter (repro.lint)."""

import textwrap

import pytest

from repro.lint import DEFAULT_CONFIG, LintEngine, Severity


def lint(source, rel="net/fixture.py", config=None):
    engine = LintEngine(config=config or DEFAULT_CONFIG)
    return engine.lint_source(textwrap.dedent(source), rel=rel)


def rules_hit(source, rel="net/fixture.py", config=None):
    return {f.rule for f in lint(source, rel=rel, config=config)}


class TestSL101WallClock:
    def test_time_time_flagged_in_model_code(self):
        findings = lint("""\
            import time

            def stamp():
                return time.time()
            """)
        assert [f.rule for f in findings] == ["SL101"]
        assert findings[0].line == 4
        assert findings[0].severity is Severity.ERROR

    def test_datetime_now_flagged(self):
        assert "SL101" in rules_hit("""\
            from datetime import datetime
            t = datetime.now()
            """)

    def test_monotonic_and_perf_counter_flagged(self):
        assert "SL101" in rules_hit("import time\nx = time.monotonic()\n")
        assert "SL101" in rules_hit("import time\nx = time.perf_counter()\n")

    def test_not_flagged_outside_model_packages(self):
        assert "SL101" not in rules_hit(
            "import time\nx = time.time()\n", rel="analysis/fixture.py")

    def test_simulated_time_ok(self):
        assert lint("def f(sim):\n    return sim.now\n") == []


class TestSL102StdlibRandom:
    def test_import_flagged(self):
        assert "SL102" in rules_hit("import random\n")

    def test_from_import_flagged(self):
        assert "SL102" in rules_hit("from random import choice\n")

    def test_call_through_module_flagged(self):
        assert "SL102" in rules_hit("x = random.random()\n")

    def test_injected_generator_ok(self):
        assert "SL102" not in rules_hit("def f(rng):\n    return rng.random()\n")


class TestSL103AdHocRng:
    def test_default_rng_flagged_tree_wide(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert "SL103" in rules_hit(src, rel="net/fixture.py")
        assert "SL103" in rules_hit(src, rel="analysis/fixture.py")

    def test_bare_default_rng_flagged(self):
        assert "SL103" in rules_hit(
            "from numpy.random import default_rng\nrng = default_rng(3)\n")

    def test_legacy_global_rng_flagged(self):
        assert "SL103" in rules_hit("import numpy as np\nnp.random.seed(0)\n")
        assert "SL103" in rules_hit(
            "import numpy as np\nr = np.random.RandomState(0)\n")

    def test_whitelisted_entrypoint_ok(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert "SL103" not in rules_hit(src, rel="sim/rng.py")

    def test_registry_stream_ok(self):
        assert "SL103" not in rules_hit(
            "def f(registry):\n    return registry.stream('jitter')\n")


class TestSL104SetIteration:
    def test_set_literal_iteration_flagged(self):
        assert "SL104" in rules_hit(
            "for name in {'a', 'b'}:\n    print(name)\n")

    def test_set_union_iteration_flagged(self):
        assert "SL104" in rules_hit(
            "def f(a, b):\n    for x in set(a) | set(b):\n        yield x\n")

    def test_comprehension_over_set_flagged(self):
        assert "SL104" in rules_hit("out = [x for x in {1, 2, 3}]\n")

    def test_sorted_set_ok(self):
        assert "SL104" not in rules_hit(
            "def f(a, b):\n    for x in sorted(set(a) | set(b)):\n        yield x\n")

    def test_list_iteration_ok(self):
        assert "SL104" not in rules_hit("for x in [1, 2]:\n    print(x)\n")


class TestSL201MagicSizes:
    def test_power_expression_flagged(self):
        findings = lint("CHUNK_LEN = 10**6\n")
        assert [f.rule for f in findings] == ["SL201"]
        assert "units.MB" in findings[0].message

    def test_mib_power_flagged(self):
        assert "SL201" in rules_hit("x = 8 * 2**20\n")

    def test_size_named_default_flagged(self):
        assert "SL201" in rules_hit(
            "def probe(probe_bytes=1_000_000):\n    return probe_bytes\n")

    def test_size_keyword_flagged(self):
        assert "SL201" in rules_hit("run(chunk_bytes=4_000_000)\n")

    def test_byte_scaling_division_flagged(self):
        assert "SL201" in rules_hit(
            "def render(r):\n    return f'{r.part_bytes / 1e6:.0f} MB'\n")

    def test_named_constant_ok(self):
        assert "SL201" not in rules_hit(
            "from repro import units\nSIZE_BYTES = 4 * units.MB\n")

    def test_unrelated_literal_ok(self):
        assert "SL201" not in rules_hit("max_events = 1_000_000\n")
        assert "SL201" not in rules_hit("horizon = 1e6\n")

    def test_units_module_itself_exempt(self):
        assert "SL201" not in rules_hit("MB: int = 10**6\n", rel="units.py")

    def test_not_applied_outside_model_code(self):
        assert "SL201" not in rules_hit("x = 10**6\n", rel="analysis/fixture.py")


class TestSL202BitsPerByte:
    def test_magic_eight_flagged(self):
        assert "SL202" in rules_hit("def f(nbytes, dt):\n    return nbytes * 8 / dt\n")

    def test_division_by_eight_flagged(self):
        assert "SL202" in rules_hit("def f(rate_bps):\n    return rate_bps / 8\n")

    def test_units_spelled_conversion_ok(self):
        assert "SL202" not in rules_hit(
            "from repro import units\n"
            "def f(nbytes, dt):\n    return nbytes * units.BITS_PER_BYTE / dt\n")

    def test_eight_mib_chunk_ok(self):
        # 8 * units.MiB is a chunk size, not a bit/byte conversion.
        assert "SL202" not in rules_hit(
            "from repro import units\nCHUNK = 8 * units.MiB\n")


class TestSL203MixedConventions:
    def test_mbps_from_bps_flagged_as_warning(self):
        findings = lint("def f(link_bps):\n    speed_mbps = link_bps * 2\n    return speed_mbps\n")
        assert [f.rule for f in findings] == ["SL203"]
        assert findings[0].severity is Severity.WARNING

    def test_ms_from_seconds_flagged(self):
        assert "SL203" in rules_hit("def f(delay_s):\n    base_ms = delay_s * 1000\n    return base_ms\n")

    def test_explicit_conversion_ok(self):
        assert "SL203" not in rules_hit(
            "from repro import units\n"
            "def f(link_bps):\n    return units.bps_to_mbps(link_bps)\n")

    def test_same_unit_ok(self):
        assert "SL203" not in rules_hit(
            "def f(a_bps, b_bps):\n    total_bps = a_bps + b_bps\n    return total_bps\n")

    def test_rate_and_time_families_do_not_clash(self):
        assert "SL203" not in rules_hit(
            "def f(nbytes, rate_bps):\n    duration_s = nbytes * 8 / rate_bps\n    return duration_s\n"
        ) - {"SL202"}  # the *8 is SL202's business, not SL203's


class TestSL301MutableDefaults:
    def test_list_default_flagged(self):
        findings = lint("def f(acc=[]):\n    return acc\n", rel="analysis/x.py")
        assert [f.rule for f in findings] == ["SL301"]

    def test_dict_set_and_call_defaults_flagged(self):
        assert "SL301" in rules_hit("def f(m={}):\n    return m\n")
        assert "SL301" in rules_hit("def f(s=set()):\n    return s\n")
        assert "SL301" in rules_hit("def f(d=dict()):\n    return d\n")

    def test_kwonly_default_flagged(self):
        assert "SL301" in rules_hit("def f(*, acc=[]):\n    return acc\n")

    def test_none_default_ok(self):
        assert "SL301" not in rules_hit("def f(acc=None):\n    return acc or []\n")

    def test_tuple_default_ok(self):
        assert "SL301" not in rules_hit("def f(sizes=(1, 2)):\n    return sizes\n")


class TestSL302BareExcept:
    def test_bare_except_flagged(self):
        assert "SL302" in rules_hit(
            "try:\n    x = 1\nexcept:\n    pass\n", rel="measure/x.py")

    def test_typed_except_ok(self):
        assert "SL302" not in rules_hit(
            "try:\n    x = 1\nexcept ValueError:\n    pass\n")


class TestSL303FloatTimeEquality:
    def test_time_suffix_equality_flagged(self):
        assert "SL303" in rules_hit(
            "def f(t_end_s, duration_s):\n    return duration_s == t_end_s\n")

    def test_now_equality_flagged(self):
        assert "SL303" in rules_hit("def f(sim):\n    return sim.now == 3.0\n")

    def test_inequality_comparison_ok(self):
        assert "SL303" not in rules_hit(
            "def f(now, deadline_s):\n    return now >= deadline_s\n")

    def test_non_time_equality_ok(self):
        assert "SL303" not in rules_hit("def f(count):\n    return count == 3\n")

    def test_none_check_ok(self):
        assert "SL303" not in rules_hit(
            "def f(start_s):\n    return start_s == None\n")


class TestRuleCatalogue:
    def test_all_families_shipped(self):
        from repro.lint import all_rules

        ids = [r.rule_id for r in all_rules()]
        assert len(ids) == len(set(ids))
        assert {"SL101", "SL102", "SL103", "SL104"} <= set(ids)
        assert {"SL201", "SL202", "SL203"} <= set(ids)
        assert {"SL301", "SL302", "SL303"} <= set(ids)

    def test_every_rule_has_summary_and_severity(self):
        from repro.lint import all_rules

        for r in all_rules():
            assert r.summary
            assert r.severity in (Severity.ERROR, Severity.WARNING)
            assert r.scope in ("model", "tree")
