"""The tier-1 lint gate: the real ``src/repro`` tree must be clean.

"Clean" means no error-severity findings beyond what the checked-in
``lint_baseline.json`` grandfathers.  Run just this gate with
``python -m pytest -m lint``.
"""

import json
from pathlib import Path

import pytest

from repro.lint import Baseline, LintEngine, Severity, run_lint
from repro.lint.runner import BASELINE_FILENAME, default_scan_root

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE_PATH = REPO_ROOT / BASELINE_FILENAME


def test_baseline_file_is_checked_in_and_loadable():
    assert BASELINE_PATH.is_file(), "lint_baseline.json must live at the repo root"
    baseline = Baseline.load(BASELINE_PATH)
    for entry in baseline.entries:
        assert entry.count >= 1
        assert not entry.justification.startswith("TODO"), (
            f"baseline entry {entry.file} [{entry.rule}] needs a real "
            f"justification, not a TODO marker")


def test_repro_tree_is_clean_modulo_baseline(capsys):
    code = run_lint([default_scan_root()], baseline_path=BASELINE_PATH)
    out = capsys.readouterr().out
    assert code == 0, f"repro lint found new violations:\n{out}"


def test_repro_tree_has_no_stale_baseline_entries():
    report = LintEngine().lint_paths([default_scan_root()])
    _, _, stale = Baseline.load(BASELINE_PATH).filter(report.findings)
    assert stale == [], (
        "baseline entries whose violations are fixed should be removed: "
        + ", ".join(f"{e.file} [{e.rule}]" for e in stale))


def test_repro_tree_error_findings_are_fully_grandfathered():
    """Every error in the tree must be explicitly forgiven by the baseline
    — the gate only ever lets recorded, justified debt through."""
    report = LintEngine().lint_paths([default_scan_root()])
    kept, _, _ = Baseline.load(BASELINE_PATH).filter(report.findings)
    new_errors = [f for f in kept if f.severity is Severity.ERROR]
    assert new_errors == [], "\n".join(f.render() for f in new_errors)


def test_json_gate_output_parses(capsys):
    code = run_lint([default_scan_root()], fmt="json",
                    baseline_path=BASELINE_PATH)
    payload = json.loads(capsys.readouterr().out)
    assert code in (0, 1)
    assert payload["files_scanned"] > 50  # the whole package, not a subset
    for finding in payload["findings"]:
        assert set(finding) == {"file", "line", "rule", "severity", "message"}
