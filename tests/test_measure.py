"""Measurement methodology: stats, harness protocol, result tables."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MeasurementError
from repro.measure import (
    ExperimentProtocol,
    ExperimentRunner,
    ResultTable,
    Summary,
    error_bars_overlap,
    relative_gain_pct,
    summarize,
)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)  # sample std, ddof=1
        assert (s.n, s.minimum, s.maximum) == (3, 1.0, 3.0)

    def test_single_sample_zero_std(self):
        s = summarize([5.0])
        assert s.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(MeasurementError):
            summarize([])

    def test_error_bar_ends(self):
        s = summarize([10.0, 14.0])
        assert s.low == pytest.approx(s.mean - s.std)
        assert s.high == pytest.approx(s.mean + s.std)

    @given(st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=2, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_mean_within_bounds(self, xs):
        s = summarize(xs)
        assert s.minimum - 1e-9 <= s.mean <= s.maximum + 1e-9
        assert s.std >= 0


class TestRelativeGain:
    def test_paper_table2_value(self):
        # Table II, 10 MB: direct 9.46 s, via UAlberta 6.47 s -> -31.61%
        assert relative_gain_pct(9.46, 6.47) == pytest.approx(-31.61, abs=0.15)

    def test_slowdown_positive(self):
        # Table II, 10 MB via UMich: 15.41 vs 9.46 -> +62.9%
        assert relative_gain_pct(9.46, 15.41) == pytest.approx(62.9, abs=0.2)

    def test_zero_baseline_rejected(self):
        with pytest.raises(MeasurementError):
            relative_gain_pct(0, 1)


class TestOverlap:
    def test_paper_table4_example(self):
        """Dropbox 100 MB from Purdue: direct overlaps both detours."""
        direct = Summary(177.89, 36.03, 5, 0, 0)
        via_ua = Summary(237.78, 56.10, 5, 0, 0)
        via_um = Summary(226.43, 50.48, 5, 0, 0)
        assert error_bars_overlap(direct, via_ua)
        assert error_bars_overlap(direct, via_um)

    def test_disjoint_bars(self):
        a = Summary(10.0, 1.0, 5, 0, 0)
        b = Summary(20.0, 2.0, 5, 0, 0)
        assert not error_bars_overlap(a, b)
        assert not error_bars_overlap(b, a)  # symmetric

    def test_touching_bars_overlap(self):
        a = Summary(10.0, 5.0, 5, 0, 0)
        b = Summary(20.0, 5.0, 5, 0, 0)
        assert error_bars_overlap(a, b)


class TestProtocol:
    def test_paper_defaults(self):
        p = ExperimentProtocol()
        assert p.total_runs == 7 and p.discard_runs == 2 and p.kept_runs == 5

    def test_invalid_protocols(self):
        with pytest.raises(MeasurementError):
            ExperimentProtocol(total_runs=0)
        with pytest.raises(MeasurementError):
            ExperimentProtocol(total_runs=3, discard_runs=3)
        with pytest.raises(MeasurementError):
            ExperimentProtocol(inter_run_gap_s=-1)


class _FakeWorld:
    """Minimal world for harness tests: a sim plus a seed-derived bias."""

    def __init__(self, seed):
        from repro.sim import Simulator

        self.sim = Simulator()
        self.seed = seed


class TestRunner:
    def test_runs_sequenced_and_warmups_dropped(self):
        protocol = ExperimentProtocol(total_runs=7, discard_runs=2, inter_run_gap_s=1.0)
        runner = ExperimentRunner(_FakeWorld, protocol, master_seed=1)
        run_log = []

        def run_factory(world, run_index):
            run_log.append((run_index, world.sim.now))
            # first runs are slow (token warm-up effect)
            duration = 10.0 if run_index < 2 else 2.0
            yield duration
            return duration

        m = runner.measure("demo", run_factory)
        assert len(m.all_durations_s) == 7
        assert m.kept.n == 5
        assert m.mean_s == pytest.approx(2.0)   # warmups excluded
        assert m.kept.std == 0.0
        # runs are sequential in one world's time
        indices = [i for i, _ in run_log]
        assert indices == list(range(7))
        times = [t for _, t in run_log]
        assert times == sorted(times)

    def test_experiment_seed_derivation_stable(self):
        seeds = []

        def run_factory(world, run_index):
            seeds.append(world.seed)
            yield 1.0
            return 1.0

        runner = ExperimentRunner(_FakeWorld, ExperimentProtocol(3, 1, 0.0), master_seed=9)
        runner.measure("labelled", run_factory)
        runner.measure("labelled", run_factory)
        runner.measure("other", run_factory)
        # 3 runs per measurement -> seeds[0:3], seeds[3:6], seeds[6:9]
        assert seeds[0] == seeds[3]      # same label -> same world seed
        assert seeds[0] != seeds[6]      # different label -> different seed

    def test_object_with_total_s_accepted(self):
        class R:
            total_s = 3.5

        def run_factory(world, run_index):
            yield 3.5
            return R()

        runner = ExperimentRunner(_FakeWorld, ExperimentProtocol(2, 0, 0.0))
        m = runner.measure("obj", run_factory)
        assert m.mean_s == pytest.approx(3.5)
        assert all(isinstance(r, R) for r in m.results)

    def test_run_error_propagates(self):
        def run_factory(world, run_index):
            yield 1.0
            raise RuntimeError("broken run")

        runner = ExperimentRunner(_FakeWorld, ExperimentProtocol(2, 0, 0.0))
        with pytest.raises(RuntimeError, match="broken run"):
            runner.measure("bad", run_factory)

    def test_horizon_detects_stuck_experiment(self):
        def run_factory(world, run_index):
            yield 1e9  # never completes within horizon
            return 1.0

        runner = ExperimentRunner(_FakeWorld, ExperimentProtocol(2, 0, 0.0))
        with pytest.raises(MeasurementError, match="did not finish"):
            runner.measure("stuck", run_factory, horizon_s=100.0)


class TestResultTable:
    def _table(self):
        t = ResultTable("UBC to Google Drive")
        t.add_row(10, {"direct": summarize([9.4, 9.5]), "via ualberta": summarize([6.4, 6.5]),
                       "via umich": summarize([15.4, 15.4])})
        t.add_row(100, {"direct": summarize([86.9, 87.0]), "via ualberta": summarize([35.7, 35.9]),
                        "via umich": summarize([132.1, 132.2])})
        return t

    def test_routes_baseline_first(self):
        assert self._table().routes[0] == "direct"

    def test_fastest_and_ranking(self):
        t = self._table()
        assert t.rows[0].fastest_route() == "via ualberta"
        assert t.rows[0].ranking() == ["via ualberta", "direct", "via umich"]
        assert t.overall_fastest() == "via ualberta"
        assert t.fastest_counts() == {"direct": 0, "via ualberta": 2, "via umich": 0}

    def test_gain_pct(self):
        row = self._table().rows[0]
        assert row.gain_pct("via ualberta") == pytest.approx(-31.7, abs=0.5)

    def test_render_contains_gains_and_sizes(self):
        text = self._table().render()
        assert "File size" in text
        assert "10" in text and "100" in text
        assert "[-" in text and "[+" in text  # both gain and loss markers

    def test_render_with_std(self):
        text = self._table().render(show_std=True)
        assert "±" in text

    def test_route_set_mismatch_rejected(self):
        t = self._table()
        with pytest.raises(MeasurementError):
            t.add_row(20, {"direct": summarize([1.0])})

    def test_empty_table(self):
        t = ResultTable("empty")
        assert "(empty)" in t.render()
        with pytest.raises(MeasurementError):
            t.overall_fastest()
