"""Monitor edge cases: timeouts, dead routes, parameter validation."""

import pytest

from repro.core import BottleneckMonitor, DirectRoute, DetourRoute, MonitoredUpload
from repro.errors import SelectionError
from repro.testbed import build_case_study
from repro.transfer import FileSpec
from repro.units import mb


def drive(world, gen, horizon=1e7):
    proc = world.sim.process(gen)
    world.sim.run_until_triggered(proc.done, horizon=horizon)
    if proc.error:
        raise proc.error
    return proc.result


class TestMonitorValidation:
    def test_upload_parameter_validation(self):
        world = build_case_study(seed=0, cross_traffic=False)
        monitor = BottleneckMonitor(world, "ubc", "gdrive", ())
        with pytest.raises(SelectionError):
            MonitoredUpload(monitor, segment_timeout_s=0)
        with pytest.raises(SelectionError):
            MonitoredUpload(monitor, max_retries_per_segment=0)

    def test_monitor_alpha_validation(self):
        world = build_case_study(seed=0, cross_traffic=False)
        with pytest.raises(SelectionError):
            BottleneckMonitor(world, "ubc", "gdrive", (), alpha=0)


class TestDeadRoutes:
    def test_probe_of_dead_route_records_zero(self):
        world = build_case_study(seed=0, cross_traffic=False)
        monitor = BottleneckMonitor(world, "ubc", "gdrive", ("ualberta",))
        world.fail_link("canarie-vncv--canarie-edmn")
        observed = drive(world, monitor.probe(DetourRoute("ualberta")))
        assert observed == 0.0
        assert monitor.estimate_bps(DetourRoute("ualberta")) == 0.0

    def test_best_route_skips_dead(self):
        world = build_case_study(seed=0, cross_traffic=False)
        monitor = BottleneckMonitor(world, "ubc", "gdrive", ("ualberta",))
        drive(world, monitor.probe_all())
        monitor.mark_dead(DetourRoute("ualberta"))
        assert monitor.best_route().is_direct

    def test_all_dead_raises(self):
        world = build_case_study(seed=0, cross_traffic=False)
        monitor = BottleneckMonitor(world, "ubc", "gdrive", ("ualberta",))
        drive(world, monitor.probe_all())
        monitor.mark_dead(DirectRoute())
        monitor.mark_dead(DetourRoute("ualberta"))
        with pytest.raises(SelectionError, match="dead"):
            monitor.best_route()

    def test_segment_gives_up_after_max_retries(self):
        """Every route dead mid-transfer: the upload fails loudly, not
        silently, and within bounded simulated time."""
        world = build_case_study(seed=0, cross_traffic=False)
        monitor = BottleneckMonitor(world, "ubc", "gdrive", ("ualberta",),
                                    probe_bytes=int(mb(1)), alpha=1.0)
        upload = MonitoredUpload(monitor, segment_bytes=int(mb(10)),
                                 segment_timeout_s=30.0,
                                 max_retries_per_segment=2)

        def chaos():
            yield 5.0
            # sever UBC from everything: its campus uplink dies
            world.fail_link("ubc-pl--ubc-campus")

        world.sim.process(chaos())
        proc = world.sim.process(upload.run(FileSpec("doomed.bin", int(mb(50)))))
        world.sim.run_until_triggered(proc.done, horizon=2e4)
        assert proc.finished
        assert isinstance(proc.error, SelectionError)


class TestIntraAsFailureDoesNotTouchBgp:
    def test_bgp_table_stable_under_igp_failure(self):
        """Failing an intra-AS link changes IGP paths, not AS paths."""
        from repro.testbed.build import AS_NUMBERS

        world = build_case_study(seed=0, cross_traffic=False)
        before = world.router.bgp.best_route(AS_NUMBERS["ubc"], AS_NUMBERS["google"])
        world.fail_link("canarie-vncv--canarie-edmn")  # intra-CANARIE
        after = world.router.bgp.best_route(AS_NUMBERS["ubc"], AS_NUMBERS["google"])
        assert before.path == after.path

    def test_inter_as_failure_withdraws_routes(self):
        from repro.errors import RoutingError
        from repro.testbed.build import AS_NUMBERS

        world = build_case_study(seed=0, cross_traffic=False)
        world.fail_link("canarie-vncv--i2-seattle")
        # CANARIE's peering session with Internet2 is gone: no route to UMich
        with pytest.raises(RoutingError):
            world.router.bgp.best_route(AS_NUMBERS["ubc"], AS_NUMBERS["umich"])
