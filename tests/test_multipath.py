"""Multipath uploads: proportional splitting over direct + detours."""

import pytest

from repro.core import DetourRoute, DirectRoute, MultipathUpload, PlanExecutor, TransferPlan
from repro.errors import SelectionError
from repro.testbed import build_case_study
from repro.transfer import FileSpec
from repro.units import mb


def drive(world, gen):
    proc = world.sim.process(gen)
    world.sim.run_until_triggered(proc.done, horizon=1e7)
    if proc.error:
        raise proc.error
    return proc.result


def single_route_time(client, provider, route, size=int(mb(100))):
    world = build_case_study(seed=0, cross_traffic=False)
    plan = TransferPlan(client, provider, FileSpec("s.bin", size), route)
    return PlanExecutor(world).run(plan).total_s


class TestMultipath:
    def test_ubc_gdrive_beats_best_single_path(self):
        """Direct (policed, ~9.6 Mbit/s) + detour (~47 Mbit/s effective on
        leg 2) diverge at CANARIE, so their rates add."""
        world = build_case_study(seed=0, cross_traffic=False)
        mp = MultipathUpload(world)
        result = drive(world, mp.run(
            "ubc", "gdrive", FileSpec("m.bin", int(mb(100))),
            routes=[DirectRoute(), DetourRoute("ualberta")]))
        best_single = min(
            single_route_time("ubc", "gdrive", DirectRoute()),
            single_route_time("ubc", "gdrive", DetourRoute("ualberta")),
        )
        assert result.total_s < best_single
        assert result.total_bytes == mb(100)
        assert sum(p.part_bytes for p in result.parts) == mb(100)

    def test_split_proportional_to_rates(self):
        world = build_case_study(seed=0, cross_traffic=False)
        mp = MultipathUpload(world)
        result = drive(world, mp.run(
            "ubc", "gdrive", FileSpec("m.bin", int(mb(100))),
            routes=[DirectRoute(), DetourRoute("ualberta")]))
        by_route = {p.route_descr: p for p in result.parts}
        # the detour carries the bulk (its probed rate is ~3-4x direct's)
        assert by_route["via ualberta"].part_bytes > 1.8 * by_route["direct"].part_bytes

    def test_parts_finish_roughly_together(self):
        world = build_case_study(seed=0, cross_traffic=False)
        mp = MultipathUpload(world)
        result = drive(world, mp.run(
            "ubc", "gdrive", FileSpec("m.bin", int(mb(100))),
            routes=[DirectRoute(), DetourRoute("ualberta")]))
        durations = [p.duration_s for p in result.parts]
        # the equal-finish model can't see the shared UBC access link the
        # concurrent parts contend on, so the spread is loose but bounded
        assert max(durations) / min(durations) < 2.0

    def test_shared_bottleneck_gains_nothing(self):
        """UCLA: both routes share the 1.35 Mbit/s last mile; splitting
        cannot beat the single path by a meaningful margin."""
        world = build_case_study(seed=0, cross_traffic=False)
        mp = MultipathUpload(world)
        result = drive(world, mp.run(
            "ucla", "gdrive", FileSpec("m.bin", int(mb(30))),
            routes=[DirectRoute(), DetourRoute("ualberta")]))
        single = single_route_time("ucla", "gdrive", DirectRoute(), int(mb(30)))
        assert result.total_s > 0.9 * single

    def test_default_routes_enumerate_dtns(self):
        world = build_case_study(seed=0, cross_traffic=False)
        mp = MultipathUpload(world)
        result = drive(world, mp.run("ubc", "gdrive", FileSpec("m.bin", int(mb(60)))))
        descrs = {p.route_descr for p in result.parts}
        assert "direct" in descrs or "via ualberta" in descrs
        assert len(result.parts) >= 2

    def test_sliver_routes_dropped(self):
        """For a tiny file the equal-finish split gives the high-intercept
        detour almost nothing; it is dropped and the upload goes single-path."""
        world = build_case_study(seed=0, cross_traffic=False)
        mp = MultipathUpload(world)
        result = drive(world, mp.run(
            "ubc", "gdrive", FileSpec("m.bin", int(mb(1.5))),
            routes=[DirectRoute(), DetourRoute("ualberta")]))
        assert len(result.parts) == 1

    def test_requires_two_routes(self):
        world = build_case_study(seed=0, cross_traffic=False)
        mp = MultipathUpload(world)
        with pytest.raises(SelectionError):
            drive(world, mp.run("ubc", "gdrive", FileSpec("m.bin", int(mb(10))),
                                routes=[DirectRoute()]))

    def test_invalid_probe_sizes(self):
        world = build_case_study(seed=0, cross_traffic=False)
        with pytest.raises(SelectionError):
            MultipathUpload(world, probe_sizes=(1000,))
        with pytest.raises(SelectionError):
            MultipathUpload(world, probe_sizes=(0, 1000))

    def test_result_accessors(self):
        world = build_case_study(seed=0, cross_traffic=False)
        mp = MultipathUpload(world)
        result = drive(world, mp.run(
            "ubc", "gdrive", FileSpec("m.bin", int(mb(50))),
            routes=[DirectRoute(), DetourRoute("ualberta")]))
        assert sum(result.split_fractions) == pytest.approx(1.0)
        assert result.aggregate_throughput_bps > 0
        assert "m.bin" in result.describe()
