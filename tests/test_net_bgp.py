"""AS graph relationships and valley-free BGP route computation."""

import pytest

from repro.errors import RoutingError, TopologyError
from repro.net import ASGraph, AutonomousSystem, BgpRouteComputer, Relationship, RouteType


def build(graph_spec):
    """graph_spec: (as_numbers, customer_edges, peer_edges)."""
    numbers, customers, peers = graph_spec
    g = ASGraph()
    for n in numbers:
        g.add_as(AutonomousSystem(n, f"as{n}"))
    for provider, customer in customers:
        g.add_customer(provider, customer)
    for a, b in peers:
        g.add_peering(a, b)
    return g


class TestASGraph:
    def test_relationship_symmetry(self):
        g = build(([1, 2], [(1, 2)], []))
        assert g.relationship(1, 2) is Relationship.CUSTOMER
        assert g.relationship(2, 1) is Relationship.PROVIDER

    def test_peering_symmetry(self):
        g = build(([1, 2], [], [(1, 2)]))
        assert g.relationship(1, 2) is Relationship.PEER
        assert g.relationship(2, 1) is Relationship.PEER

    def test_duplicate_relationship_rejected(self):
        g = build(([1, 2], [(1, 2)], []))
        with pytest.raises(TopologyError):
            g.add_peering(1, 2)

    def test_self_relationship_rejected(self):
        g = build(([1], [], []))
        with pytest.raises(TopologyError):
            g.add_customer(1, 1)

    def test_unknown_as_rejected(self):
        g = build(([1], [], []))
        with pytest.raises(TopologyError):
            g.add_customer(1, 99)

    def test_neighbor_queries(self):
        g = build(([1, 2, 3, 4], [(1, 2), (3, 1)], [(1, 4)]))
        assert g.customers(1) == [2]
        assert g.providers(1) == [3]
        assert g.peers(1) == [4]

    def test_customer_cone(self):
        g = build(([1, 2, 3, 4], [(1, 2), (2, 3)], [(1, 4)]))
        assert g.customer_cone(1) == {1, 2, 3}

    def test_validate_rejects_provider_cycle(self):
        g = build(([1, 2, 3], [(1, 2), (2, 3), (3, 1)], []))
        with pytest.raises(TopologyError, match="cycle"):
            g.validate()

    def test_validate_accepts_dag(self):
        g = build(([1, 2, 3], [(1, 2), (1, 3)], [(2, 3)]))
        g.validate()

    def test_duplicate_as_rejected(self):
        g = ASGraph()
        g.add_as(AutonomousSystem(1, "a"))
        with pytest.raises(TopologyError):
            g.add_as(AutonomousSystem(1, "b"))
        with pytest.raises(TopologyError):
            g.add_as(AutonomousSystem(2, "a"))


class TestBgpBasics:
    def test_direct_customer_route(self):
        # 1 is provider of 2; from 1 to 2 is a "down" route, from 2 to 1 "up"
        g = build(([1, 2], [(1, 2)], []))
        bgp = BgpRouteComputer(g)
        r12 = bgp.best_route(1, 2)
        assert r12.path == (1, 2) and r12.route_type is RouteType.CUSTOMER
        r21 = bgp.best_route(2, 1)
        assert r21.path == (2, 1) and r21.route_type is RouteType.PROVIDER

    def test_origin_route(self):
        g = build(([1], [], []))
        r = BgpRouteComputer(g).best_route(1, 1)
        assert r.route_type is RouteType.ORIGIN and r.length == 0

    def test_peer_route(self):
        g = build(([1, 2], [], [(1, 2)]))
        r = BgpRouteComputer(g).best_route(1, 2)
        assert r.path == (1, 2) and r.route_type is RouteType.PEER

    def test_valley_free_blocks_peer_peer(self):
        # 1 -peer- 2 -peer- 3: no transit across two peerings
        g = build(([1, 2, 3], [], [(1, 2), (2, 3)]))
        bgp = BgpRouteComputer(g)
        with pytest.raises(RoutingError):
            bgp.best_route(1, 3)

    def test_valley_free_blocks_customer_valley(self):
        # 1 and 3 are both providers of 2; 2 must not give transit between them
        g = build(([1, 2, 3], [(1, 2), (3, 2)], []))
        bgp = BgpRouteComputer(g)
        with pytest.raises(RoutingError):
            bgp.best_route(1, 3)

    def test_up_peer_down_is_allowed(self):
        # classic valley-free shape: 10 -up-> 1 -peer-> 2 -down-> 20
        g = build(([1, 2, 10, 20], [(1, 10), (2, 20)], [(1, 2)]))
        r = BgpRouteComputer(g).best_route(10, 20)
        assert r.path == (10, 1, 2, 20)

    def test_unknown_destination(self):
        g = build(([1], [], []))
        with pytest.raises(RoutingError):
            BgpRouteComputer(g).best_route(1, 42)


class TestBgpPreferences:
    def test_customer_route_preferred_over_shorter_peer(self):
        # dest 30; AS 1 can reach via customer chain (1->2->30, length 2)
        # or directly via a peering with 30 (length 1). Customer wins.
        g = build(([1, 2, 30], [(1, 2), (2, 30)], [(1, 30)]))
        r = BgpRouteComputer(g).best_route(1, 30)
        assert r.route_type is RouteType.CUSTOMER
        assert r.path == (1, 2, 30)

    def test_peer_preferred_over_provider(self):
        # dest 30 reachable from 1 via peer 2 (2's customer 30) or via
        # provider 3 (3's customer 30).
        g = build(([1, 2, 3, 30], [(2, 30), (3, 30), (3, 1)], [(1, 2)]))
        r = BgpRouteComputer(g).best_route(1, 30)
        assert r.route_type is RouteType.PEER
        assert r.path == (1, 2, 30)

    def test_shorter_path_wins_within_class(self):
        # two provider routes: via 2 (one extra hop through 40) vs via 3 (direct)
        g = build(([1, 2, 3, 30, 40], [(2, 1), (3, 1), (2, 40), (40, 30), (3, 30)], []))
        r = BgpRouteComputer(g).best_route(1, 30)
        assert r.path == (1, 3, 30)

    def test_lowest_next_as_tiebreak(self):
        # identical type+length via 2 or 3 -> choose next AS 2
        g = build(([1, 2, 3, 30], [(2, 1), (3, 1), (2, 30), (3, 30)], []))
        r = BgpRouteComputer(g).best_route(1, 30)
        assert r.next_as == 2

    def test_provider_chain_routes_down(self):
        # deep customer chain: 1 -> 2 -> 3; dest at top's peer
        g = build(([1, 2, 3, 9], [(1, 2), (2, 3)], [(1, 9)]))
        r = BgpRouteComputer(g).best_route(3, 9)
        assert r.path == (3, 2, 1, 9)
        assert r.route_type is RouteType.PROVIDER


class TestExportFilters:
    def test_filter_blocks_announcement_to_one_customer(self):
        # provider 1 peers with 9; customers 2 and 3.  Filter: 1 only
        # announces 9's routes to 2 (the "commercial peering subscriber").
        g = build(([1, 2, 3, 9], [(1, 2), (1, 3)], [(1, 9)]))
        g.set_export_filter(1, 3, lambda dest: dest != 9)
        bgp = BgpRouteComputer(g)
        assert bgp.best_route(2, 9).path == (2, 1, 9)
        with pytest.raises(RoutingError):
            bgp.best_route(3, 9)

    def test_filtered_as_falls_back_to_other_provider(self):
        # 3 also buys from commodity transit 7 which peers with 9
        g = build(([1, 2, 3, 7, 9], [(1, 2), (1, 3), (7, 3)], [(1, 9), (7, 9)]))
        g.set_export_filter(1, 3, lambda dest: dest != 9)
        r = BgpRouteComputer(g).best_route(3, 9)
        assert r.path == (3, 7, 9)

    def test_filter_on_upward_announcement(self):
        # 2 refuses to announce its customer 5 upward to provider 1
        g = build(([1, 2, 5], [(1, 2), (2, 5)], []))
        g.set_export_filter(2, 1, lambda dest: dest != 5)
        bgp = BgpRouteComputer(g)
        with pytest.raises(RoutingError):
            bgp.best_route(1, 5)

    def test_filter_requires_neighbors(self):
        g = build(([1, 2, 3], [(1, 2)], []))
        with pytest.raises(TopologyError):
            g.set_export_filter(1, 3, lambda d: True)


class TestTableAndCache:
    def test_table_covers_reachable_ases(self):
        g = build(([1, 2, 3], [(1, 2), (1, 3)], []))
        table = BgpRouteComputer(g).table_for(2)
        assert set(table) == {1, 2, 3}
        assert table[3].path == (3, 1, 2)

    def test_cache_and_invalidate(self):
        g = build(([1, 2], [(1, 2)], []))
        bgp = BgpRouteComputer(g)
        t1 = bgp.table_for(2)
        assert bgp.table_for(2) is t1
        bgp.invalidate()
        assert bgp.table_for(2) is not t1

    def test_dump_readable(self):
        g = build(([1, 2], [(1, 2)], []))
        out = BgpRouteComputer(g).dump(2)
        assert "AS1" in out and "customer" in out
