"""Cross-traffic sources: load levels, reproducibility, variance."""

import numpy as np
import pytest

from repro.net import NetworkEngine
from repro.net.crosstraffic import (
    CrossTrafficConfig,
    OnOffSource,
    PoissonSource,
    start_sources,
)
from repro.net.topology import Link, Node, NodeKind, Topology
from repro.sim import Simulator
from repro.sim.rng import RngRegistry
from repro.units import mb, mbps, ms


def small_topo():
    topo = Topology()
    topo.add_node(Node("a", NodeKind.HOST, 1, "10.0.0.1"))
    topo.add_node(Node("b", NodeKind.HOST, 1, "10.0.0.2"))
    topo.add_link(Link("a", "b", capacity_bps=mbps(10), delay_s=ms(5)))
    return topo


def measured_transfer_time(seed, utilization, nbytes=mb(20)):
    topo = small_topo()
    sim = Simulator()
    engine = NetworkEngine(sim, topo)
    direction = topo.link("a--b").direction_from("a")
    rng = RngRegistry(seed)
    src = PoissonSource(
        [direction], reference_capacity_bps=mbps(10), mean_utilization=utilization,
        rng=rng.stream("bg"), mean_flow_bytes=2e6,
    )
    src.run(sim, engine)
    t = engine.start_transfer([direction], nbytes)
    sim.run(until=1.0)  # let background warm up? keep transfer from t=0
    sim.run(until=10_000)
    return t.done.value.duration_s


class TestPoissonSource:
    def test_zero_utilization_means_no_interference(self):
        t = measured_transfer_time(seed=1, utilization=0.0)
        assert t == pytest.approx(16.0)  # 20 MB at 10 Mbps

    def test_load_slows_transfers(self):
        clean = measured_transfer_time(seed=1, utilization=0.0)
        loaded = measured_transfer_time(seed=1, utilization=0.5)
        assert loaded > clean * 1.2

    def test_heavier_load_slower(self):
        samples_med = [measured_transfer_time(seed=s, utilization=0.3) for s in range(4)]
        samples_hi = [measured_transfer_time(seed=s, utilization=0.7) for s in range(4)]
        assert np.mean(samples_hi) > np.mean(samples_med)

    def test_reproducible_per_seed(self):
        assert measured_transfer_time(2, 0.5) == measured_transfer_time(2, 0.5)

    def test_seeds_vary_results(self):
        vals = {round(measured_transfer_time(s, 0.5), 6) for s in range(5)}
        assert len(vals) > 1

    def test_arrival_rate_derivation(self):
        src = PoissonSource(
            [("L",)], reference_capacity_bps=mbps(10), mean_utilization=0.5,
            rng=np.random.default_rng(0), mean_flow_bytes=2e6,
        )
        # offered 5 Mbps / (2 MB * 8 bits) = 0.3125 flows/s
        assert src.arrival_rate_hz == pytest.approx(0.3125)

    def test_invalid_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            PoissonSource([("L",)], 1e6, 1.5, rng)
        with pytest.raises(ValueError):
            PoissonSource([("L",)], 1e6, 0.5, rng, mean_flow_bytes=0)


class TestOnOffSource:
    def test_duty_cycle(self):
        src = OnOffSource([("L",)], rate_bps=mbps(5), mean_on_s=30, mean_off_s=10,
                          rng=np.random.default_rng(0))
        assert src.duty_cycle == pytest.approx(0.75)

    def test_elephant_creates_high_variance(self):
        def run(seed):
            topo = small_topo()
            sim = Simulator()
            engine = NetworkEngine(sim, topo)
            d = topo.link("a--b").direction_from("a")
            OnOffSource([d], rate_bps=mbps(8), mean_on_s=20, mean_off_s=20,
                        rng=np.random.default_rng(seed)).run(sim, engine)
            t = engine.start_transfer([d], mb(20))
            sim.run(until=10_000)
            return t.done.value.duration_s

        times = [run(s) for s in range(8)]
        assert np.std(times) / np.mean(times) > 0.10  # bursty -> high CV
        assert min(times) >= 16.0 - 1e-6  # never faster than clean link

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            OnOffSource([("L",)], rate_bps=0, mean_on_s=1, mean_off_s=1,
                        rng=np.random.default_rng(0))


class TestStartSources:
    def test_configs_attach_to_links(self):
        topo = small_topo()
        sim = Simulator()
        engine = NetworkEngine(sim, topo)
        reg = RngRegistry(3)
        cfgs = [
            CrossTrafficConfig("a--b", "a", utilization=0.4),
            CrossTrafficConfig("a--b", "b", utilization=0.0,
                               elephant_rate_bps=mbps(3)),
        ]
        procs = start_sources(cfgs, sim, engine, reg.stream)
        assert len(procs) == 2
        sim.run(until=200)
        assert engine.tracer is not None  # engine alive; sources ran

    def test_noop_config_spawns_nothing(self):
        topo = small_topo()
        sim = Simulator()
        engine = NetworkEngine(sim, topo)
        procs = start_sources(
            [CrossTrafficConfig("a--b", "a", utilization=0.0)],
            sim, engine, RngRegistry(0).stream,
        )
        assert procs == []
