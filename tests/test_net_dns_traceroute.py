"""DNS resolution (incl. geo-DNS) and simulated traceroute."""

import numpy as np
import pytest

from repro.errors import RoutingError
from repro.net import DnsResolver, format_traceroute, traceroute
from repro.net.topology import Link, Node, NodeKind, Topology
from repro.units import mbps, ms


class TestDns:
    def test_hostnames_registered_automatically(self, mini_world):
        topo, _, _, _ = mini_world
        dns = DnsResolver(topo)
        assert dns.resolve("storage.cloud.example") == "server"

    def test_static_record_and_address(self, mini_world):
        topo, _, _, _ = mini_world
        dns = DnsResolver(topo)
        dns.add_record("api.cloud.example", "server")
        assert dns.resolve_address("api.cloud.example") == "10.3.0.10"

    def test_nxdomain(self, mini_world):
        topo, _, _, _ = mini_world
        with pytest.raises(RoutingError, match="NXDOMAIN"):
            DnsResolver(topo).resolve("nope.example")

    def test_reverse_lookup(self, mini_world):
        topo, _, _, _ = mini_world
        dns = DnsResolver(topo)
        assert dns.reverse("10.2.0.1") == "r1.research.net"

    def test_geo_record_picks_nearest(self):
        topo = Topology()
        topo.add_node(Node("client", NodeKind.HOST, 1, "10.0.0.1", site_name="ubc"))
        topo.add_node(Node("pop-west", NodeKind.HOST, 2, "10.0.1.1", site_name="onedrive-dc"))
        topo.add_node(Node("pop-east", NodeKind.HOST, 2, "10.0.2.1", site_name="dropbox-dc"))
        dns = DnsResolver(topo)
        dns.add_geo_record("api.example", ["pop-east", "pop-west"])
        # UBC (Vancouver) is far closer to Seattle than Ashburn
        assert dns.resolve("api.example", client_node="client") == "pop-west"

    def test_geo_record_without_client_uses_first(self):
        topo = Topology()
        topo.add_node(Node("pop-a", NodeKind.HOST, 2, "10.0.1.1", site_name="gdrive-dc"))
        topo.add_node(Node("pop-b", NodeKind.HOST, 2, "10.0.2.1", site_name="dropbox-dc"))
        dns = DnsResolver(topo)
        dns.add_geo_record("api.example", ["pop-a", "pop-b"])
        assert dns.resolve("api.example") == "pop-a"

    def test_geo_record_requires_sites(self):
        topo = Topology()
        topo.add_node(Node("x", NodeKind.HOST, 1, "10.0.0.1"))  # no site
        dns = DnsResolver(topo)
        with pytest.raises(RoutingError, match="no site"):
            dns.add_geo_record("svc", ["x"])

    def test_geo_record_requires_candidates(self, mini_world):
        topo, _, _, _ = mini_world
        with pytest.raises(RoutingError):
            DnsResolver(topo).add_geo_record("svc", [])

    def test_hostnames_listing(self, mini_world):
        topo, _, _, _ = mini_world
        names = DnsResolver(topo).hostnames()
        assert "r1.research.net" in names and "storage.cloud.example" in names


class TestTraceroute:
    def test_hops_follow_forwarding_path(self, mini_world):
        _, _, _, router = mini_world
        hops = traceroute(router, "hostA", "server", rng=np.random.default_rng(1))
        # path: hostA gwA r1 ix cloud-edge server -> 5 hops after source
        assert len(hops) == 5
        assert hops[0].hostname == "gw.campus-a.edu"
        assert hops[-1].hostname == "storage.cloud.example"

    def test_middlebox_shows_stars(self, mini_world):
        _, _, _, router = mini_world
        hops = traceroute(router, "hostA", "server", rng=np.random.default_rng(1))
        ix_hop = hops[2]
        assert not ix_hop.responded
        assert ix_hop.render().endswith("* * *")

    def test_rtts_monotone_with_depth_on_clean_path(self, mini_world):
        _, _, _, router = mini_world
        hops = traceroute(router, "hostB", "server", rng=np.random.default_rng(2), jitter_ms=0.0)
        rtts = [h.rtts_ms[0] for h in hops if h.responded]
        assert rtts == sorted(rtts)

    def test_three_probes_per_responding_hop(self, mini_world):
        _, _, _, router = mini_world
        hops = traceroute(router, "hostB", "server", rng=np.random.default_rng(3))
        assert all(len(h.rtts_ms) == 3 for h in hops if h.responded)

    def test_format_matches_paper_style(self, mini_world):
        _, _, _, router = mini_world
        hops = traceroute(router, "hostA", "server", rng=np.random.default_rng(1))
        text = format_traceroute(hops, "storage.cloud.example", "10.3.0.10")
        lines = text.splitlines()
        assert lines[0] == "traceroute to storage.cloud.example (10.3.0.10)"
        assert any("* * *" in ln for ln in lines)
        assert lines[-1].endswith("storage.cloud.example (10.3.0.10)")

    def test_format_with_rtts(self, mini_world):
        _, _, _, router = mini_world
        hops = traceroute(router, "hostB", "server", rng=np.random.default_rng(1))
        text = format_traceroute(hops, "storage.cloud.example", "10.3.0.10", show_rtts=True)
        assert "ms" in text

    def test_deterministic_with_seeded_rng(self, mini_world):
        _, _, _, router = mini_world
        h1 = traceroute(router, "hostB", "server", rng=np.random.default_rng(7))
        h2 = traceroute(router, "hostB", "server", rng=np.random.default_rng(7))
        assert h1 == h2

    def test_pbr_artifact_visible_in_traceroute(self, mini_world):
        """The diagnostic workflow of the paper: two sources, same dest,
        different middle hops reveal the policy detour."""
        _, _, _, router = mini_world
        via_a = [h.hostname for h in traceroute(router, "hostA", "server",
                                                rng=np.random.default_rng(0))]
        via_b = [h.hostname for h in traceroute(router, "hostB", "server",
                                                rng=np.random.default_rng(0))]
        assert None in via_a  # the exchange middlebox hides itself
        assert "edge.cloud.example" in via_a and "edge.cloud.example" in via_b
        assert via_a != via_b
