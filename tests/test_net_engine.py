"""Flow engine: fluid transfers, sharing dynamics, cancellation."""

import pytest

from repro.errors import TransferError
from repro.net import NetworkEngine
from repro.net.topology import Link, Node, NodeKind, Topology
from repro.sim import Simulator, Tracer
from repro.units import mb, mbps, ms


def line_topology():
    """host1 -- mid -- host2 with a 10 Mbps middle link."""
    topo = Topology()
    topo.add_node(Node("h1", NodeKind.HOST, 1, "10.0.0.1"))
    topo.add_node(Node("mid", NodeKind.ROUTER, 1, "10.0.0.2"))
    topo.add_node(Node("h2", NodeKind.HOST, 1, "10.0.0.3"))
    topo.add_link(Link("h1", "mid", capacity_bps=mbps(100), delay_s=ms(1)))
    topo.add_link(Link("mid", "h2", capacity_bps=mbps(10), delay_s=ms(1)))
    return topo


def dirs(topo, *hops):
    return topo.path_directions(list(hops))


class TestSingleFlow:
    def test_transfer_time_matches_bottleneck(self):
        sim = Simulator()
        topo = line_topology()
        engine = NetworkEngine(sim, topo)
        t = engine.start_transfer(dirs(topo, "h1", "mid", "h2"), mb(10))
        sim.run()
        result = t.done.value
        # 10 MB at 10 Mbps = 8 s
        assert result.duration_s == pytest.approx(8.0)
        assert result.mean_rate_bps == pytest.approx(mbps(10))

    def test_ceiling_limits_rate(self):
        sim = Simulator()
        topo = line_topology()
        engine = NetworkEngine(sim, topo)
        t = engine.start_transfer(dirs(topo, "h1", "mid", "h2"), mb(10), ceiling_bps=mbps(2))
        sim.run()
        assert t.done.value.duration_s == pytest.approx(40.0)

    def test_startup_deficit_extends_duration(self):
        sim = Simulator()
        topo = line_topology()
        engine = NetworkEngine(sim, topo)
        t = engine.start_transfer(
            dirs(topo, "h1", "mid", "h2"), mb(10), startup_deficit_bytes=mb(1)
        )
        sim.run()
        assert t.done.value.duration_s == pytest.approx(8.8)

    def test_invalid_requests(self):
        sim = Simulator()
        topo = line_topology()
        engine = NetworkEngine(sim, topo)
        with pytest.raises(TransferError):
            engine.start_transfer(dirs(topo, "h1", "mid"), 0)
        with pytest.raises(TransferError):
            engine.start_transfer([], mb(1))
        with pytest.raises(TransferError):
            engine.start_transfer(dirs(topo, "h1", "mid"), mb(1), startup_deficit_bytes=-1)

    def test_result_fields(self):
        sim = Simulator()
        topo = line_topology()
        engine = NetworkEngine(sim, topo)
        sim.schedule(5.0, lambda: engine.start_transfer(
            dirs(topo, "h1", "mid", "h2"), mb(1), label="probe"))
        sim.run()
        # find via trace? use active_transfers before completion instead:
        # simpler: re-run with direct handle
        sim2 = Simulator()
        engine2 = NetworkEngine(sim2, topo)
        t = engine2.start_transfer(dirs(topo, "h1", "mid", "h2"), mb(1), label="probe")
        sim2.run()
        r = t.done.value
        assert r.label == "probe"
        assert r.start_time == 0.0
        assert r.nbytes == mb(1)


class TestSharing:
    def test_two_flows_halve_then_speed_up(self):
        """Flow B arrives midway; flow A slows to half, then recovers."""
        sim = Simulator()
        topo = line_topology()
        engine = NetworkEngine(sim, topo)
        path = dirs(topo, "h1", "mid", "h2")
        a = engine.start_transfer(path, mb(10))  # alone: 8 s
        results = {}

        def start_b():
            b = engine.start_transfer(path, mb(5))
            b.done._subscribe(sim, lambda v, e: results.__setitem__("b", v))

        sim.schedule(4.0, start_b)
        sim.run()
        # A: 4 s alone (5 MB done), then shares 5 Mbps. B (5 MB) and A
        # (5 MB left) finish together 8 s later at t=12.
        assert a.done.value.duration_s == pytest.approx(12.0)
        assert results["b"].end_time == pytest.approx(12.0)

    def test_disjoint_flows_do_not_interact(self):
        sim = Simulator()
        topo = line_topology()
        engine = NetworkEngine(sim, topo)
        t1 = engine.start_transfer(dirs(topo, "h1", "mid"), mb(10))  # 100 Mbps link
        t2 = engine.start_transfer(dirs(topo, "mid", "h2"), mb(10))  # 10 Mbps link
        sim.run()
        assert t1.done.value.duration_s == pytest.approx(0.8)
        assert t2.done.value.duration_s == pytest.approx(8.0)

    def test_opposite_directions_are_independent(self):
        sim = Simulator()
        topo = line_topology()
        engine = NetworkEngine(sim, topo)
        fwd = engine.start_transfer(dirs(topo, "mid", "h2"), mb(10))
        rev = engine.start_transfer(dirs(topo, "h2", "mid"), mb(10))
        sim.run()
        assert fwd.done.value.duration_s == pytest.approx(8.0)
        assert rev.done.value.duration_s == pytest.approx(8.0)

    def test_estimate_rate_reflects_current_contention(self):
        sim = Simulator()
        topo = line_topology()
        engine = NetworkEngine(sim, topo)
        path = dirs(topo, "h1", "mid", "h2")
        assert engine.estimate_rate(path) == pytest.approx(mbps(10))
        engine.start_transfer(path, mb(100))
        assert engine.estimate_rate(path) == pytest.approx(mbps(5))

    def test_policer_respected_via_capacity(self):
        topo = line_topology()
        topo.add_node(Node("h3", NodeKind.HOST, 1, "10.0.0.4"))
        topo.add_link(Link("mid", "h3", capacity_bps=mbps(100), delay_s=ms(1),
                           policer_bps={"mid": mbps(4)}))
        sim = Simulator()
        engine = NetworkEngine(sim, topo)
        t = engine.start_transfer(dirs(topo, "h1", "mid", "h3"), mb(10))
        sim.run()
        assert t.done.value.duration_s == pytest.approx(20.0)

    def test_capacity_scale_jitter(self):
        sim = Simulator()
        topo = line_topology()
        engine = NetworkEngine(sim, topo, capacity_scale={"mid--h2": 0.5})
        t = engine.start_transfer(dirs(topo, "h1", "mid", "h2"), mb(10))
        sim.run()
        assert t.done.value.duration_s == pytest.approx(16.0)

    def test_utilization_reporting(self):
        sim = Simulator()
        topo = line_topology()
        engine = NetworkEngine(sim, topo)
        path = dirs(topo, "h1", "mid", "h2")
        engine.start_transfer(path, mb(100))
        assert engine.utilization_of(path[1]) == pytest.approx(1.0)
        assert engine.utilization_of(path[0]) == pytest.approx(0.1)


class TestCancellation:
    def test_cancel_fails_waiter_and_frees_capacity(self):
        sim = Simulator()
        topo = line_topology()
        engine = NetworkEngine(sim, topo)
        path = dirs(topo, "h1", "mid", "h2")
        victim = engine.start_transfer(path, mb(100))
        other = engine.start_transfer(path, mb(5))

        def canceller():
            yield 1.0
            engine.cancel(victim)

        sim.process(canceller())
        sim.run()
        assert isinstance(victim.done._failed, TransferError)
        # other: 1 s at 5 Mbps (0.625 MB), then 4.375 MB at 10 Mbps -> 4.5 s
        assert other.done.value.duration_s == pytest.approx(1.0 + 3.5)

    def test_cancel_finished_transfer_is_noop(self):
        sim = Simulator()
        topo = line_topology()
        engine = NetworkEngine(sim, topo)
        t = engine.start_transfer(dirs(topo, "h1", "mid", "h2"), mb(1))
        sim.run()
        engine.cancel(t)  # no exception
        assert t.done.value.nbytes == mb(1)

    def test_active_count_tracks_lifecycle(self):
        sim = Simulator()
        topo = line_topology()
        engine = NetworkEngine(sim, topo)
        assert engine.active_count == 0
        engine.start_transfer(dirs(topo, "h1", "mid", "h2"), mb(1))
        assert engine.active_count == 1
        sim.run()
        assert engine.active_count == 0


class TestTracing:
    def test_flow_events_traced(self):
        sim = Simulator()
        topo = line_topology()
        tracer = Tracer()
        engine = NetworkEngine(sim, topo, tracer=tracer)
        engine.start_transfer(dirs(topo, "h1", "mid", "h2"), mb(1), label="x")
        sim.run()
        kinds = [e.kind for e in tracer.filter(component="net.engine")]
        assert kinds == ["flow_start", "flow_end"]


class TestProcessIntegration:
    def test_process_waits_for_transfer(self):
        sim = Simulator()
        topo = line_topology()
        engine = NetworkEngine(sim, topo)

        def uploader():
            result = yield engine.start_transfer(
                dirs(topo, "h1", "mid", "h2"), mb(10)).done
            return result.duration_s

        p = sim.process(uploader())
        sim.run()
        assert p.result == pytest.approx(8.0)

    def test_sequential_transfers_in_one_process(self):
        """Store-and-forward arithmetic: t_total = t1 + t2 (paper Sec. I)."""
        sim = Simulator()
        topo = line_topology()
        engine = NetworkEngine(sim, topo)

        def relay():
            r1 = yield engine.start_transfer(dirs(topo, "h1", "mid"), mb(10)).done
            r2 = yield engine.start_transfer(dirs(topo, "mid", "h2"), mb(10)).done
            return (r1.duration_s, r2.duration_s, sim.now)

        p = sim.process(relay())
        sim.run()
        t1, t2, total = p.result
        assert total == pytest.approx(t1 + t2)
