"""Max-min fair allocation: examples and property-based invariants."""

from math import inf

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import FlowSpec, max_min_allocation


class TestExamples:
    def test_single_flow_gets_full_link(self):
        alloc = max_min_allocation([FlowSpec("f", ("L",))], {"L": 10e6})
        assert alloc["f"] == pytest.approx(10e6)

    def test_two_flows_share_equally(self):
        alloc = max_min_allocation(
            [FlowSpec("a", ("L",)), FlowSpec("b", ("L",))], {"L": 10e6}
        )
        assert alloc["a"] == pytest.approx(5e6)
        assert alloc["b"] == pytest.approx(5e6)

    def test_ceiling_frees_capacity_for_others(self):
        alloc = max_min_allocation(
            [FlowSpec("slow", ("L",), ceiling_bps=2e6), FlowSpec("fast", ("L",))],
            {"L": 10e6},
        )
        assert alloc["slow"] == pytest.approx(2e6)
        assert alloc["fast"] == pytest.approx(8e6)

    def test_classic_triangle(self):
        # textbook: f1 on L1, f2 on L1+L2, f3 on L2; L1=10, L2=4
        alloc = max_min_allocation(
            [
                FlowSpec("f1", ("L1",)),
                FlowSpec("f2", ("L1", "L2")),
                FlowSpec("f3", ("L2",)),
            ],
            {"L1": 10.0, "L2": 4.0},
        )
        assert alloc["f2"] == pytest.approx(2.0)  # bottlenecked on L2
        assert alloc["f3"] == pytest.approx(2.0)
        assert alloc["f1"] == pytest.approx(8.0)  # takes L1's leftover

    def test_flow_with_only_ceiling(self):
        alloc = max_min_allocation([FlowSpec("f", (), ceiling_bps=3e6)], {})
        assert alloc["f"] == pytest.approx(3e6)

    def test_empty(self):
        assert max_min_allocation([], {}) == {}

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            max_min_allocation([FlowSpec("f", ("L",)), FlowSpec("f", ("L",))], {"L": 1.0})

    def test_unbounded_flow_rejected_at_construction(self):
        with pytest.raises(ValueError):
            FlowSpec("f", (), ceiling_bps=inf)

    def test_nonpositive_ceiling_rejected(self):
        with pytest.raises(ValueError):
            FlowSpec("f", ("L",), ceiling_bps=0)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            max_min_allocation([FlowSpec("f", ("L",))], {"L": 0.0})

    def test_missing_capacity_is_an_error(self):
        with pytest.raises(KeyError):
            max_min_allocation([FlowSpec("f", ("L",))], {})

    def test_bottleneck_fairness_with_asymmetric_paths(self):
        # a crosses both links, b only the fat one: a pinned by thin link
        alloc = max_min_allocation(
            [FlowSpec("a", ("thin", "fat")), FlowSpec("b", ("fat",))],
            {"thin": 1.0, "fat": 100.0},
        )
        assert alloc["a"] == pytest.approx(1.0)
        assert alloc["b"] == pytest.approx(99.0)


# -- property-based invariants -------------------------------------------------


@st.composite
def allocation_problems(draw):
    n_links = draw(st.integers(1, 6))
    capacities = {
        f"L{i}": draw(st.floats(min_value=0.5, max_value=100.0)) for i in range(n_links)
    }
    n_flows = draw(st.integers(1, 8))
    flows = []
    for j in range(n_flows):
        k = draw(st.integers(1, n_links))
        resources = tuple(
            sorted(draw(st.sets(st.sampled_from(sorted(capacities)), min_size=k, max_size=k)))
        )
        ceiling = draw(st.one_of(st.just(inf), st.floats(min_value=0.1, max_value=50.0)))
        flows.append(FlowSpec(f"f{j}", resources, ceiling))
    return flows, capacities


@settings(max_examples=200, deadline=None)
@given(allocation_problems())
def test_no_link_oversubscribed(problem):
    flows, capacities = problem
    alloc = max_min_allocation(flows, capacities)
    for link, cap in capacities.items():
        used = sum(alloc[f.flow_id] for f in flows if link in f.resources)
        assert used <= cap * (1 + 1e-6) + 1e-6


@settings(max_examples=200, deadline=None)
@given(allocation_problems())
def test_ceilings_respected_and_rates_nonnegative(problem):
    flows, capacities = problem
    alloc = max_min_allocation(flows, capacities)
    for f in flows:
        assert -1e-9 <= alloc[f.flow_id] <= f.ceiling_bps + 1e-6


@settings(max_examples=200, deadline=None)
@given(allocation_problems())
def test_every_flow_is_bottlenecked(problem):
    """Max-min condition: each flow is at its ceiling or crosses a
    saturated link on which no other flow gets a strictly larger rate."""
    flows, capacities = problem
    alloc = max_min_allocation(flows, capacities)
    tol = 1e-5
    for f in flows:
        rate = alloc[f.flow_id]
        if rate >= f.ceiling_bps - tol:
            continue
        ok = False
        for link in f.resources:
            used = sum(alloc[g.flow_id] for g in flows if link in g.resources)
            saturated = used >= capacities[link] * (1 - 1e-5) - tol
            if saturated:
                biggest = max(alloc[g.flow_id] for g in flows if link in g.resources)
                if rate >= biggest - max(tol, 1e-4 * biggest):
                    ok = True
                    break
        assert ok, f"flow {f.flow_id} rate {rate} not max-min bottlenecked"


@settings(max_examples=100, deadline=None)
@given(allocation_problems())
def test_work_conservation_on_shared_single_link(problem):
    """If all flows cross one common link and have no ceilings below the
    fair share, that link is fully used."""
    flows, capacities = problem
    link = sorted(capacities)[0]
    flows = [FlowSpec(f.flow_id, (link,), f.ceiling_bps) for f in flows]
    alloc = max_min_allocation(flows, capacities)
    used = sum(alloc.values())
    fair = capacities[link] / len(flows)
    if all(f.ceiling_bps >= fair for f in flows):
        assert used == pytest.approx(capacities[link], rel=1e-6)
