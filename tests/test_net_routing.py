"""End-to-end path resolution: BGP forwarding, PBR overrides, metrics."""

import pytest

from repro.errors import RoutingError
from repro.net import PbrRule, PolicyTable, Router
from repro.units import mbps


class TestResolution:
    def test_pbr_steers_hosta_via_exchange(self, mini_world):
        topo, asg, policy, router = mini_world
        path = router.resolve("hostA", "server")
        assert path.nodes == ("hostA", "gwA", "r1", "ix", "cloud-edge", "server")
        assert path.as_sequence == (100, 200, 400, 300)

    def test_default_bgp_path_for_hostb(self, mini_world):
        topo, asg, policy, router = mini_world
        path = router.resolve("hostB", "server")
        assert path.nodes == ("hostB", "gwB", "r2", "cloud-edge", "server")
        assert path.as_sequence == (500, 200, 300)

    def test_policed_bottleneck_reported(self, mini_world):
        _, _, _, router = mini_world
        via_ix = router.resolve("hostA", "server")
        assert via_ix.bottleneck_bps == pytest.approx(mbps(10))
        direct = router.resolve("hostB", "server")
        assert direct.bottleneck_bps == pytest.approx(mbps(50))

    def test_reverse_direction_not_policed(self, mini_world):
        # policer applies only to the ix->cloud-edge direction; the reverse
        # path (server->hostA) does not exist via ix anyway since PBR only
        # matches hostA-sourced traffic.
        _, _, _, router = mini_world
        back = router.resolve("server", "hostA")
        assert "ix" not in back.nodes
        assert back.bottleneck_bps == pytest.approx(mbps(50))

    def test_rtt_accumulates_link_delays(self, mini_world):
        topo, _, _, router = mini_world
        path = router.resolve("hostB", "server")
        one_way = topo.path_delay_s(list(path.nodes))
        assert path.rtt_s == pytest.approx(2 * (one_way + router.per_hop_latency_s * path.hop_count))

    def test_host_to_host_across_research_net(self, mini_world):
        _, _, _, router = mini_world
        path = router.resolve("hostA", "hostB")
        assert path.nodes == ("hostA", "gwA", "r1", "r2", "gwB", "hostB")

    def test_same_host_rejected(self, mini_world):
        _, _, _, router = mini_world
        with pytest.raises(RoutingError):
            router.resolve("hostA", "hostA")

    def test_cache_returns_same_object_until_invalidated(self, mini_world):
        _, _, _, router = mini_world
        p1 = router.resolve("hostA", "server")
        assert router.resolve("hostA", "server") is p1
        router.invalidate()
        p2 = router.resolve("hostA", "server")
        assert p2 is not p1 and p2.nodes == p1.nodes

    def test_describe(self, mini_world):
        _, _, _, router = mini_world
        assert "hostA -> gwA" in router.resolve("hostA", "server").describe()

    def test_path_directions_alignment(self, mini_world):
        topo, _, _, router = mini_world
        path = router.resolve("hostB", "server")
        dirs = router.path_directions(path)
        assert [d.src for d in dirs] == list(path.nodes[:-1])
        assert [d.dst for d in dirs] == list(path.nodes[1:])


class TestPbrEdgeCases:
    def test_pbr_ignored_for_other_destinations(self, mini_world):
        # hostA -> hostB matches the src prefix but not dest AS 300
        _, _, _, router = mini_world
        path = router.resolve("hostA", "hostB")
        assert "ix" not in path.nodes

    def test_pbr_rule_on_detached_link_rejected(self, mini_world):
        topo, asg, policy, router = mini_world
        policy.install(PbrRule(node="gwB", out_link="r1--ix", dest_asns=frozenset({300})))
        router.invalidate()
        with pytest.raises(RoutingError, match="not attached"):
            router.resolve("hostB", "server")

    def test_pbr_loop_detected(self, mini_world):
        topo, asg, policy, router = mini_world
        # rule that bounces traffic back toward the source: r1 -> gwA for
        # cloud-bound traffic from hostB? craft a loop: gwA->r1 (normal),
        # then rule at r1 sends it back out the gwA link.
        policy.install(PbrRule(node="r2", out_link="r1--r2",
                               src_prefixes=frozenset({"10.5.0.0/24"}),
                               dest_asns=frozenset({300})))
        policy.install(PbrRule(node="r1", out_link="r1--r2",
                               src_prefixes=frozenset({"10.5.0.0/24"}),
                               dest_asns=frozenset({300})))
        router.invalidate()
        with pytest.raises(RoutingError, match="loop"):
            router.resolve("hostB", "server")

    def test_pbr_matching_logic(self):
        rule = PbrRule(node="r", out_link="l",
                       src_prefixes=frozenset({"10.1.0.0/24"}),
                       dest_asns=frozenset({300}))
        assert rule.matches("10.1.0.99", 300)
        assert not rule.matches("10.2.0.1", 300)
        assert not rule.matches("10.1.0.99", 301)

    def test_pbr_wildcards(self):
        any_rule = PbrRule(node="r", out_link="l")
        assert any_rule.matches("1.2.3.4", 42)

    def test_policy_table_first_match_wins(self):
        table = PolicyTable()
        r1 = PbrRule(node="r", out_link="l1", dest_asns=frozenset({300}))
        r2 = PbrRule(node="r", out_link="l2")
        table.install(r1)
        table.install(r2)
        assert table.match("r", "1.1.1.1", 300) is r1
        assert table.match("r", "1.1.1.1", 999) is r2
        assert table.match("other", "1.1.1.1", 300) is None
        assert len(table) == 2

    def test_policy_rule_str(self):
        rule = PbrRule(node="r1", out_link="r1--ix",
                       src_prefixes=frozenset({"10.1.0.0/24"}),
                       dest_asns=frozenset({300}))
        s = str(rule)
        assert "r1" in s and "10.1.0.0/24" in s and "AS300" in s


class TestRoutingFailures:
    def test_unreachable_destination(self, mini_world):
        topo, asg, policy, router = mini_world
        # forbid research net from announcing cloud routes to campus-a
        asg.set_export_filter(200, 100, lambda dest: dest != 300)
        # also kill the PBR shortcut so BGP is consulted
        router2 = Router(topo, asg, PolicyTable())
        with pytest.raises(RoutingError):
            router2.resolve("hostA", "server")

    def test_bgp_adjacency_without_physical_link_is_ignored(self, mini_world):
        """An AS adjacency with no live inter-AS link carries no BGP
        session, so routing falls back to the physically-wired path."""
        topo, asg, policy, router = mini_world
        # campus-b "peers" cloud on paper, but no link exists
        asg.add_peering(500, 300)
        router2 = Router(topo, asg, PolicyTable())
        path = router2.resolve("hostB", "server")
        assert path.nodes == ("hostB", "gwB", "r2", "cloud-edge", "server")
