"""TCP throughput model and token-bucket policer."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.net import TcpModel, TcpPathParams, TokenBucket
from repro.net.tcp import mathis_ceiling_bps, slow_start_penalty_s


class TestMathis:
    def test_no_loss_no_ceiling(self):
        assert mathis_ceiling_bps(0.05, 0.0) == math.inf

    def test_known_value(self):
        # C * 1460B * 8 / (0.07s * sqrt(0.01)) = 1.2247*11680/0.007
        expected = math.sqrt(1.5) * 11680 / (0.07 * 0.1)
        assert mathis_ceiling_bps(0.07, 0.01) == pytest.approx(expected)

    def test_monotonic_in_loss(self):
        assert mathis_ceiling_bps(0.05, 0.001) > mathis_ceiling_bps(0.05, 0.01)

    def test_monotonic_in_rtt(self):
        assert mathis_ceiling_bps(0.02, 0.001) > mathis_ceiling_bps(0.2, 0.001)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            mathis_ceiling_bps(0, 0.01)
        with pytest.raises(ValueError):
            mathis_ceiling_bps(0.05, 1.0)

    @given(
        rtt=st.floats(min_value=1e-3, max_value=1.0),
        loss=st.floats(min_value=1e-6, max_value=0.5),
    )
    @settings(max_examples=100, deadline=None)
    def test_always_positive_finite(self, rtt, loss):
        v = mathis_ceiling_bps(rtt, loss)
        assert 0 < v < math.inf


class TestSlowStart:
    def test_zero_penalty_within_initial_window(self):
        # tiny target rate: IW covers it immediately
        assert slow_start_penalty_s(100e3, 0.05) == 0.0

    def test_penalty_grows_with_target_rate(self):
        p1 = slow_start_penalty_s(units.mbps(10), 0.05)
        p2 = slow_start_penalty_s(units.mbps(100), 0.05)
        assert p2 > p1 > 0

    def test_penalty_is_sub_second_for_case_study_paths(self):
        # 47 Mbps at 30 ms RTT (UAlberta -> Google Drive)
        p = slow_start_penalty_s(units.mbps(47), 0.030)
        assert 0 < p < 0.5

    def test_penalty_scales_with_rtt(self):
        assert slow_start_penalty_s(units.mbps(50), 0.2) > slow_start_penalty_s(units.mbps(50), 0.02)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            slow_start_penalty_s(0, 0.05)
        with pytest.raises(ValueError):
            slow_start_penalty_s(1e6, 0)

    @given(
        rate=st.floats(min_value=1e4, max_value=1e9),
        rtt=st.floats(min_value=1e-3, max_value=0.5),
    )
    @settings(max_examples=100, deadline=None)
    def test_penalty_nonnegative_and_bounded(self, rate, rtt):
        p = slow_start_penalty_s(rate, rtt)
        # deficit can't exceed the ramp duration itself (~32 doublings max)
        assert 0 <= p <= 64 * rtt


class TestTcpModel:
    def test_connect_time_plain_vs_tls(self):
        model = TcpModel()
        path = TcpPathParams(rtt_s=0.04, loss=0.0)
        assert model.connect_time_s(path) == pytest.approx(0.04)
        assert model.connect_time_s(path, tls=True) == pytest.approx(0.12)

    def test_rate_ceiling_delegates_to_mathis(self):
        model = TcpModel()
        path = TcpPathParams(rtt_s=0.05, loss=0.004)
        assert model.rate_ceiling_bps(path) == pytest.approx(mathis_ceiling_bps(0.05, 0.004))

    def test_request_response(self):
        model = TcpModel()
        path = TcpPathParams(rtt_s=0.03, loss=0.0)
        assert model.request_response_time_s(path, server_time_s=0.01) == pytest.approx(0.04)

    def test_startup_penalty_requires_finite_rate(self):
        model = TcpModel()
        with pytest.raises(ValueError):
            model.startup_penalty_s(TcpPathParams(0.03, 0.0), math.inf)


class TestTokenBucket:
    def test_burst_passes_immediately(self):
        tb = TokenBucket(rate_bps=8e6, burst_bytes=1e6)
        assert tb.consume(1e6, now=0.0) == 0.0

    def test_debt_delays_next_arrival(self):
        tb = TokenBucket(rate_bps=8e6, burst_bytes=1e6)  # 1 MB/s refill
        tb.consume(1e6, now=0.0)
        # bucket empty; 0.5 MB needs 0.5 s of tokens
        assert tb.consume(0.5e6, now=0.0) == pytest.approx(0.5)

    def test_refill_caps_at_burst(self):
        tb = TokenBucket(rate_bps=8e6, burst_bytes=1e6)
        tb.consume(1e6, now=0.0)
        assert tb.peek_delay(1e6, now=100.0) == 0.0  # fully refilled, not more

    def test_sustained_rate(self):
        tb = TokenBucket(rate_bps=10e6, burst_bytes=1e5)
        # send 10 MB as 100 bursts; total delay must enforce ~rate
        now, total_delay = 0.0, 0.0
        for _ in range(100):
            d = tb.consume(1e5, now)
            total_delay += d
            now += d  # sender waits out the shaping delay
        # 10 MB at 10 Mbps = 8 s; burst credit saves one bucket's worth
        assert now == pytest.approx(8.0 - 0.08, rel=0.02)

    def test_would_drop_policing_semantics(self):
        tb = TokenBucket(rate_bps=8e6, burst_bytes=1e5)
        assert not tb.would_drop(1e5, now=0.0)
        tb.consume(1e5, now=0.0)
        assert tb.would_drop(1e5, now=0.0)

    def test_time_backwards_rejected(self):
        tb = TokenBucket(rate_bps=1e6, burst_bytes=1e5)
        tb.consume(10, now=5.0)
        with pytest.raises(ValueError):
            tb.consume(10, now=4.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=0, burst_bytes=1)
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=1, burst_bytes=0)
