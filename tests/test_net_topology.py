"""Topology and addressing: construction, lookups, intra-AS paths."""

import pytest

from repro.errors import AddressError, TopologyError
from repro.net import Link, Node, NodeKind, PrefixAllocator, Topology
from repro.net.address import parse_address, parse_prefix
from repro.units import mbps, ms


def _node(name, asn=1, addr=None, kind=NodeKind.ROUTER, **kw):
    return Node(name=name, kind=kind, asn=asn, address=addr or f"10.0.{asn}.{abs(hash(name)) % 250 + 1}", **kw)


def chain_topology(n=4, asn=1):
    """a0 - a1 - ... - a(n-1), all in one AS."""
    topo = Topology()
    for i in range(n):
        topo.add_node(Node(f"a{i}", NodeKind.ROUTER, asn, f"10.0.0.{i + 1}"))
    for i in range(n - 1):
        topo.add_link(Link(f"a{i}", f"a{i+1}", capacity_bps=mbps(100), delay_s=ms(1)))
    return topo


class TestAddress:
    def test_parse_address_ok(self):
        assert str(parse_address("142.103.78.250")) == "142.103.78.250"

    def test_parse_address_bad(self):
        with pytest.raises(AddressError):
            parse_address("256.1.1.1")

    def test_parse_prefix_bad_hostbits(self):
        with pytest.raises(AddressError):
            parse_prefix("10.0.0.1/8")

    def test_allocator_subnets_disjoint(self):
        alloc = PrefixAllocator("192.168.0.0/16")
        nets = [alloc.subnet(24) for _ in range(5)]
        for i, a in enumerate(nets):
            for b in nets[i + 1:]:
                assert not a.overlaps(b)

    def test_allocator_hosts_unique(self):
        alloc = PrefixAllocator("172.16.0.0/12")
        hosts = [alloc.host() for _ in range(300)]  # spills into a second /24
        assert len(set(hosts)) == 300

    def test_allocator_mixed_subnets_and_hosts_disjoint(self):
        alloc = PrefixAllocator("10.0.0.0/8")
        net = alloc.subnet(16)
        host = parse_address(alloc.host())
        assert host not in net

    def test_allocator_rejects_oversized_request(self):
        with pytest.raises(AddressError):
            PrefixAllocator("10.0.0.0/16").subnet(8)

    def test_allocator_exhaustion(self):
        alloc = PrefixAllocator("10.0.0.0/24")
        with pytest.raises(AddressError):
            for _ in range(10):
                alloc.subnet(26)


class TestNodesAndLinks:
    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node(_node("x", addr="10.0.0.1"))
        with pytest.raises(TopologyError, match="duplicate node"):
            topo.add_node(_node("x", addr="10.0.0.2"))

    def test_duplicate_address_rejected(self):
        topo = Topology()
        topo.add_node(_node("x", addr="10.0.0.1"))
        with pytest.raises(TopologyError, match="address"):
            topo.add_node(_node("y", addr="10.0.0.1"))

    def test_invalid_node_address_rejected(self):
        with pytest.raises(AddressError):
            Node("x", NodeKind.HOST, 1, "999.0.0.1")

    def test_hostname_defaults_to_name(self):
        assert _node("r1", addr="10.0.0.9").hostname == "r1"

    def test_link_validation(self):
        with pytest.raises(TopologyError):
            Link("a", "b", capacity_bps=0, delay_s=0.001)
        with pytest.raises(TopologyError):
            Link("a", "b", capacity_bps=1e6, delay_s=-1)
        with pytest.raises(TopologyError):
            Link("a", "b", capacity_bps=1e6, delay_s=0, loss=1.0)

    def test_link_unknown_node_rejected(self):
        topo = Topology()
        topo.add_node(_node("a", addr="10.0.0.1"))
        with pytest.raises(TopologyError, match="unknown node"):
            topo.add_link(Link("a", "ghost", capacity_bps=1e6, delay_s=0.001))

    def test_self_loop_rejected(self):
        topo = Topology()
        topo.add_node(_node("a", addr="10.0.0.1"))
        with pytest.raises(TopologyError, match="self-loop"):
            topo.add_link(Link("a", "a", capacity_bps=1e6, delay_s=0.001))

    def test_parallel_link_rejected(self):
        topo = chain_topology(2)
        with pytest.raises(TopologyError, match="parallel"):
            topo.add_link(Link("a0", "a1", capacity_bps=1e6, delay_s=0.001, name="dup"))

    def test_link_other_and_direction(self):
        link = Link("u", "v", capacity_bps=1e6, delay_s=0.001)
        assert link.other("u") == "v" and link.other("v") == "u"
        with pytest.raises(TopologyError):
            link.other("w")
        d = link.direction_from("v")
        assert (d.src, d.dst) == ("v", "u")

    def test_policer_caps_one_direction_only(self):
        link = Link("u", "v", capacity_bps=mbps(100), delay_s=0.001, policer_bps={"u": mbps(10)})
        assert link.effective_capacity_bps("u") == mbps(10)
        assert link.effective_capacity_bps("v") == mbps(100)

    def test_policer_bad_endpoint_rejected(self):
        with pytest.raises(TopologyError):
            Link("u", "v", capacity_bps=1e6, delay_s=0, policer_bps={"w": 1e5})


class TestLookupsAndPaths:
    def test_node_by_address(self):
        topo = chain_topology(3)
        assert topo.node_by_address("10.0.0.2").name == "a1"
        with pytest.raises(TopologyError):
            topo.node_by_address("9.9.9.9")

    def test_link_between(self):
        topo = chain_topology(3)
        assert topo.link_between("a0", "a1").name == "a0--a1"
        with pytest.raises(TopologyError):
            topo.link_between("a0", "a2")

    def test_neighbors(self):
        topo = chain_topology(3)
        assert sorted(topo.neighbors("a1")) == ["a0", "a2"]

    def test_intra_as_path_follows_chain(self):
        topo = chain_topology(5)
        assert topo.intra_as_path("a0", "a4") == ["a0", "a1", "a2", "a3", "a4"]

    def test_intra_as_path_identity(self):
        topo = chain_topology(2)
        assert topo.intra_as_path("a0", "a0") == ["a0"]

    def test_intra_as_path_prefers_low_igp_cost(self):
        topo = chain_topology(3)
        # shortcut a0--a2 but with high IGP cost: path should stay on chain
        topo.add_link(Link("a0", "a2", capacity_bps=mbps(100), delay_s=ms(1), igp_cost=10))
        assert topo.intra_as_path("a0", "a2") == ["a0", "a1", "a2"]

    def test_intra_as_path_rejects_cross_as(self):
        topo = chain_topology(2)
        topo.add_node(Node("b0", NodeKind.ROUTER, 2, "10.0.1.1"))
        topo.add_link(Link("a1", "b0", capacity_bps=mbps(10), delay_s=ms(1)))
        with pytest.raises(TopologyError, match="across ASes"):
            topo.intra_as_path("a0", "b0")

    def test_intra_as_path_ignores_foreign_detours(self):
        # a0 - b - a1 (b in другом AS) plus a0 - a1 long way: must not use b
        topo = Topology()
        for name, asn, addr in [("a0", 1, "10.0.0.1"), ("a1", 1, "10.0.0.2"), ("b", 2, "10.0.1.1"), ("m", 1, "10.0.0.3")]:
            topo.add_node(Node(name, NodeKind.ROUTER, asn, addr))
        topo.add_link(Link("a0", "b", capacity_bps=1e6, delay_s=ms(1)))
        topo.add_link(Link("b", "a1", capacity_bps=1e6, delay_s=ms(1)))
        topo.add_link(Link("a0", "m", capacity_bps=1e6, delay_s=ms(5)))
        topo.add_link(Link("m", "a1", capacity_bps=1e6, delay_s=ms(5)))
        assert topo.intra_as_path("a0", "a1") == ["a0", "m", "a1"]

    def test_no_intra_path_raises(self):
        topo = Topology()
        topo.add_node(Node("a", NodeKind.ROUTER, 1, "10.0.0.1"))
        topo.add_node(Node("b", NodeKind.ROUTER, 1, "10.0.0.2"))
        with pytest.raises(TopologyError, match="no intra-AS path"):
            topo.intra_as_path("a", "b")

    def test_path_metrics(self):
        topo = Topology()
        topo.add_node(Node("a", NodeKind.HOST, 1, "10.0.0.1"))
        topo.add_node(Node("b", NodeKind.ROUTER, 1, "10.0.0.2"))
        topo.add_node(Node("c", NodeKind.HOST, 1, "10.0.0.3"))
        topo.add_link(Link("a", "b", capacity_bps=mbps(10), delay_s=ms(2), loss=0.01))
        topo.add_link(Link("b", "c", capacity_bps=mbps(50), delay_s=ms(3), loss=0.02))
        path = ["a", "b", "c"]
        assert topo.path_delay_s(path) == pytest.approx(0.005)
        assert topo.path_loss(path) == pytest.approx(1 - 0.99 * 0.98)
        dirs = topo.path_directions(path)
        assert [str(d) for d in dirs] == ["a->b", "b->c"]

    def test_inter_as_links(self):
        topo = chain_topology(2, asn=1)
        topo.add_node(Node("b0", NodeKind.ROUTER, 2, "10.0.1.1"))
        topo.add_link(Link("a1", "b0", capacity_bps=mbps(10), delay_s=ms(1)))
        links = topo.inter_as_links(1, 2)
        assert len(links) == 1 and links[0].name == "a1--b0"
        assert topo.inter_as_links(1, 3) == []

    def test_validate_rejects_orphan_host(self):
        topo = Topology()
        topo.add_node(Node("h", NodeKind.HOST, 1, "10.0.0.1"))
        with pytest.raises(TopologyError, match="no access link"):
            topo.validate()

    def test_hosts_and_nodes_in_as(self):
        topo = chain_topology(3)
        topo.add_node(Node("h", NodeKind.HOST, 2, "10.0.9.1"))
        assert [n.name for n in topo.hosts()] == ["h"]
        assert len(topo.nodes_in_as(1)) == 3
