"""Bench regression ledger: flatten/direction, append-only generations,
threshold checks, trend rendering, and the ``repro bench`` CLI."""

import json

import pytest

from repro.cli import main as cli_main
from repro.errors import ObservabilityError
from repro.obs import (
    Regression,
    check_regressions,
    load_bench_results,
    read_ledger,
    record_generation,
    render_trend,
)
from repro.obs.bench import (
    DEFAULT_THRESHOLD,
    direction_of,
    render_regressions,
)

def write_bench(results_dir, suite, payload):
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / f"BENCH_{suite}.json").write_text(
        json.dumps(payload), encoding="utf-8")


class TestDirection:
    def test_suffix_rules(self):
        assert direction_of("serial_s") == "lower"
        assert direction_of("warm_seconds") == "lower"
        assert direction_of("cold_ms") == "lower"
        assert direction_of("speedup") == "higher"
        assert direction_of("warm_speedup") == "higher"
        assert direction_of("hit_rate") == "higher"
        assert direction_of("jobs") is None
        assert direction_of("cells") is None

    def test_dotted_keys_inherit_from_inner_components(self):
        # every leaf of a regret_s dict is a duration
        assert direction_of("regret_s.broker") == "lower"
        assert direction_of("regret_s.direct") == "lower"
        # innermost match wins
        assert direction_of("totals.speedup") == "higher"


class TestLoadResults:
    def test_flattens_nested_objects_numeric_leaves_only(self, tmp_path):
        write_bench(tmp_path, "broker", {
            "uploads": 60, "mean_s": {"direct": 2.5, "broker": 1.25},
            "label": "full", "fast": True})
        results = load_bench_results(tmp_path)
        assert results == {"broker": {
            "uploads": 60.0, "mean_s.broker": 1.25, "mean_s.direct": 2.5}}

    def test_empty_dir_and_bad_json(self, tmp_path):
        assert load_bench_results(tmp_path) == {}
        (tmp_path / "BENCH_bad.json").write_text("{nope", encoding="utf-8")
        with pytest.raises(ObservabilityError):
            load_bench_results(tmp_path)


class TestLedger:
    def test_generations_append_only_with_increasing_gen(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        assert read_ledger(ledger) == []
        g1 = record_generation(ledger, {"a": {"x_s": 1.0}}, stamp="t1")
        first_line = ledger.read_text(encoding="utf-8")
        g2 = record_generation(ledger, {"a": {"x_s": 1.1}}, stamp="t2",
                               note="tuned")
        assert (g1, g2) == (1, 2)
        # append-only: recording leaves prior lines untouched
        assert ledger.read_text(encoding="utf-8").startswith(first_line)
        gens = read_ledger(ledger)
        assert [g["gen"] for g in gens] == [1, 2]
        assert gens[1]["note"] == "tuned"
        assert gens[1]["results"]["a"]["x_s"] == 1.1

    def test_corrupt_line_raises(self, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        ledger.write_text('{"gen": 1}\nnot json\n', encoding="utf-8")
        with pytest.raises(ObservabilityError):
            read_ledger(ledger)


class TestCheckRegressions:
    LEDGER = [{"gen": 1, "results": {
        "campaign": {"serial_s": 2.0, "parallel_s": 1.0, "speedup": 2.0,
                     "jobs": 4.0}}}]

    def test_clean_results_pass(self):
        current = {"campaign": {"serial_s": 2.1, "parallel_s": 0.9,
                                "speedup": 2.3, "jobs": 4.0}}
        assert check_regressions(current, self.LEDGER) == []

    def test_2x_slowdown_is_flagged(self):
        current = {"campaign": {"serial_s": 4.0, "parallel_s": 1.0,
                                "speedup": 2.0}}
        [reg] = check_regressions(current, self.LEDGER)
        assert isinstance(reg, Regression)
        assert (reg.suite, reg.key) == ("campaign", "serial_s")
        assert reg.ratio == 2.0
        assert "rose 2 -> 4" in reg.describe()

    def test_speedup_collapse_is_flagged_in_the_other_direction(self):
        current = {"campaign": {"serial_s": 2.0, "parallel_s": 1.0,
                                "speedup": 1.0}}
        [reg] = check_regressions(current, self.LEDGER)
        assert reg.key == "speedup" and reg.ratio == 2.0
        assert "fell" in reg.describe()

    def test_worst_regression_first(self):
        current = {"campaign": {"serial_s": 3.0, "parallel_s": 4.0}}
        regs = check_regressions(current, self.LEDGER)
        assert [r.key for r in regs] == ["parallel_s", "serial_s"]
        assert regs[0].ratio == 4.0

    def test_new_keys_and_untracked_keys_never_flag(self):
        current = {"campaign": {"fresh_s": 99.0, "jobs": 400.0},
                   "newsuite": {"slow_s": 1000.0}}
        assert check_regressions(current, self.LEDGER) == []

    def test_within_threshold_passes_beyond_fails(self):
        current = {"campaign": {"serial_s": 2.4}}
        assert check_regressions(current, self.LEDGER, threshold=1.25) == []
        assert check_regressions(current, self.LEDGER, threshold=1.15)

    def test_empty_ledger_never_flags(self):
        assert check_regressions({"a": {"x_s": 9.9}}, []) == []

    def test_threshold_must_exceed_one(self):
        for bad in (1.0, 0.5, 0.0):
            with pytest.raises(ObservabilityError):
                check_regressions({}, self.LEDGER, threshold=bad)

    def test_render(self):
        assert "no regressions" in render_regressions([], DEFAULT_THRESHOLD)
        [reg] = check_regressions({"campaign": {"serial_s": 4.0}}, self.LEDGER)
        text = render_regressions([reg], DEFAULT_THRESHOLD)
        assert "1 regression(s)" in text and "campaign.serial_s" in text


class TestRenderTrend:
    def test_trail_with_gaps(self):
        ledger = [
            {"gen": 1, "results": {"campaign": {"serial_s": 2.0}}},
            {"gen": 2, "results": {"campaign": {"serial_s": 2.2,
                                                "speedup": 3.0}}},
        ]
        text = render_trend(ledger)
        assert "gen   1" in text and "gen   2" in text
        assert "campaign.serial_s" in text
        # speedup missing in gen 1 renders as a gap
        speedup_line = next(l for l in text.splitlines() if "speedup" in l)
        assert "-" in speedup_line and "3" in speedup_line

    def test_suite_filter_and_empty(self):
        assert "empty" in render_trend([])
        ledger = [{"gen": 1, "results": {"a": {"x_s": 1.0},
                                         "b": {"y_s": 2.0}}}]
        text = render_trend(ledger, suite="a")
        assert "a.x_s" in text and "b.y_s" not in text
        assert "no tracked metrics" in render_trend(ledger, suite="zzz")


class TestBenchCli:
    def seed(self, tmp_path):
        results = tmp_path / "results"
        write_bench(results, "campaign",
                    {"serial_s": 2.0, "parallel_s": 1.0, "speedup": 2.0})
        return results

    def run(self, *argv):
        return cli_main(["bench", *argv])

    def test_check_records_then_flags_injected_slowdown(self, tmp_path, capsys):
        results = self.seed(tmp_path)
        assert self.run("check", "--results-dir", str(results),
                        "--record", "--note", "baseline") == 0
        out = capsys.readouterr().out
        assert "no regressions" in out and "recorded generation 1" in out

        # inject a 2x slowdown into the bench snapshot
        write_bench(results, "campaign",
                    {"serial_s": 4.0, "parallel_s": 1.0, "speedup": 1.0})
        assert self.run("check", "--results-dir", str(results)) == 1
        out = capsys.readouterr().out
        assert "campaign.serial_s rose 2 -> 4" in out
        assert "2.00x worse" in out

    def test_check_without_results_or_ledger(self, tmp_path, capsys):
        empty = tmp_path / "nothing"
        empty.mkdir()
        assert self.run("check", "--results-dir", str(empty)) == 0
        assert "no BENCH_*.json" in capsys.readouterr().out
        results = self.seed(tmp_path)
        assert self.run("check", "--results-dir", str(results)) == 0
        assert "ledger is empty" in capsys.readouterr().out

    def test_trend_reads_the_ledger(self, tmp_path, capsys):
        results = self.seed(tmp_path)
        assert self.run("check", "--results-dir", str(results),
                        "--record") == 0
        capsys.readouterr()
        assert self.run("trend", "--results-dir", str(results)) == 0
        out = capsys.readouterr().out
        assert "campaign.serial_s" in out and "gen" in out

    def test_custom_threshold(self, tmp_path, capsys):
        results = self.seed(tmp_path)
        assert self.run("check", "--results-dir", str(results),
                        "--record") == 0
        capsys.readouterr()
        write_bench(results, "campaign",
                    {"serial_s": 2.4, "parallel_s": 1.0, "speedup": 2.0})
        assert self.run("check", "--results-dir", str(results)) == 0
        capsys.readouterr()
        assert self.run("check", "--results-dir", str(results),
                        "--threshold", "1.1") == 1
