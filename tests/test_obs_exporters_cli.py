"""Exporters (JSONL round-trip, Prometheus, tables) and the obs CLI."""

import io
import json

import pytest

from repro.cli import main
from repro.core import DetourPlanner
from repro.errors import ObservabilityError
from repro.obs import (
    MetricsRegistry,
    extract_span_records,
    read_jsonl,
    render_metrics_table,
    render_prometheus,
    write_jsonl,
)
from repro.testbed import build_case_study
from repro.units import mb


@pytest.fixture(scope="module")
def instrumented_world():
    world = build_case_study(seed=0, trace=True, metrics=True)
    planner = DetourPlanner(world, runs_per_route=2, discard_runs=1)
    planner.compare("ubc", "gdrive", int(mb(20)))
    return world


class TestJsonlRoundTrip:
    def test_compare_run_round_trips_losslessly(self, instrumented_world):
        """Satellite: dump a real compare run and reload it without loss."""
        world = instrumented_world
        buf = io.StringIO()
        n = write_jsonl(buf, metrics=world.metrics, tracer=world.tracer)
        assert n == len(world.metrics.collect()) + len(world.tracer)

        buf.seek(0)
        dump = read_jsonl(buf)
        assert list(dump.metrics) == world.metrics.collect()
        assert list(dump.events) == world.tracer.events

    def test_each_line_is_valid_json(self, instrumented_world):
        buf = io.StringIO()
        write_jsonl(buf, metrics=instrumented_world.metrics,
                    tracer=instrumented_world.tracer)
        lines = buf.getvalue().splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert record["type"] in ("metric", "event")

    def test_bad_input_raises(self):
        with pytest.raises(ObservabilityError):
            read_jsonl(io.StringIO("not json\n"))
        with pytest.raises(ObservabilityError):
            read_jsonl(io.StringIO('{"type": "mystery"}\n'))

    def test_blank_lines_skipped(self):
        dump = read_jsonl(io.StringIO("\n\n"))
        assert dump.metrics == () and dump.events == ()


class TestPrometheus:
    def test_exposition_format(self, instrumented_world):
        text = render_prometheus(instrumented_world.metrics)
        assert "# TYPE repro_engine_flows_completed_total counter" in text
        assert 'le="+Inf"' in text
        assert "repro_api_upload_seconds_sum" in text

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_t_x_seconds", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        text = render_prometheus(reg)
        assert 'repro_t_x_seconds_bucket{le="1"} 1' in text
        assert 'repro_t_x_seconds_bucket{le="2"} 2' in text
        assert 'repro_t_x_seconds_bucket{le="+Inf"} 2' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestMetricsTable:
    def test_renders_samples(self, instrumented_world):
        table = render_metrics_table(instrumented_world.metrics)
        assert "repro_engine_flows_completed_total" in table
        assert "count=" in table  # histogram detail

    def test_empty(self):
        assert render_metrics_table(MetricsRegistry()) == "metrics: (empty)"


class TestObsCli:
    def test_obs_text(self, capsys):
        assert main(["obs", "--size-mb", "10", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "span timeline:" in out
        assert "metrics (" in out
        assert "core.executor:plan:direct" in out

    def test_obs_json_parses_and_round_trips(self, capsys):
        """Satellite: `repro obs --format json` output reloads losslessly."""
        assert main(["obs", "--size-mb", "10", "--runs", "2",
                     "--format", "json"]) == 0
        out = capsys.readouterr().out
        dump = read_jsonl(io.StringIO(out))
        assert dump.metrics and dump.events
        by_name = {s.name: s for s in dump.metrics}
        completed = by_name["repro_engine_flows_completed_total"]
        flow_ends = [e for e in dump.events if e.kind == "flow_end"]
        assert completed.value == len(flow_ends)

    def test_obs_prom(self, capsys):
        assert main(["obs", "--size-mb", "10", "--runs", "2",
                     "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_engine_flows_completed_total counter" in out

    def test_obs_out_file(self, tmp_path, capsys):
        target = tmp_path / "dump.jsonl"
        assert main(["obs", "--size-mb", "10", "--runs", "2",
                     "--format", "json", "--out", str(target)]) == 0
        dump = read_jsonl(io.StringIO(target.read_text()))
        assert dump.metrics and dump.events


class TestCompareObsFlags:
    def test_profile_metrics_acceptance(self, capsys):
        """`repro compare --profile --metrics -` prints timeline + table."""
        assert main(["compare", "ubc", "gdrive", "--size-mb", "10",
                     "--runs", "2", "--profile", "--metrics", "-"]) == 0
        out = capsys.readouterr().out
        assert "fastest" in out
        assert "span timeline:" in out
        assert "repro_engine_flows_completed_total" in out
        assert "kernel profile:" in out

    def test_trace_out_file(self, tmp_path, capsys):
        target = tmp_path / "trace.jsonl"
        assert main(["compare", "ubc", "gdrive", "--size-mb", "10",
                     "--runs", "2", "--trace-out", str(target)]) == 0
        dump = read_jsonl(io.StringIO(target.read_text()))
        assert dump.events

    def test_metrics_prometheus_file(self, tmp_path, capsys):
        target = tmp_path / "metrics.prom"
        assert main(["compare", "ubc", "gdrive", "--size-mb", "10",
                     "--runs", "2", "--metrics", str(target)]) == 0
        assert "# TYPE" in target.read_text()

    def test_no_flags_prints_no_obs_output(self, capsys):
        assert main(["compare", "ubc", "gdrive", "--size-mb", "10",
                     "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "span timeline" not in out and "metrics (" not in out


class TestSpanTimelineRender:
    def test_timeline_shows_nesting_and_durations(self, instrumented_world):
        from repro.analysis import span_timeline

        records = extract_span_records(instrumented_world.tracer)
        text = span_timeline(records)
        assert "span timeline:" in text
        assert "transfer.api:upload" in text
        assert "=" in text

    def test_empty_records(self):
        from repro.analysis import span_timeline

        assert "no spans" in span_timeline([])
