"""Exporters (JSONL round-trip, Prometheus, tables) and the obs CLI."""

import io
import json

import pytest

from repro.cli import main
from repro.core import DetourPlanner
from repro.errors import ObservabilityError
from repro.obs import (
    KernelProfiler,
    MetricsRegistry,
    extract_span_records,
    read_jsonl,
    record_trace_health,
    render_metrics_table,
    render_prometheus,
    write_chrome_trace,
    write_collapsed_stacks,
    write_jsonl,
)
from repro.testbed import build_case_study
from repro.units import mb


@pytest.fixture(scope="module")
def instrumented_world():
    world = build_case_study(seed=0, trace=True, metrics=True)
    planner = DetourPlanner(world, runs_per_route=2, discard_runs=1)
    planner.compare("ubc", "gdrive", int(mb(20)))
    return world


class TestJsonlRoundTrip:
    def test_compare_run_round_trips_losslessly(self, instrumented_world):
        """Satellite: dump a real compare run and reload it without loss."""
        world = instrumented_world
        buf = io.StringIO()
        n = write_jsonl(buf, metrics=world.metrics, tracer=world.tracer)
        assert n == len(world.metrics.collect()) + len(world.tracer)

        buf.seek(0)
        dump = read_jsonl(buf)
        assert list(dump.metrics) == world.metrics.collect()
        assert list(dump.events) == world.tracer.events

    def test_each_line_is_valid_json(self, instrumented_world):
        buf = io.StringIO()
        write_jsonl(buf, metrics=instrumented_world.metrics,
                    tracer=instrumented_world.tracer)
        lines = buf.getvalue().splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert record["type"] in ("metric", "event")

    def test_bad_input_raises(self):
        with pytest.raises(ObservabilityError):
            read_jsonl(io.StringIO("not json\n"))
        with pytest.raises(ObservabilityError):
            read_jsonl(io.StringIO('{"type": "mystery"}\n'))

    def test_blank_lines_skipped(self):
        dump = read_jsonl(io.StringIO("\n\n"))
        assert dump.metrics == () and dump.events == ()


class TestPrometheus:
    def test_exposition_format(self, instrumented_world):
        text = render_prometheus(instrumented_world.metrics)
        assert "# TYPE repro_engine_flows_completed_total counter" in text
        assert 'le="+Inf"' in text
        assert "repro_api_upload_seconds_sum" in text

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_t_x_seconds", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        text = render_prometheus(reg)
        assert 'repro_t_x_seconds_bucket{le="1"} 1' in text
        assert 'repro_t_x_seconds_bucket{le="2"} 2' in text
        assert 'repro_t_x_seconds_bucket{le="+Inf"} 2' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_t_weird_total")
        c.inc(site='has "quotes"')
        c.inc(site="back\\slash")
        c.inc(site="two\nlines")
        text = render_prometheus(reg)
        assert r'site="has \"quotes\""' in text
        assert r'site="back\\slash"' in text
        assert r'site="two\nlines"' in text
        assert "\ntwo" not in text  # the newline never reaches the output raw
        # escaped exposition still parses line-by-line: every sample line
        # is `name{labels} value`
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)
            assert name_part.startswith("repro_t_weird_total{site=")

    def test_output_stable_across_collects(self, instrumented_world):
        reg = instrumented_world.metrics
        assert render_prometheus(reg) == render_prometheus(reg)
        # ordering is by (name, labels), not insertion: a registry built
        # in a different order renders the same text
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("repro_t_a_total").inc(site="x")
        a.counter("repro_t_b_total").inc()
        a.get("repro_t_a_total").inc(site="m")
        b.counter("repro_t_b_total").inc()
        b.counter("repro_t_a_total").inc(site="m")
        b.get("repro_t_a_total").inc(site="x")
        assert render_prometheus(a) == render_prometheus(b)


class TestTraceHealthAndProfileExports:
    def test_record_trace_health_is_idempotent(self, instrumented_world):
        world = instrumented_world
        reg = MetricsRegistry()
        record_trace_health(reg, world.tracer)
        record_trace_health(reg, world.tracer)  # re-export: no double count
        assert reg.get("repro_trace_events_count").value() \
            == len(world.tracer)
        assert reg.get("repro_trace_dropped_total").total() \
            == world.tracer.dropped

    def test_write_chrome_trace_and_stacks(self, tmp_path):
        prof = KernelProfiler(timeline=True)
        prof.run_callback(lambda: sum(range(5000)), 1.0)
        trace_path = tmp_path / "trace.json"
        with open(trace_path, "w", encoding="utf-8") as fp:
            n = write_chrome_trace(fp, prof)
        assert n == 1
        trace = json.loads(trace_path.read_text(encoding="utf-8"))
        assert {e["ph"] for e in trace["traceEvents"]} == {"M", "X"}
        stacks_path = tmp_path / "stacks.txt"
        with open(stacks_path, "w", encoding="utf-8") as fp:
            lines = write_collapsed_stacks(fp, prof)
        assert lines == 1
        assert stacks_path.read_text(encoding="utf-8").strip()


class TestMetricsTable:
    def test_renders_samples(self, instrumented_world):
        table = render_metrics_table(instrumented_world.metrics)
        assert "repro_engine_flows_completed_total" in table
        assert "count=" in table  # histogram detail

    def test_empty(self):
        assert render_metrics_table(MetricsRegistry()) == "metrics: (empty)"


class TestObsCli:
    def test_obs_text(self, capsys):
        assert main(["obs", "--size-mb", "10", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "span timeline:" in out
        assert "metrics (" in out
        assert "core.executor:plan:direct" in out

    def test_obs_json_parses_and_round_trips(self, capsys):
        """Satellite: `repro obs --format json` output reloads losslessly."""
        assert main(["obs", "--size-mb", "10", "--runs", "2",
                     "--format", "json"]) == 0
        out = capsys.readouterr().out
        dump = read_jsonl(io.StringIO(out))
        assert dump.metrics and dump.events
        by_name = {s.name: s for s in dump.metrics}
        completed = by_name["repro_engine_flows_completed_total"]
        flow_ends = [e for e in dump.events if e.kind == "flow_end"]
        assert completed.value == len(flow_ends)

    def test_obs_prom(self, capsys):
        assert main(["obs", "--size-mb", "10", "--runs", "2",
                     "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_engine_flows_completed_total counter" in out

    def test_obs_out_file(self, tmp_path, capsys):
        target = tmp_path / "dump.jsonl"
        assert main(["obs", "--size-mb", "10", "--runs", "2",
                     "--format", "json", "--out", str(target)]) == 0
        dump = read_jsonl(io.StringIO(target.read_text()))
        assert dump.metrics and dump.events

    def test_obs_text_reports_trace_health(self, capsys):
        assert main(["obs", "--size-mb", "10", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "dropped" in out  # ring-buffer health is always surfaced

    def test_obs_profile_trace_and_stacks_export(self, tmp_path, capsys):
        """Acceptance: the CLI writes a loadable Chrome trace + stacks."""
        trace = tmp_path / "trace.json"
        stacks = tmp_path / "stacks.txt"
        assert main(["obs", "--size-mb", "10", "--runs", "2",
                     "--profile-trace", str(trace),
                     "--profile-stacks", str(stacks)]) == 0
        out = capsys.readouterr().out
        assert str(trace) in out and str(stacks) in out
        payload = json.loads(trace.read_text(encoding="utf-8"))
        xs = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert xs
        assert all("sim_time_s" in e["args"] for e in xs)
        assert payload["otherData"]["component_wall_ms"]
        for line in stacks.read_text(encoding="utf-8").splitlines():
            stack, us = line.rsplit(" ", 1)
            assert int(us) > 0 and stack


class TestCompareObsFlags:
    def test_profile_metrics_acceptance(self, capsys):
        """`repro compare --profile --metrics -` prints timeline + table."""
        assert main(["compare", "ubc", "gdrive", "--size-mb", "10",
                     "--runs", "2", "--profile", "--metrics", "-"]) == 0
        out = capsys.readouterr().out
        assert "fastest" in out
        assert "span timeline:" in out
        assert "repro_engine_flows_completed_total" in out
        assert "kernel profile:" in out

    def test_trace_out_file(self, tmp_path, capsys):
        target = tmp_path / "trace.jsonl"
        assert main(["compare", "ubc", "gdrive", "--size-mb", "10",
                     "--runs", "2", "--trace-out", str(target)]) == 0
        dump = read_jsonl(io.StringIO(target.read_text()))
        assert dump.events

    def test_metrics_prometheus_file(self, tmp_path, capsys):
        target = tmp_path / "metrics.prom"
        assert main(["compare", "ubc", "gdrive", "--size-mb", "10",
                     "--runs", "2", "--metrics", str(target)]) == 0
        assert "# TYPE" in target.read_text()

    def test_no_flags_prints_no_obs_output(self, capsys):
        assert main(["compare", "ubc", "gdrive", "--size-mb", "10",
                     "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "span timeline" not in out and "metrics (" not in out


class TestSpanTimelineRender:
    def test_timeline_shows_nesting_and_durations(self, instrumented_world):
        from repro.analysis import span_timeline

        records = extract_span_records(instrumented_world.tracer)
        text = span_timeline(records)
        assert "span timeline:" in text
        assert "transfer.api:upload" in text
        assert "=" in text

    def test_empty_records(self):
        from repro.analysis import span_timeline

        assert "no spans" in span_timeline([])
