"""Metrics registry: instruments, naming, labels, and the disabled path."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    DURATION_BUCKETS,
    RATE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    valid_metric_name,
)


class TestNaming:
    def test_convention_accepted(self):
        assert valid_metric_name("repro_engine_flows_started_total")
        assert valid_metric_name("repro_api_upload_seconds")
        assert valid_metric_name("repro_engine_payload_bytes")
        assert valid_metric_name("repro_flow_throughput_bps")

    def test_violations_rejected(self):
        assert not valid_metric_name("engine_flows_total")  # no prefix
        assert not valid_metric_name("repro_flows")  # no unit suffix
        assert not valid_metric_name("repro_Flows_total")  # not snake_case
        assert not valid_metric_name("repro__flows_total")  # empty segment
        assert not valid_metric_name("repro_flows_total_")  # trailing _

    def test_registry_enforces_names(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.counter("bad_name")


class TestCounter:
    def test_inc_and_labels(self):
        c = MetricsRegistry().counter("repro_t_x_total")
        c.inc()
        c.inc(2, route="direct")
        c.inc(3, route="direct")
        assert c.value() == 1
        assert c.value(route="direct") == 5
        assert c.total() == 6

    def test_label_order_is_canonical(self):
        c = MetricsRegistry().counter("repro_t_x_total")
        c.inc(a="1", b="2")
        assert c.value(b="2", a="1") == 1

    def test_cannot_decrease(self):
        c = MetricsRegistry().counter("repro_t_x_total")
        with pytest.raises(ObservabilityError):
            c.inc(-1)


class TestGauge:
    def test_set_add(self):
        g = MetricsRegistry().gauge("repro_t_x_count")
        g.set(5)
        g.add(-2)
        assert g.value() == 3


class TestHistogram:
    def test_observe_and_stats(self):
        h = MetricsRegistry().histogram("repro_t_x_seconds", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 5.0, 50.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(60.5)
        assert h.mean() == pytest.approx(60.5 / 4)
        sample = h.samples()[0]
        assert sample.bucket_counts == (1, 2, 1)  # <=1, <=10, +inf

    def test_approx_quantile_within_bucket(self):
        h = MetricsRegistry().histogram("repro_t_x_seconds", buckets=(1.0, 2.0))
        for _ in range(4):
            h.observe(1.5)
        q = h.approx_quantile(0.5)
        assert 1.0 <= q <= 2.0

    def test_bad_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.histogram("repro_t_a_seconds", buckets=())
        with pytest.raises(ObservabilityError):
            reg.histogram("repro_t_b_seconds", buckets=(2.0, 1.0))
        with pytest.raises(ObservabilityError):
            reg.histogram("repro_t_c_seconds", buckets=(1.0, float("inf")))


class TestRegistry:
    def test_registration_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_t_x_total")
        b = reg.counter("repro_t_x_total")
        assert a is b
        assert len(reg) == 1

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_t_x_total")
        with pytest.raises(ObservabilityError):
            reg.gauge("repro_t_x_total")

    def test_histogram_bucket_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("repro_t_x_seconds", buckets=DURATION_BUCKETS)
        with pytest.raises(ObservabilityError):
            reg.histogram("repro_t_x_seconds", buckets=RATE_BUCKETS)

    def test_collect_sorted_and_clear(self):
        reg = MetricsRegistry()
        reg.counter("repro_t_b_total").inc()
        reg.counter("repro_t_a_total").inc()
        names = [s.name for s in reg.collect()]
        assert names == ["repro_t_a_total", "repro_t_b_total"]
        reg.clear()
        assert reg.collect() == []
        assert "repro_t_a_total" in reg  # registrations survive clear()


class TestDisabledRegistry:
    """Satellite: a disabled registry must be a no-op, not an error."""

    def test_instruments_still_register(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("repro_t_x_total")
        g = reg.gauge("repro_t_x_count")
        h = reg.histogram("repro_t_x_seconds")
        assert isinstance(c, Counter)
        assert isinstance(g, Gauge)
        assert isinstance(h, Histogram)

    def test_mutators_record_nothing(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("repro_t_x_total")
        g = reg.gauge("repro_t_x_count")
        h = reg.histogram("repro_t_x_seconds")
        c.inc(5, route="direct")
        g.set(3)
        h.observe(1.0)
        assert c.total() == 0
        assert g.value() == 0
        assert h.count() == 0
        assert reg.collect() == []

    def test_naming_still_enforced_when_disabled(self):
        reg = MetricsRegistry(enabled=False)
        with pytest.raises(ObservabilityError):
            reg.counter("not_a_valid_name")
