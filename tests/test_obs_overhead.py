"""Satellite: instrumentation with observability OFF must be invisible.

The seed's guarantee is bit-identical results: a world built with all
obs hooks compiled in but disabled must execute the same events, in the
same order, and produce the same numbers as before the hooks existed.
"""

from repro.campaign import CampaignRunner, CampaignSpec, PoolConfig, \
    export_records
from repro.core import DetourPlanner
from repro.measure import ExperimentProtocol
from repro.obs import TelemetryAggregator
from repro.testbed import build_case_study
from repro.units import mb


def compare_run(**kwargs):
    world = build_case_study(seed=3, **kwargs)
    planner = DetourPlanner(world, runs_per_route=2, discard_runs=1)
    comparison = planner.compare("ubc", "gdrive", int(mb(20)))
    # Event sequence numbers only ever increase; the next draw counts
    # every event the kernel scheduled during the run.
    events_scheduled = next(world.sim._seq)
    return world, comparison, events_scheduled


class TestObsOffIsInvisible:
    def test_results_and_event_counts_match_seed(self):
        _, base, base_events = compare_run()
        _, instrumented, instr_events = compare_run(
            trace=True, metrics=True, profile=True)
        assert instrumented.render() == base.render()
        # Tracing/metrics/profiling add zero kernel events: spans and
        # instruments are recorded outside the event loop.
        assert instr_events == base_events

    def test_obs_off_world_records_nothing(self):
        world, _, _ = compare_run()
        assert not world.metrics.enabled
        assert world.metrics.collect() == []
        assert world.spans is not None and not world.spans.enabled
        assert len(world.tracer) == 0
        assert world.profiler is None

    def test_obs_on_world_records(self):
        world, comparison, _ = compare_run(trace=True, metrics=True, profile=True)
        completed = world.metrics.get("repro_engine_flows_completed_total")
        assert completed is not None and completed.total() > 0
        flow_ends = world.tracer.filter(kind="flow_end")
        assert completed.total() == len(flow_ends)
        assert world.profiler is not None and world.profiler.events_total > 0

    def test_throughput_histogram_consistent_with_result(self):
        """The upload-throughput histogram must bracket the measured rates."""
        world, comparison, _ = compare_run(trace=True, metrics=True)
        hist = world.metrics.get("repro_api_upload_throughput_bps")
        assert hist.count(provider="gdrive") > 0
        lo, hi = hist.buckets[0], hist.buckets[-1]
        mean = hist.mean(provider="gdrive")
        assert lo <= mean <= hi


class TestCampaignTelemetryOffIsInvisible:
    """The same guarantee one layer up: streaming pool telemetry must
    never perturb campaign results — on or off, serial or parallel."""

    SPEC = CampaignSpec(clients=("ubc",), providers=("gdrive", "dropbox"),
                        sizes_mb=(1.0,), cross_traffic=False,
                        protocol=ExperimentProtocol(2, 0, 1.0))

    def run(self, jobs, telemetry=None):
        result = CampaignRunner(self.SPEC, pool=PoolConfig(jobs=jobs),
                                telemetry=telemetry).run()
        return export_records(result.records, self.SPEC)

    def test_telemetry_on_export_is_byte_identical(self):
        baseline = self.run(jobs=1, telemetry=None)
        agg = TelemetryAggregator()
        assert self.run(jobs=1, telemetry=agg) == baseline
        assert agg.snapshot().done == len(self.SPEC.expand())
        agg4 = TelemetryAggregator()
        assert self.run(jobs=4, telemetry=agg4) == baseline
        assert agg4.snapshot().done == len(self.SPEC.expand())

    def test_telemetry_off_emits_nothing(self):
        events = []
        self.run(jobs=1, telemetry=events.append)
        baseline_events = len(events)
        assert baseline_events > 0
        events.clear()
        self.run(jobs=1, telemetry=None)
        assert events == []
