"""Profiler v2: hierarchical attribution, bytes counters, trace exports."""

import json

from repro.obs import KernelProfiler, TimelineEvent
from repro.obs.profile import _component_of


def busy(n=2000):
    total = 0
    for i in range(n):
        total += i
    return total


class TestHierarchy:
    def run_nested(self, **kwargs):
        """One callback frame with a section nested inside it."""
        prof = KernelProfiler(**kwargs)

        def callback():
            busy()
            t0 = prof.begin()
            busy()
            prof.end_section("hot.inner", t0, sim_time_s=4.5)

        prof.run_callback(callback, 1.5)
        return prof

    def test_section_nests_under_live_callback(self):
        prof = self.run_nested()
        paths = {path for path, _, _, _ in prof.stack_stats()}
        root = next(p for p in paths if len(p) == 1)
        assert (root[0], "hot.inner") in paths

    def test_self_time_excludes_children(self):
        prof = self.run_nested()
        stats = {path: (cum, self_s)
                 for path, _, cum, self_s in prof.stack_stats()}
        root_path = next(p for p in stats if len(p) == 1)
        child_path = root_path + ("hot.inner",)
        root_cum, root_self = stats[root_path]
        child_cum, child_self = stats[child_path]
        assert child_self == child_cum  # leaf: all time is self time
        assert abs(root_self - (root_cum - child_cum)) < 1e-9
        assert root_cum > child_cum > 0

    def test_v1_views_unpolluted_by_hierarchy(self):
        prof = self.run_nested()
        # callback_stats: only the root callback frame, not the section.
        assert len(prof.callback_stats()) == 1
        # section_stats: only the section, aggregated by leaf name.
        [(key, calls, cum)] = prof.section_stats()
        assert key == "hot.inner" and calls == 1 and cum > 0

    def test_component_stats_groups_by_module(self):
        prof = self.run_nested()
        comps = prof.component_stats()
        assert len(comps) == 1
        comp, events, wall = comps[0]
        assert events == 1 and wall > 0
        # the fixture callback is defined in this test module
        assert comp.startswith("test") or "." in comp

    def test_component_of_strips_class_and_function(self):
        assert _component_of(
            "repro.net.engine.NetworkEngine._complete") == "repro.net.engine"
        assert _component_of(
            "repro.sim.kernel._Delay._subscribe.<lambda>") == "repro.sim.kernel"
        assert _component_of("net.engine.reallocate") == "net.engine"


class TestCounters:
    def test_count_bytes_accumulates(self):
        prof = KernelProfiler()
        prof.count_bytes("net.payload", 1000.0)
        prof.count_bytes("net.payload", 2048.9)
        assert prof.bytes_counts() == [("net.payload", 3048)]

    def test_disabled_profiler_is_a_noop(self):
        prof = KernelProfiler(enabled=False)
        prof.run_callback(busy)
        prof.count_bytes("k", 10)
        prof.count("k")
        assert prof.begin() is None
        prof.end_section("k", None)
        assert prof.events_total == 0
        assert prof.stack_stats() == []
        assert prof.bytes_counts() == []

    def test_report_includes_new_tables(self):
        prof = KernelProfiler()
        prof.run_callback(busy, 1.0)
        prof.count("engine.flows", 3)
        prof.count_bytes("engine.payload", 4096)
        text = prof.report()
        assert "event type (component)" in text
        assert "self ms" in text
        assert "bytes touched" in text
        assert "4096" in text


class TestTimeline:
    def test_timeline_records_stack_and_sim_time(self):
        prof = KernelProfiler(timeline=True)
        prof.run_callback(busy, 7.25)
        [ev] = prof.timeline_events
        assert isinstance(ev, TimelineEvent)
        assert ev.sim_time_s == 7.25
        assert ev.duration_s > 0
        assert ev.start_s >= 0
        assert ev.name == ev.stack[-1]

    def test_timeline_off_by_default(self):
        prof = KernelProfiler()
        prof.run_callback(busy, 0.0)
        assert prof.timeline_events == []

    def test_overflow_drops_newest_and_counts(self):
        prof = KernelProfiler(timeline=True, max_timeline_events=2)
        for _ in range(5):
            prof.run_callback(busy, 0.0)
        assert len(prof.timeline_events) == 2
        assert prof.timeline_dropped == 3
        assert "dropped" in prof.report()
        # aggregates still see every call
        assert prof.events_total == 5

    def test_clear_resets_everything(self):
        prof = KernelProfiler(timeline=True, max_timeline_events=1)
        prof.run_callback(busy, 0.0)
        prof.run_callback(busy, 0.0)
        prof.count_bytes("k", 1)
        prof.clear()
        assert prof.timeline_events == []
        assert prof.timeline_dropped == 0
        assert prof.events_total == 0
        assert prof.bytes_counts() == []
        assert prof.stack_stats() == []


class TestChromeTrace:
    def make_trace(self):
        prof = KernelProfiler(timeline=True)

        def callback():
            t0 = prof.begin()
            busy()
            prof.end_section("hot.inner", t0, 2.0)

        prof.run_callback(callback, 1.0)
        return prof, prof.chrome_trace()

    def test_structure_is_chrome_trace(self):
        _, trace = self.make_trace()
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X"}
        for ev in events:
            assert ev["pid"] == 1 and ev["tid"] == 1
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 2  # the callback and its nested section
        for ev in xs:
            assert ev["ts"] >= 0 and ev["dur"] > 0
            assert "sim_time_s" in ev["args"]
            assert ev["name"] in ev["args"]["stack"]

    def test_nested_section_contained_in_parent_span(self):
        _, trace = self.make_trace()
        xs = sorted((e for e in trace["traceEvents"] if e["ph"] == "X"),
                    key=lambda e: e["dur"], reverse=True)
        outer, inner = xs
        assert inner["args"]["stack"].startswith(outer["name"])
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3

    def test_json_serializable_and_metadata(self):
        prof, trace = self.make_trace()
        text = json.dumps(trace)
        assert json.loads(text) == trace
        assert trace["otherData"]["events_total"] == 1
        assert trace["otherData"]["timeline_dropped"] == 0
        assert trace["otherData"]["component_wall_ms"]

    def test_without_timeline_only_metadata(self):
        prof = KernelProfiler()
        prof.run_callback(busy, 0.0)
        trace = prof.chrome_trace()
        assert all(e["ph"] == "M" for e in trace["traceEvents"])


class TestCollapsedStacks:
    def test_lines_are_stack_space_micros(self):
        prof = KernelProfiler()

        def callback():
            t0 = prof.begin()
            busy(20000)
            prof.end_section("hot.inner", t0)

        prof.run_callback(callback, 0.0)
        text = prof.collapsed_stacks()
        lines = text.splitlines()
        assert lines
        for line in lines:
            stack, us = line.rsplit(" ", 1)
            assert int(us) > 0
            assert stack
        assert any(";hot.inner" in line for line in lines)
        # deterministic ordering: sorted by stack path
        assert lines == sorted(lines)

    def test_empty_profiler_empty_output(self):
        assert KernelProfiler().collapsed_stacks() == ""
