"""Span tracing and kernel profiling over a real simulator."""

import pytest

from repro.obs import KernelProfiler, SpanTracer, extract_span_records, span_depths
from repro.obs.spans import _NULL_SPAN
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer


def make_tracer(enabled=True):
    sim = Simulator()
    return sim, SpanTracer(sim, Tracer(enabled=enabled))


class TestSpans:
    def test_pairing_and_duration(self):
        sim, spans = make_tracer()

        def proc():
            with spans.span("t", "outer"):
                yield 2.0

        sim.process(proc())
        sim.run()
        (rec,) = extract_span_records(spans.tracer)
        assert rec.name == "outer"
        assert rec.start == 0.0
        assert rec.duration == pytest.approx(2.0)

    def test_nesting_and_depths(self):
        sim, spans = make_tracer()

        def proc():
            with spans.span("t", "outer"):
                yield 1.0
                with spans.span("t", "inner"):
                    yield 1.0

        sim.process(proc())
        sim.run()
        records = extract_span_records(spans.tracer)
        assert [r.name for r in records] == ["outer", "inner"]
        outer, inner = records
        assert inner.parent_id == outer.span_id
        depths = span_depths(records)
        assert depths[outer.span_id] == 0
        assert depths[inner.span_id] == 1

    def test_annotate_and_fields(self):
        sim, spans = make_tracer()
        with spans.span("t", "s", route="direct") as sp:
            sp.annotate(bytes=42)
        (rec,) = extract_span_records(spans.tracer)
        assert rec.field("route") == "direct"
        assert rec.field("bytes") == 42
        assert rec.field("missing", "dflt") == "dflt"

    def test_exception_recorded_and_propagated(self):
        sim, spans = make_tracer()
        with pytest.raises(ValueError):
            with spans.span("t", "boom"):
                raise ValueError("x")
        (rec,) = extract_span_records(spans.tracer)
        assert rec.field("error") == "ValueError"

    def test_unfinished_span_dropped(self):
        sim, spans = make_tracer()
        spans.span("t", "open").__enter__()  # never exited
        assert extract_span_records(spans.tracer) == []

    def test_depth_tracks_stack(self):
        sim, spans = make_tracer()
        assert spans.depth == 0
        with spans.span("t", "a"):
            assert spans.depth == 1
        assert spans.depth == 0


class TestDisabledSpans:
    """Satellite: disabled tracing must allocate nothing and emit nothing."""

    def test_null_span_is_shared_singleton(self):
        _, spans = make_tracer(enabled=False)
        assert not spans.enabled
        s1 = spans.span("t", "a")
        s2 = spans.span("t", "b", route="direct")
        assert s1 is _NULL_SPAN and s2 is _NULL_SPAN

    def test_null_span_noops(self):
        _, spans = make_tracer(enabled=False)
        with spans.span("t", "a") as sp:
            sp.annotate(k="v")
        assert len(spans.tracer) == 0
        assert extract_span_records(spans.tracer) == []

    def test_null_span_consumes_no_ids(self):
        _, spans = make_tracer(enabled=False)
        spans.span("t", "a")
        assert next(spans._ids) == 1  # nothing was drawn from the counter


class TestKernelProfiler:
    def test_simulator_routes_callbacks_through_profiler(self):
        prof = KernelProfiler()
        sim = Simulator(profiler=prof)

        def proc():
            yield 1.0
            yield 1.0

        sim.process(proc())
        sim.run()
        assert prof.events_total > 0
        stats = prof.callback_stats()
        assert stats, "expected at least one attributed callback"
        keys = [k for k, _, _ in stats]
        assert any("repro.sim.kernel" in k for k in keys)
        assert all(wall >= 0 for _, _, wall in stats)

    def test_profiler_does_not_change_results(self):
        def run(profiler):
            sim = Simulator(profiler=profiler)
            out = []

            def proc():
                yield 1.5
                out.append(sim.now)

            sim.process(proc())
            sim.run()
            return out

        assert run(None) == run(KernelProfiler())

    def test_sections_and_counts(self):
        prof = KernelProfiler()
        t0 = prof.begin()
        prof.end_section("hot.loop", t0)
        prof.count("events", 3)
        assert prof.section_stats()[0][0] == "hot.loop"
        assert prof.counts() == [("events", 3)]

    def test_disabled_profiler_noops(self):
        prof = KernelProfiler(enabled=False)
        ran = []
        prof.run_callback(lambda: ran.append(1))
        assert ran == [1]  # still executes the callback
        assert prof.events_total == 0
        assert prof.callback_stats() == []
        assert prof.begin() is None
        prof.end_section("x", None)
        prof.count("x")
        assert prof.section_stats() == [] and prof.counts() == []

    def test_report_renders(self):
        prof = KernelProfiler()
        prof.run_callback(lambda: None)
        text = prof.report()
        assert "kernel profile" in text and "wall ms" in text

    def test_clear(self):
        prof = KernelProfiler()
        prof.run_callback(lambda: None)
        prof.clear()
        assert prof.events_total == 0 and prof.callback_stats() == []
