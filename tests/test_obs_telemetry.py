"""Campaign telemetry: event stream, aggregator, and the no-perturbation
invariant (telemetry-on parallel == telemetry-off serial, byte for byte)."""

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    PoolConfig,
    ResultStore,
    export_records,
)
from repro.campaign.pool import execute_cells
from repro.campaign.store import TIMEOUT_KIND
from repro.errors import ObservabilityError
from repro.measure import ExperimentProtocol
from repro.obs import (
    MetricsRegistry,
    ProgressSnapshot,
    TelemetryAggregator,
    TelemetryEvent,
    render_event,
    render_progress,
)
from repro.obs.telemetry import EVENT_KINDS, as_sink, reindexed

pytestmark = pytest.mark.campaign

FAST_PROTO = ExperimentProtocol(2, 0, 1.0)


def small_spec(**over) -> CampaignSpec:
    kw = dict(clients=("ubc",), providers=("gdrive", "dropbox"),
              sizes_mb=(1.0, 2.0), protocol=FAST_PROTO, cross_traffic=False)
    kw.update(over)
    return CampaignSpec(**kw)


class TestTelemetryEvent:
    def test_round_trips_through_dict(self):
        ev = TelemetryEvent("cell_finished", "ubc/gdrive/direct/1MB", 3,
                            attempt=2, status="ok", wall_s=0.25,
                            queue_depth=4, running=2, worker=123)
        assert TelemetryEvent.from_dict(ev.to_dict()) == ev

    def test_unknown_kind_rejected(self):
        with pytest.raises(ObservabilityError):
            TelemetryEvent("cell_exploded", "c", 0)

    def test_as_sink_variants(self):
        seen = []
        assert as_sink(None) is None
        as_sink(seen.append)(TelemetryEvent("cell_started", "c", 0))
        agg = TelemetryAggregator()
        as_sink(agg)(TelemetryEvent("cell_started", "c", 1))
        assert len(seen) == 1
        assert agg.snapshot().started == 1
        with pytest.raises(ObservabilityError):
            as_sink(42)

    def test_reindexed_rewrites_pool_local_indexes(self):
        seen = []
        sink = reindexed(seen.append, [7, 9])
        sink(TelemetryEvent("cell_started", "c", 0))
        sink(TelemetryEvent("cell_started", "c", 1))
        assert [ev.index for ev in seen] == [7, 9]


class TestAggregator:
    def events_for_one_cell(self):
        return [
            TelemetryEvent("cell_started", "c0", 0, queue_depth=1, running=1),
            TelemetryEvent("cell_finished", "c0", 0, status="ok", wall_s=0.5),
            TelemetryEvent("cell_cached", "c1", 1, status="ok"),
        ]

    def test_folds_stream_into_snapshot(self):
        agg = TelemetryAggregator()
        agg.expect(2)
        for ev in self.events_for_one_cell():
            agg.emit(ev)
        snap = agg.snapshot()
        assert isinstance(snap, ProgressSnapshot)
        assert snap.total == 2
        assert snap.started == 1
        assert snap.finished_ok == 1
        assert snap.cached == 1
        assert snap.done == 2 and snap.errors == 0
        assert snap.wall_s_total == 0.5
        assert snap.last_cell == "c1"

    def test_metrics_series(self):
        agg = TelemetryAggregator()
        for ev in self.events_for_one_cell():
            agg.emit(ev)
        m = agg.metrics
        assert m.get("repro_campaign_events_total").total() == 3
        assert m.get("repro_campaign_store_hits_total").total() == 1
        assert m.get("repro_campaign_store_misses_total").total() == 1
        assert m.get("repro_campaign_cell_wall_seconds").count() == 1
        assert m.get("repro_campaign_cell_wall_seconds").sum() == 0.5

    def test_retry_does_not_count_a_second_miss(self):
        agg = TelemetryAggregator()
        agg.emit(TelemetryEvent("cell_started", "c", 0, attempt=1))
        agg.emit(TelemetryEvent("cell_retried", "c", 0, attempt=1,
                                error_kind="crash"))
        agg.emit(TelemetryEvent("cell_started", "c", 0, attempt=2))
        assert agg.metrics.get("repro_campaign_store_misses_total").total() == 1
        assert agg.snapshot().started == 2
        assert agg.snapshot().retried == 1

    def test_on_event_hook_and_keep_events(self):
        seen = []
        agg = TelemetryAggregator(on_event=seen.append, keep_events=2)
        for ev in self.events_for_one_cell():
            agg.emit(ev)
        assert len(seen) == 3
        assert len(agg.events) == 2  # ring: oldest dropped
        assert agg.events[-1].kind == "cell_cached"


class TestRendering:
    def test_render_event_lines(self):
        line = render_event(TelemetryEvent(
            "cell_finished", "ubc/gdrive/direct/1MB", 4, status="ok",
            wall_s=0.31, queue_depth=2, running=3))
        assert "finished" in line and "#4" in line
        assert "ok in 0.31s" in line
        assert "[3 running, 2 queued]" in line
        assert "ubc/gdrive/direct/1MB" in line
        retry = render_event(TelemetryEvent(
            "cell_retried", "c", 0, attempt=2, error_kind=TIMEOUT_KIND))
        assert "attempt 2" in retry and TIMEOUT_KIND in retry

    def test_render_progress_bar(self):
        snap = ProgressSnapshot(total=4, finished_ok=2, running=1,
                                queue_depth=1, wall_s_total=1.5)
        line = render_progress(snap, width=4)
        assert "[##..] 2/4" in line
        assert "ok 2 err 0" in line
        assert "1 running, 1 queued" in line
        assert "cell wall 1.5s" in line

    def test_render_progress_unknown_total(self):
        assert "0/?" in render_progress(ProgressSnapshot())


def stream_of(spec, jobs, **runner_kw):
    events = []
    agg = TelemetryAggregator(on_event=events.append)
    result = CampaignRunner(spec, pool=PoolConfig(jobs=jobs),
                            telemetry=agg, **runner_kw).run()
    return result, agg, events


class TestPoolStreams:
    def test_serial_pool_emits_start_finish_pairs(self):
        cells = small_spec().expand()
        events = []
        execute_cells(cells, PoolConfig(jobs=1), telemetry=events.append)
        kinds = [ev.kind for ev in events]
        assert kinds == ["cell_started", "cell_finished"] * len(cells)
        for i, cell in enumerate(cells):
            started, finished = events[2 * i], events[2 * i + 1]
            assert started.index == finished.index == i
            assert started.cell == finished.cell == cell.describe()
            assert started.queue_depth == len(cells) - i - 1
            assert finished.status == "ok"
            assert finished.wall_s > 0
            assert finished.worker == 0  # in-process path

    def test_parallel_pool_streams_with_worker_pids(self):
        cells = small_spec().expand()
        events = []
        execute_cells(cells, PoolConfig(jobs=3), telemetry=events.append)
        started = [ev for ev in events if ev.kind == "cell_started"]
        finished = [ev for ev in events if ev.kind == "cell_finished"]
        assert len(started) == len(finished) == len(cells)
        assert {ev.index for ev in finished} == set(range(len(cells)))
        assert all(ev.worker > 0 for ev in finished)
        assert all(ev.running <= 3 for ev in events)
        # a started cell is in flight when its event fires
        assert all(ev.running >= 1 for ev in started)

    def test_timeout_emits_retried_then_quarantined(self):
        cells = small_spec(providers=("gdrive",), sizes_mb=(1.0,),
                           routes=("direct",)).expand()
        events = []
        execute_cells(cells, PoolConfig(jobs=2, timeout_s=0.001, retries=1),
                      telemetry=events.append)
        kinds = [ev.kind for ev in events]
        assert kinds == ["cell_started", "cell_retried",
                         "cell_started", "cell_quarantined"]
        assert events[1].error_kind == TIMEOUT_KIND
        assert events[3].error_kind == TIMEOUT_KIND
        assert events[2].attempt == 2

    def test_no_sink_accepts_none(self):
        cells = small_spec(providers=("gdrive",), sizes_mb=(1.0,),
                           routes=("direct",)).expand()
        assert len(execute_cells(cells, PoolConfig(jobs=1))) == 1


class TestRunnerStream:
    def test_cached_cells_emit_cell_cached_in_spec_order(self, tmp_path):
        store = ResultStore(tmp_path / "cells")
        CampaignRunner(small_spec(sizes_mb=(1.0,)), store=store).run()
        spec = small_spec()
        result, agg, events = stream_of(spec, jobs=1, store=store)
        cached = [ev for ev in events if ev.kind == "cell_cached"]
        executed = [ev for ev in events if ev.kind == "cell_finished"]
        assert len(cached) == result.cached == 6
        assert len(executed) == result.executed == 6
        # indexes are spec positions, disjoint, and cover the matrix
        cells = spec.expand()
        assert all(cells[ev.index].describe() == ev.cell for ev in events)
        assert {ev.index for ev in cached} | {ev.index for ev in executed} \
            == set(range(len(cells)))
        snap = agg.snapshot()
        assert snap.total == len(cells)
        assert snap.done == len(cells)
        assert agg.metrics.get("repro_campaign_store_hits_total").total() == 6
        assert agg.metrics.get("repro_campaign_store_misses_total").total() == 6

    def test_aggregator_registry_can_be_shared_with_runner(self):
        registry = MetricsRegistry()
        spec = small_spec(sizes_mb=(1.0,))
        agg = TelemetryAggregator(metrics=registry)
        CampaignRunner(spec, pool=PoolConfig(jobs=1), metrics=registry,
                       telemetry=agg).run()
        # runner counters and telemetry counters agree, not double-count
        cells = len(spec.expand())
        assert registry.get("repro_campaign_cells_executed_total").total() \
            == cells
        assert registry.get("repro_campaign_events_total").total() == 2 * cells
        assert registry.get("repro_campaign_store_misses_total").total() \
            == cells


class TestTelemetryIsObservational:
    def test_jobs4_with_telemetry_byte_identical_to_serial_without(self):
        spec = small_spec()
        plain = CampaignRunner(spec, pool=PoolConfig(jobs=1)).run()
        result, agg, events = stream_of(spec, jobs=4)
        assert export_records(result.records, spec) == \
            export_records(plain.records, spec)
        assert agg.snapshot().done == len(spec.expand())
        assert len(events) == 2 * len(spec.expand())

    def test_wall_s_is_telemetry_only_never_in_records(self):
        spec = small_spec(sizes_mb=(1.0,))
        result, agg, events = stream_of(spec, jobs=1)
        payload = export_records(result.records, spec)
        assert "wall_s" not in payload
        assert agg.snapshot().wall_s_total > 0


class TestCliProgress:
    ARGS = ["--clients", "ubc", "--providers", "gdrive", "--routes",
            "direct;via umich", "--sizes-mb", "1", "--fast"]

    def test_campaign_run_progress_streams_to_stderr(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["campaign", "run", *self.ARGS,
                         "--cache-dir", str(tmp_path / "cells"),
                         "--jobs", "2", "--progress"]) == 0
        captured = capsys.readouterr()
        assert "executed 2" in captured.out  # stdout stays the summary
        assert "started" in captured.err
        assert "finished" in captured.err
        assert "campaign [" in captured.err  # final progress bar
        assert "2/2" in captured.err

    def test_campaign_status_watch_exits_when_complete(self, tmp_path,
                                                       capsys):
        from repro.cli import main as cli_main

        store = str(tmp_path / "cells")
        assert cli_main(["campaign", "run", *self.ARGS,
                         "--cache-dir", store]) == 0
        capsys.readouterr()
        assert cli_main(["campaign", "status", *self.ARGS,
                         "--cache-dir", store, "--watch",
                         "--interval-s", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "campaign [" in out and "2/2" in out


class TestEventKindsCatalogue:
    def test_every_kind_is_constructible_and_rendered(self):
        for kind in EVENT_KINDS:
            line = render_event(TelemetryEvent(kind, "c", 0))
            assert kind[5:] in line
