"""Overlay substrate: probe mesh, RON indirection, TIV catalog."""

import pytest

from repro.errors import SelectionError
from repro.overlay import (
    ProbeMesh,
    ResilientOverlay,
    bandwidth_tiv,
    catalog_tivs,
    latency_tiv,
)
from repro.testbed import build_case_study
from repro.transfer import FileSpec
from repro.units import mb, mbps

MEMBERS = ["ubc-pl", "ualberta-dtn", "umich-pl", "purdue-pl"]


def drive(world, gen):
    proc = world.sim.process(gen)
    world.sim.run_until_triggered(proc.done, horizon=1e7)
    if proc.error:
        raise proc.error
    return proc.result


@pytest.fixture(scope="module")
def probed():
    """A quiet case-study world with one completed probe round."""
    world = build_case_study(seed=0, cross_traffic=False)
    mesh = ProbeMesh(world, MEMBERS, probe_bytes=int(mb(1)))
    drive(world, mesh.probe_round())
    return world, mesh


class TestProbeMesh:
    def test_validation(self):
        world = build_case_study(seed=0, cross_traffic=False)
        with pytest.raises(SelectionError):
            ProbeMesh(world, ["ubc-pl"])
        with pytest.raises(SelectionError):
            ProbeMesh(world, ["ubc-pl", "ubc-pl"])
        with pytest.raises(SelectionError):
            ProbeMesh(world, MEMBERS, probe_bytes=0)

    def test_round_covers_all_pairs(self, probed):
        _, mesh = probed
        assert mesh.coverage() == 1.0
        assert len(mesh.pairs()) == 12

    def test_estimates_reflect_calibration(self, probed):
        _, mesh = probed
        fast = mesh.estimate("ubc-pl", "ualberta-dtn").bandwidth_bps
        slow = mesh.estimate("ubc-pl", "umich-pl").bandwidth_bps
        assert fast > 2.5 * slow  # 42ish vs 7.6ish Mbps

    def test_purdue_uplink_seen_everywhere(self, probed):
        _, mesh = probed
        for dst in ["ubc-pl", "ualberta-dtn", "umich-pl"]:
            assert mesh.estimate("purdue-pl", dst).bandwidth_bps < mbps(6)

    def test_ewma_smoothing(self, probed):
        world, mesh = probed
        est = mesh.estimate("ubc-pl", "ualberta-dtn")
        first = est.bandwidth_bps
        drive(world, mesh.probe_pair("ubc-pl", "ualberta-dtn"))
        assert est.samples >= 2
        # quiet world: repeated probes agree closely
        assert est.bandwidth_bps == pytest.approx(first, rel=0.2)

    def test_periodic_probe_process(self):
        world = build_case_study(seed=0, cross_traffic=False)
        mesh = ProbeMesh(world, ["ubc-pl", "ualberta-dtn"], probe_bytes=int(mb(1)))
        mesh.run_periodic(interval_s=30.0)
        world.sim.run(until=200)
        assert mesh.estimate("ubc-pl", "ualberta-dtn").samples >= 3


class TestResilientOverlay:
    def test_direct_selected_for_fast_pair(self, probed):
        _, mesh = probed
        ron = ResilientOverlay(mesh)
        path = ron.select_path("ubc-pl", "ualberta-dtn", int(mb(50)))
        assert path.is_direct

    def test_relay_selected_when_direct_is_slow(self, probed):
        """UBC -> UMich is 7.6 Mbps direct; no relay helps (all relays
        funnel through the same peering), so direct should win; but
        Purdue -> ... hmm: verify RON picks a relay only when it truly
        predicts better."""
        _, mesh = probed
        ron = ResilientOverlay(mesh)
        path = ron.select_path("ubc-pl", "umich-pl", int(mb(50)))
        best_pred = path.predicted_s
        for relay in ["ualberta-dtn", "purdue-pl"]:
            pred = ron.predict("ubc-pl", "umich-pl", int(mb(50)), relay)
            assert pred is None or pred >= best_pred - 1e-9

    def test_selection_requires_probe_data(self):
        world = build_case_study(seed=0, cross_traffic=False)
        mesh = ProbeMesh(world, ["ubc-pl", "ualberta-dtn"])
        ron = ResilientOverlay(mesh)
        with pytest.raises(SelectionError, match="probe data"):
            ron.select_path("ubc-pl", "ualberta-dtn", int(mb(10)))

    def test_non_member_rejected(self, probed):
        _, mesh = probed
        ron = ResilientOverlay(mesh)
        with pytest.raises(SelectionError):
            ron.select_path("ubc-pl", "gdrive-frontend", int(mb(10)))
        with pytest.raises(SelectionError):
            ron.select_path("ubc-pl", "ubc-pl", int(mb(10)))

    def test_send_executes_selected_path(self, probed):
        world, mesh = probed
        ron = ResilientOverlay(mesh)
        path, elapsed = drive(world, ron.send("ubc-pl", "ualberta-dtn",
                                              FileSpec("o.bin", int(mb(20)))))
        assert path.is_direct
        # 20 MB at ~42 Mbps plus handshakes
        assert 3 < elapsed < 7
        # prediction conservative but same order of magnitude (small probes
        # are handshake-dominated, underestimating bandwidth)
        assert 0.3 < path.predicted_s / elapsed < 3.0

    def test_path_hops(self, probed):
        _, mesh = probed
        ron = ResilientOverlay(mesh)
        path = ron.select_path("ubc-pl", "umich-pl", int(mb(10)))
        hops = path.hops()
        assert hops[0][0] == "ubc-pl" and hops[-1][1] == "umich-pl"


class TestTiv:
    def test_latency_tiv_predicate(self):
        assert latency_tiv(0.100, 0.030, 0.040)
        assert not latency_tiv(0.060, 0.030, 0.040)
        with pytest.raises(SelectionError):
            latency_tiv(0, 1, 1)

    def test_bandwidth_tiv_predicate(self):
        # direct 9.6 Mbps; legs 42 and 47 -> violation
        assert bandwidth_tiv(mbps(9.6), mbps(42), mbps(47))
        assert not bandwidth_tiv(mbps(50), mbps(42), mbps(47))
        with pytest.raises(SelectionError):
            bandwidth_tiv(1, -1, 1)

    def test_catalog_finds_ubc_umich_bandwidth_tiv(self, probed):
        """UBC->UMich direct is 7.6 Mbps but UBC->UAlberta->UMich... both
        legs cross the same 8 Mbps peering, so *that* is not a TIV.  The
        real TIV in this world involves Purdue-destined paths; verify the
        catalog is consistent with leg estimates rather than asserting a
        specific entry."""
        _, mesh = probed
        records = catalog_tivs(mesh, margin=1.05)
        for rec in records:
            if rec.kind == "bandwidth":
                leg1 = mesh.estimate(rec.src, rec.relay).bandwidth_bps
                leg2 = mesh.estimate(rec.relay, rec.dst).bandwidth_bps
                direct = mesh.estimate(rec.src, rec.dst).bandwidth_bps
                assert min(leg1, leg2) > 1.05 * direct

    def test_catalog_sorted_by_severity(self, probed):
        _, mesh = probed
        records = catalog_tivs(mesh, margin=1.0)
        sev = [r.severity for r in records]
        assert sev == sorted(sev, reverse=True)

    def test_record_describe(self):
        from repro.overlay import TivRecord

        rec = TivRecord("bandwidth", "a", "b", "c", mbps(10), mbps(40))
        text = rec.describe()
        assert "via b" in text and "4.00x" in text
