"""Packet-level AIMD simulation validating the fluid max-min assumption."""

import numpy as np
import pytest

from repro.net import FlowSpec, max_min_allocation
from repro.net.packetsim import AimdFlow, BottleneckSim, simulate_shares
from repro.units import mbps


class TestAimdMechanics:
    def test_single_flow_saturates_link(self):
        shares = simulate_shares(mbps(10), [0.05], duration_s=60)
        assert shares[0] > 0.75 * mbps(10)
        assert shares[0] <= mbps(10) * 1.15  # bounded by capacity (+buffer slack)

    def test_loss_halves_window(self):
        f = AimdFlow(0, rtt_s=0.05, cwnd_segments=16)
        f.on_loss()
        assert f.cwnd_segments == 8
        f.cwnd_segments = 1.5
        f.on_loss()
        assert f.cwnd_segments == 1.0  # floor

    def test_ack_round_adds_one_segment(self):
        f = AimdFlow(0, rtt_s=0.05, cwnd_segments=10)
        f.on_ack_round()
        assert f.cwnd_segments == 11

    def test_validation(self):
        with pytest.raises(ValueError):
            BottleneckSim(0, [AimdFlow(0, 0.05)])
        with pytest.raises(ValueError):
            BottleneckSim(mbps(10), [])


class TestFluidModelValidation:
    """The reason this module exists: does max-min match AIMD?"""

    def test_equal_rtt_flows_share_fairly(self):
        """Two same-RTT AIMD flows converge to ~half the link each —
        exactly the fluid engine's allocation."""
        shares = simulate_shares(mbps(10), [0.05, 0.05], duration_s=120)
        fluid = max_min_allocation(
            [FlowSpec("a", ("L",)), FlowSpec("b", ("L",))], {"L": mbps(10)}
        )
        for measured, fid in zip(shares, ["a", "b"]):
            assert measured == pytest.approx(fluid[fid], rel=0.30)
        # mutual fairness is tighter than absolute throughput
        assert shares[0] / shares[1] == pytest.approx(1.0, abs=0.25)

    def test_many_flows_jain_fairness(self):
        shares = np.array(simulate_shares(mbps(20), [0.04] * 6, duration_s=120))
        jain = shares.sum() ** 2 / (len(shares) * (shares**2).sum())
        assert jain > 0.95  # near-perfect fairness

    def test_aggregate_utilization_high(self):
        shares = simulate_shares(mbps(20), [0.04] * 4, duration_s=120)
        assert sum(shares) > 0.8 * mbps(20)

    def test_rtt_bias_is_the_known_fluid_error(self):
        """AIMD favours short-RTT flows; max-min does not.  The fluid
        model's documented approximation error: bounded, not absent."""
        shares = simulate_shares(mbps(10), [0.02, 0.10], duration_s=180)
        short, long = shares
        assert short > long  # the bias exists...
        assert short / long < 8.0  # ...but is bounded for case-study RTT spreads
        # and the aggregate still matches the fluid total
        assert sum(shares) > 0.75 * mbps(10)

    def test_case_study_rtt_spread_error_is_moderate(self):
        """The case study's concurrent flows differ in RTT by at most
        ~3x (e.g. 30 ms vs 90 ms) — at that spread the fluid equal-share
        assumption errs by less than ~2.5x on the share ratio."""
        shares = simulate_shares(mbps(10), [0.03, 0.09], duration_s=180)
        ratio = shares[0] / shares[1]
        assert 1.0 < ratio < 3.5
