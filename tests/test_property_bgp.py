"""Property-based tests: valley-free BGP over random AS graphs.

Generates random Gao-Rexford economies (acyclic customer relationships
plus random peerings) and checks the structural invariants of every
computed route:

* the path is loop-free, starts at the observer, ends at the destination;
* consecutive ASes on the path are actual neighbors;
* the path is **valley-free**: reading from the traffic source, it climbs
  customer->provider edges, crosses at most one peering, then descends
  provider->customer edges;
* the route type matches the first edge's relationship;
* routes never traverse an edge an export filter forbids (spot-checked
  with a random single filter).
"""

from typing import Dict, List, Set, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RoutingError
from repro.net import ASGraph, AutonomousSystem, BgpRouteComputer, Relationship, RouteType


@st.composite
def as_graphs(draw):
    n = draw(st.integers(3, 9))
    numbers = list(range(1, n + 1))
    g = ASGraph()
    for num in numbers:
        g.add_as(AutonomousSystem(num, f"as{num}"))
    # random permutation defines the economic hierarchy (no cycles)
    order = draw(st.permutations(numbers))
    rank = {asn: i for i, asn in enumerate(order)}
    related: Set[Tuple[int, int]] = set()
    # customer edges: provider has lower rank index
    for i, provider in enumerate(order):
        for customer in order[i + 1:]:
            if draw(st.booleans()) and draw(st.integers(0, 2)) == 0:
                g.add_customer(provider, customer)
                related.add((provider, customer))
                related.add((customer, provider))
    # random peerings among unrelated pairs
    for i, a in enumerate(numbers):
        for b in numbers[i + 1:]:
            if (a, b) not in related and draw(st.integers(0, 3)) == 0:
                g.add_peering(a, b)
                related.add((a, b))
                related.add((b, a))
    g.validate()
    return g


def _classify_path(g: ASGraph, path: Tuple[int, ...]) -> List[Relationship]:
    """Relationship of each step as seen by the sender of that step."""
    return [g.relationship(a, b) for a, b in zip(path, path[1:])]


def _is_valley_free(steps: List[Relationship]) -> bool:
    """up* peer? down* when walking from traffic source to destination.

    A step whose next hop is my PROVIDER is 'up'; PEER is flat; CUSTOMER
    is 'down'.
    """
    phase = 0  # 0 = climbing, 1 = crossed the peak, 2 = descending
    for step in steps:
        if step is Relationship.PROVIDER:
            if phase != 0:
                return False
        elif step is Relationship.PEER:
            if phase != 0:
                return False
            phase = 1
        else:  # CUSTOMER: downhill
            phase = 2
    return True


@settings(max_examples=120, deadline=None)
@given(as_graphs())
def test_all_routes_structurally_sound(g):
    bgp = BgpRouteComputer(g)
    for dest in g.ases:
        table = bgp.table_for(dest)
        for observer, route in table.items():
            path = route.path
            assert path[0] == observer
            assert path[-1] == dest
            assert len(set(path)) == len(path), f"loop in {path}"
            for a, b in zip(path, path[1:]):
                assert b in g.neighbors(a), f"{a}-{b} not neighbors in {path}"


@settings(max_examples=120, deadline=None)
@given(as_graphs())
def test_all_routes_valley_free(g):
    bgp = BgpRouteComputer(g)
    for dest in g.ases:
        for observer, route in bgp.table_for(dest).items():
            if observer == dest:
                continue
            steps = _classify_path(g, route.path)
            assert _is_valley_free(steps), (
                f"valley in {route.path}: {[s.value for s in steps]}"
            )


@settings(max_examples=120, deadline=None)
@given(as_graphs())
def test_route_type_matches_first_edge(g):
    bgp = BgpRouteComputer(g)
    expected = {
        Relationship.CUSTOMER: RouteType.CUSTOMER,
        Relationship.PEER: RouteType.PEER,
        Relationship.PROVIDER: RouteType.PROVIDER,
    }
    for dest in g.ases:
        for observer, route in bgp.table_for(dest).items():
            if observer == dest:
                assert route.route_type is RouteType.ORIGIN
                continue
            first = g.relationship(observer, route.path[1])
            assert route.route_type is expected[first]


@settings(max_examples=120, deadline=None)
@given(as_graphs())
def test_customer_routes_preferred(g):
    """If any neighbor-customer of X originates/cones the destination,
    X's selected route must be a customer route (type preference)."""
    bgp = BgpRouteComputer(g)
    for dest in g.ases:
        table = bgp.table_for(dest)
        for observer, route in table.items():
            if observer == dest:
                continue
            has_customer_route = any(
                dest in g.customer_cone(c) for c in g.customers(observer)
            )
            if has_customer_route:
                assert route.route_type is RouteType.CUSTOMER, (
                    f"AS{observer} picked {route} despite a customer route to {dest}"
                )


@settings(max_examples=80, deadline=None)
@given(as_graphs(), st.randoms(use_true_random=False))
def test_export_filter_never_violated(g, rnd):
    """Install one random deny-all filter and verify no selected route
    traverses the filtered edge in the announcement direction."""
    edges = [(a, b) for a in g.ases for b in g.neighbors(a)]
    if not edges:
        return
    announcer, neighbor = rnd.choice(edges)
    g.set_export_filter(announcer, neighbor, lambda dest: False)
    bgp = BgpRouteComputer(g)
    for dest in g.ases:
        for observer, route in bgp.table_for(dest).items():
            # an announcement announcer->neighbor appears in a path as
            # ... neighbor, announcer ... (traffic flows opposite to
            # announcements)
            for a, b in zip(route.path, route.path[1:]):
                assert not (a == neighbor and b == announcer), (
                    f"route {route.path} uses filtered announcement "
                    f"{announcer}->{neighbor}"
                )


@settings(max_examples=60, deadline=None)
@given(as_graphs())
def test_reachability_is_monotone_up_the_cone(g):
    """If a customer can reach dest via its provider chain, so can the
    provider itself (provider routes come FROM providers)."""
    bgp = BgpRouteComputer(g)
    for dest in g.ases:
        table = bgp.table_for(dest)
        for observer, route in table.items():
            if route.route_type is RouteType.PROVIDER:
                assert route.path[1] in table, (
                    f"AS{observer} routes via AS{route.path[1]} which has no route"
                )
