"""Whole-stack fuzzing: random WorldBuilder scenarios resolve cleanly.

Hypothesis generates random economies (campuses, research/commodity
backbones, random peering and filters), and we assert the stack behaves:
every reachable host pair resolves to a loop-free valley-free path, every
unreachable pair raises :class:`RoutingError` (never crashes or loops),
and a transfer over any resolvable path completes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud import make_gdrive_protocol
from repro.errors import RoutingError
from repro.geo.sites import SITES, Site, SiteKind, register_site
from repro.geo.coords import GeoPoint
from repro.testbed import WorldBuilder
from repro.units import mb, mbps, ms

# one shared pool of synthetic sites (registered once)
for i in range(8):
    register_site(Site(f"fuzz-site-{i}", SiteKind.CLIENT,
                       GeoPoint(30.0 + i * 2, -120.0 + i * 5), f"Fuzz City {i}"))


@st.composite
def scenarios(draw):
    """A random but structurally valid multi-campus world description."""
    n_campuses = draw(st.integers(2, 4))
    n_backbones = draw(st.integers(1, 2))
    # campus i attaches to backbone (i % n_backbones) as customer, and
    # possibly to a second backbone too
    extra_homes = [draw(st.booleans()) for _ in range(n_campuses)]
    backbone_peerings = draw(st.booleans())
    provider_backbone = draw(st.integers(0, n_backbones - 1))
    filter_campus = draw(st.one_of(st.none(), st.integers(0, n_campuses - 1)))
    return (n_campuses, n_backbones, extra_homes, backbone_peerings,
            provider_backbone, filter_campus)


def build_world(desc, seed=0):
    (n_campuses, n_backbones, extra_homes, backbone_peerings,
     provider_backbone, filter_campus) = desc
    b = WorldBuilder(seed=seed)
    backbones = [b.autonomous_system(f"bb{i}") for i in range(n_backbones)]
    cloud = b.autonomous_system("cloud")
    for i, bb in enumerate(backbones):
        b.router(f"bb{i}-core", bb, site=f"fuzz-site-{i}")
    for i in range(n_backbones - 1):
        if backbone_peerings:
            b.peer(backbones[i], backbones[i + 1])
            b.link(f"bb{i}-core", f"bb{i+1}-core", mbps(500), ms(5))
    campuses = []
    for i in range(n_campuses):
        asn = b.autonomous_system(f"campus{i}")
        home = backbones[i % n_backbones]
        b.customer(home, asn)
        site = f"fuzz-site-{(i + 2) % 8}"
        b.campus(f"campus{i}", asn, access_bps=mbps(20 + 10 * i), site=site)
        b.link(f"campus{i}-border", f"bb{i % n_backbones}-core", mbps(1000), ms(2))
        if extra_homes[i] and n_backbones > 1:
            other = backbones[(i + 1) % n_backbones]
            b.customer(other, asn)
            b.link(f"campus{i}-border", f"bb{(i + 1) % n_backbones}-core",
                   mbps(1000), ms(3))
        campuses.append((f"campus{i}", asn))
    b.peer(backbones[provider_backbone], cloud)
    provider = b.provider("cloud", cloud, attach_to=f"bb{provider_backbone}-core",
                          protocol=make_gdrive_protocol(), site="fuzz-site-7",
                          peering_bps=mbps(100))
    if filter_campus is not None:
        # the provider's backbone refuses to announce cloud routes to one campus
        _, victim_asn = campuses[filter_campus]
        bb = backbones[filter_campus % n_backbones]
        if bb == backbones[provider_backbone]:
            b.export_filter(bb, victim_asn, lambda dest: dest != cloud)
    return b.build(), campuses


@settings(max_examples=40, deadline=None)
@given(scenarios())
def test_all_pairs_resolve_or_fail_cleanly(desc):
    world, campuses = build_world(desc)
    hosts = [world.host_of(name) for name, _ in campuses] + ["cloud-frontend"]
    for src in hosts:
        for dst in hosts:
            if src == dst:
                continue
            try:
                path = world.router.resolve(src, dst)
            except RoutingError:
                continue  # clean unreachability is acceptable
            assert path.nodes[0] == src and path.nodes[-1] == dst
            assert len(set(path.nodes)) == len(path.nodes)
            assert len(set(path.as_sequence)) == len(path.as_sequence)
            assert path.bottleneck_bps > 0


@settings(max_examples=15, deadline=None)
@given(scenarios())
def test_uploads_complete_where_routes_exist(desc):
    from repro.core import DirectRoute, PlanExecutor, TransferPlan
    from repro.transfer import FileSpec

    world, campuses = build_world(desc)
    executor = PlanExecutor(world)
    completed = 0
    for name, _ in campuses:
        try:
            world.router.resolve(world.host_of(name), "cloud-frontend")
        except RoutingError:
            continue
        result = executor.run(TransferPlan(
            name, "cloud", FileSpec(f"{name}.bin", int(mb(5))), DirectRoute()))
        assert result.total_s > 0
        completed += 1
    # Valley-freedom allows at most one peering edge, so exactly the
    # campuses homed under the provider's backbone (and not export-
    # filtered) are guaranteed reachability.
    (n_campuses, n_backbones, extra_homes, _, provider_backbone, filter_campus) = desc
    guaranteed = 0
    for i in range(n_campuses):
        homes = {i % n_backbones}
        if extra_homes[i] and n_backbones > 1:
            homes.add((i + 1) % n_backbones)
        if provider_backbone in homes and filter_campus != i:
            guaranteed += 1
    assert completed >= guaranteed
