"""System-level invariants: routing over the full testbed, engine conservation."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import NetworkEngine
from repro.net.topology import Link, Node, NodeKind, Topology
from repro.sim import Simulator
from repro.testbed import build_case_study
from repro.units import mb, mbps, ms


@pytest.fixture(scope="module")
def world():
    return build_case_study(seed=0, cross_traffic=False)


class TestRoutingInvariantsOnTestbed:
    """Exhaustive checks over every host pair of the case-study world."""

    def _host_pairs(self, world):
        """All meaningful pairs: provider frontends never talk to each
        other (stub content ASes with no transit between them)."""
        hosts = [n.name for n in world.topology.hosts()]
        frontends = {h for h in hosts if h.endswith("-frontend")}
        return [
            (a, b)
            for a, b in itertools.permutations(hosts, 2)
            if not (a in frontends and b in frontends)
        ]

    def test_every_host_pair_resolves(self, world):
        for src, dst in self._host_pairs(world):
            path = world.router.resolve(src, dst)
            assert path.nodes[0] == src and path.nodes[-1] == dst

    def test_paths_are_loop_free_and_connected(self, world):
        topo = world.topology
        for src, dst in self._host_pairs(world):
            path = world.router.resolve(src, dst)
            assert len(set(path.nodes)) == len(path.nodes)
            for a, b in zip(path.nodes, path.nodes[1:]):
                topo.link_between(a, b)  # raises if absent

    def test_metrics_positive_and_consistent(self, world):
        topo = world.topology
        for src, dst in self._host_pairs(world):
            path = world.router.resolve(src, dst)
            assert path.rtt_s > 0
            assert 0 <= path.loss < 1
            assert path.bottleneck_bps > 0
            # bottleneck really is the min effective capacity on the path
            caps = [
                topo.link_between(a, b).effective_capacity_bps(a)
                for a, b in zip(path.nodes, path.nodes[1:])
            ]
            assert path.bottleneck_bps == pytest.approx(min(caps))

    def test_as_sequence_matches_node_asns(self, world):
        topo = world.topology
        for src, dst in self._host_pairs(world):
            path = world.router.resolve(src, dst)
            collapsed = []
            for name in path.nodes:
                asn = topo.node(name).asn
                if not collapsed or collapsed[-1] != asn:
                    collapsed.append(asn)
            assert tuple(collapsed) == path.as_sequence

    def test_intermediate_ases_never_repeat(self, world):
        """Forwarding never re-enters an AS it left (no AS-level loops)."""
        for src, dst in self._host_pairs(world):
            path = world.router.resolve(src, dst)
            assert len(set(path.as_sequence)) == len(path.as_sequence)


# ---------------------------------------------------------------------------
# Engine conservation under random workloads
# ---------------------------------------------------------------------------


def _two_link_topo():
    topo = Topology()
    topo.add_node(Node("a", NodeKind.HOST, 1, "10.0.0.1"))
    topo.add_node(Node("m", NodeKind.ROUTER, 1, "10.0.0.2"))
    topo.add_node(Node("b", NodeKind.HOST, 1, "10.0.0.3"))
    topo.add_link(Link("a", "m", capacity_bps=mbps(20), delay_s=ms(1)))
    topo.add_link(Link("m", "b", capacity_bps=mbps(10), delay_s=ms(1)))
    return topo


@st.composite
def workloads(draw):
    n = draw(st.integers(1, 12))
    jobs = []
    for _ in range(n):
        start = draw(st.floats(min_value=0.0, max_value=30.0))
        size = draw(st.floats(min_value=1e5, max_value=2e7))
        route = draw(st.sampled_from(["full", "first", "second"]))
        jobs.append((start, size, route))
    return jobs


@settings(max_examples=80, deadline=None)
@given(workloads())
def test_engine_serves_everything_exactly_once(jobs):
    topo = _two_link_topo()
    sim = Simulator()
    engine = NetworkEngine(sim, topo)
    paths = {
        "full": topo.path_directions(["a", "m", "b"]),
        "first": topo.path_directions(["a", "m"]),
        "second": topo.path_directions(["m", "b"]),
    }
    results = []

    def launch(size, route):
        t = engine.start_transfer(paths[route], size)
        t.done._subscribe(sim, lambda v, e: results.append((v, e)))

    for start, size, route in jobs:
        sim.schedule(start, lambda size=size, route=route: launch(size, route))
    sim.run()

    assert len(results) == len(jobs)
    assert all(e is None for _, e in results)
    served = sorted(r.nbytes for r, _ in results)
    expected = sorted(size for _, size, _ in jobs)
    assert served == pytest.approx(expected)


@settings(max_examples=80, deadline=None)
@given(workloads())
def test_engine_never_beats_physics(jobs):
    """No transfer finishes faster than its bytes over its bottleneck."""
    topo = _two_link_topo()
    sim = Simulator()
    engine = NetworkEngine(sim, topo)
    paths = {
        "full": (topo.path_directions(["a", "m", "b"]), mbps(10)),
        "first": (topo.path_directions(["a", "m"]), mbps(20)),
        "second": (topo.path_directions(["m", "b"]), mbps(10)),
    }
    checks = []

    def launch(size, route):
        dirs, bottleneck = paths[route]
        t = engine.start_transfer(dirs, size)
        floor = size * 8 / bottleneck

        def verify(v, e):
            assert e is None
            checks.append(v.duration_s >= floor * (1 - 1e-9))

        t.done._subscribe(sim, verify)

    for start, size, route in jobs:
        sim.schedule(start, lambda size=size, route=route: launch(size, route))
    sim.run()
    assert len(checks) == len(jobs)
    assert all(checks)


@settings(max_examples=40, deadline=None)
@given(workloads())
def test_engine_single_link_work_conservation(jobs):
    """All flows on one link: total completion time is at least
    total_bytes/capacity after the last arrival could start."""
    topo = _two_link_topo()
    sim = Simulator()
    engine = NetworkEngine(sim, topo)
    dirs = topo.path_directions(["m", "b"])  # 10 Mbps
    done_times = []

    def launch(size):
        t = engine.start_transfer(dirs, size)
        t.done._subscribe(sim, lambda v, e: done_times.append(v.end_time))

    for start, size, _ in jobs:
        sim.schedule(start, lambda size=size: launch(size))
    sim.run()
    total_bytes = sum(size for _, size, _ in jobs)
    first_start = min(start for start, _, _ in jobs)
    lower_bound = first_start + total_bytes * 8 / mbps(10)
    assert max(done_times) >= lower_bound * (1 - 1e-9)
