"""RouteViews-style monitoring and policy-anomaly detection."""

import pytest

from repro.net import RouteCollector, detect_policy_anomalies
from repro.testbed import build_case_study
from repro.testbed.build import AS_NUMBERS


@pytest.fixture(scope="module")
def world():
    return build_case_study(seed=0, cross_traffic=False)


@pytest.fixture(scope="module")
def collector(world):
    return RouteCollector(world.router.bgp)


class TestRibSnapshots:
    def test_rib_covers_reachable_ases(self, collector):
        rib = collector.rib(AS_NUMBERS["google"])
        observers = {e.observer_asn for e in rib}
        # every eyeball/transit/research AS reaches Google; the other
        # content providers (stub ASes with only peerings) correctly
        # cannot — nobody sells them transit in this topology
        unreachable = {AS_NUMBERS["microsoft"], AS_NUMBERS["dropbox"]}
        assert observers == set(AS_NUMBERS.values()) - unreachable

    def test_origin_entry_present(self, collector):
        rib = collector.rib(AS_NUMBERS["google"])
        origin = [e for e in rib if e.observer_asn == AS_NUMBERS["google"]]
        assert origin[0].as_path == (AS_NUMBERS["google"],)
        assert origin[0].route_type == "origin"

    def test_dump_readable(self, collector):
        text = collector.dump(AS_NUMBERS["google"])
        assert "google" in text
        assert f"AS{AS_NUMBERS['canarie']}" in text

    def test_observers_grouped_by_next_hop(self, collector):
        groups = collector.observers_by_next_hop(AS_NUMBERS["google"])
        # UBC (via BCNET->CANARIE) and Purdue (via TransitA) take different
        # first hops toward Google
        ubc_next = next(k for k, v in groups.items() if AS_NUMBERS["ubc"] in v)
        purdue_next = next(k for k, v in groups.items() if AS_NUMBERS["purdue"] in v)
        assert ubc_next != purdue_next

    def test_purdue_vs_umich_divergence(self, collector):
        """TR-CPS: UMich reaches Google via Internet2; Purdue cannot."""
        groups = collector.observers_by_next_hop(AS_NUMBERS["google"])
        umich_next = next(k for k, v in groups.items() if AS_NUMBERS["umich"] in v)
        purdue_next = next(k for k, v in groups.items() if AS_NUMBERS["purdue"] in v)
        assert umich_next == AS_NUMBERS["internet2"]
        assert purdue_next == AS_NUMBERS["transit-a"]

    def test_path_disagreement_suffix(self, collector):
        """UBC and UAlberta share the CANARIE->Google suffix in *BGP*."""
        common = collector.path_disagreement(
            AS_NUMBERS["ubc"], AS_NUMBERS["ualberta"], AS_NUMBERS["google"])
        assert common == (AS_NUMBERS["canarie"], AS_NUMBERS["google"])


class TestPolicyAnomalies:
    def test_ubc_pacificwave_anomaly_detected(self, world):
        """The case study's artifact: invisible in BGP, visible in
        forwarding.  UBC's Google traffic transits AS4444 (Pacific Wave)
        which its BGP best path never selected."""
        anomalies = detect_policy_anomalies(
            world.router, ["ubc-pl", "ualberta-dtn", "umich-pl"], "gdrive-frontend")
        assert len(anomalies) == 1
        a = anomalies[0]
        assert a.src_host == "ubc-pl"
        assert AS_NUMBERS["pacificwave"] in a.extra_ases
        assert AS_NUMBERS["pacificwave"] not in a.bgp_as_path
        assert "AS4444" in a.render()

    def test_no_anomalies_toward_dropbox(self, world):
        """The PBR rule matches only Google-destined traffic."""
        anomalies = detect_policy_anomalies(
            world.router, ["ubc-pl", "ualberta-dtn", "purdue-pl"], "dropbox-frontend")
        assert anomalies == []

    def test_intra_as_flow_not_flagged(self, world):
        anomalies = detect_policy_anomalies(
            world.router, ["ualberta-core"], "ualberta-dtn")
        assert anomalies == []

    def test_anomaly_render(self, world):
        anomalies = detect_policy_anomalies(world.router, ["ubc-pl"], "gdrive-frontend")
        text = anomalies[0].render()
        assert "BGP says" in text and "forwarding takes" in text
