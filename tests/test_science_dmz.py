"""Firewall per-flow caps and the Science DMZ bypass."""

import pytest

from repro.core import DetourRoute, DirectRoute, PlanExecutor, TransferPlan
from repro.errors import TopologyError
from repro.net.topology import Node, NodeKind
from repro.testbed import DMZ_DTN_SITE, build_case_study, build_science_dmz_world
from repro.transfer import FileSpec
from repro.units import mb, mbps


def run_plan(world, client, provider, route):
    plan = TransferPlan(client, provider, FileSpec("t.bin", int(mb(100))), route)
    return PlanExecutor(world).run(plan).total_s


class TestFirewallCap:
    def test_cap_validation(self):
        with pytest.raises(TopologyError):
            Node("fw", NodeKind.MIDDLEBOX, 1, "10.0.0.1", firewall_per_flow_bps=0)

    def test_per_flow_cap_on_resolved_path(self):
        world = build_science_dmz_world(seed=0, per_flow_cap_bps=mbps(20),
                                        cross_traffic=False)
        behind = world.router.resolve("ualberta-dtn", "gdrive-frontend")
        assert behind.per_flow_cap_bps == pytest.approx(mbps(20))
        dmz = world.router.resolve("ualberta-dtn-dmz", "gdrive-frontend")
        assert dmz.per_flow_cap_bps == float("inf")

    def test_cap_only_applies_to_transit(self):
        """Endpoints don't cap themselves: a path *ending* at the firewall
        node (hypothetically) is not capped by it."""
        world = build_science_dmz_world(seed=0, per_flow_cap_bps=mbps(20),
                                        cross_traffic=False)
        # ubc -> ualberta-dtn transits the firewall -> capped
        path = world.router.resolve("ubc-pl", "ualberta-dtn")
        assert path.per_flow_cap_bps == pytest.approx(mbps(20))

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            build_science_dmz_world(per_flow_cap_bps=0)


class TestScienceDmzScenario:
    @pytest.fixture(scope="class")
    def world(self):
        return build_science_dmz_world(seed=0, per_flow_cap_bps=mbps(20),
                                       cross_traffic=False)

    def test_firewall_throttles_campus_upload(self, world):
        """UAlberta -> Drive behind the firewall: ~20 Mbit/s, not ~47."""
        t_fw = run_plan(world, "ualberta", "gdrive", DirectRoute())
        assert 38 < t_fw < 50  # 100 MB at 20 Mbit/s + overheads

    def test_dmz_dtn_restores_full_rate(self, world):
        t_dmz = run_plan(world, DMZ_DTN_SITE, "gdrive", DirectRoute())
        assert 14 < t_dmz < 22  # back to the 52 Mbit/s peering

    def test_detour_via_dmz_beats_detour_via_firewalled_dtn(self, world):
        via_fw = run_plan(world, "ubc", "gdrive", DetourRoute("ualberta"))
        via_dmz = run_plan(world, "ubc", "gdrive", DetourRoute(DMZ_DTN_SITE))
        assert via_dmz < via_fw
        # the firewalled detour loses its advantage partially but the DMZ
        # detour reproduces the paper's ~36 s
        assert 30 < via_dmz < 45

    def test_firewalled_detour_still_beats_policed_direct(self, world):
        """Even a 20 Mbit/s firewall beats the 9.6 Mbit/s pacificwave."""
        direct = run_plan(world, "ubc", "gdrive", DirectRoute())
        via_fw = run_plan(world, "ubc", "gdrive", DetourRoute("ualberta"))
        assert via_fw < direct

    def test_dmz_world_has_both_dtns(self, world):
        assert set(world.dtns) == {"ualberta", "umich", DMZ_DTN_SITE}

    def test_base_world_unaffected(self):
        """The baseline testbed has no firewall caps anywhere."""
        world = build_case_study(seed=0, cross_traffic=False)
        for name in ["ubc-pl", "purdue-pl", "ucla-pl", "umich-pl", "ualberta-dtn"]:
            path = world.router.resolve(name, "gdrive-frontend")
            assert path.per_flow_cap_bps == float("inf")

    def test_dmz_traceroute_skips_firewall(self, world):
        path = world.router.resolve("ualberta-dtn-dmz", "gdrive-frontend")
        assert "ualberta-fw" not in path.nodes
        behind = world.router.resolve("ualberta-dtn", "gdrive-frontend")
        assert "ualberta-fw" in behind.nodes
