"""Selection under failures: dead candidates are skipped, not fatal."""

import pytest

from repro.core import ProbeSelector, SelectionContext
from repro.errors import SelectionError
from repro.testbed import build_case_study
from repro.units import mb


def drive(world, gen):
    proc = world.sim.process(gen)
    world.sim.run_until_triggered(proc.done, horizon=1e7)
    if proc.error:
        raise proc.error
    return proc.result


class TestProbeSelectorFailures:
    def test_dead_detour_falls_back_to_direct(self):
        world = build_case_study(seed=0, cross_traffic=False)
        world.fail_link("canarie-vncv--canarie-edmn")  # UAlberta unreachable
        ctx = SelectionContext(world, "ubc", "gdrive", int(mb(100)),
                               ("ualberta",))
        selector = ProbeSelector()
        route = drive(world, selector.choose(ctx))
        assert route.is_direct
        assert selector.last_predictions["via ualberta"] == float("inf")

    def test_dead_direct_falls_back_to_detour(self):
        """Killing the Pacific Wave egress leaves the PBR fall-through
        direct path working; kill the whole CANARIE-Google picture except
        via UMich... simpler: sever the client's commodity side entirely
        is impossible here, so verify the detour wins when direct probes
        survive but a second detour is dead."""
        world = build_case_study(seed=0, cross_traffic=False)
        world.fail_link("canarie-vncv--i2-seattle")  # UMich detour dies
        ctx = SelectionContext(world, "ubc", "gdrive", int(mb(100)),
                               ("ualberta", "umich"))
        selector = ProbeSelector()
        route = drive(world, selector.choose(ctx))
        assert route.describe() == "via ualberta"
        assert selector.last_predictions["via umich"] == float("inf")

    def test_everything_dead_raises(self):
        world = build_case_study(seed=0, cross_traffic=False)
        world.fail_link("ubc-pl--ubc-campus")  # client fully cut off
        ctx = SelectionContext(world, "ubc", "gdrive", int(mb(100)),
                               ("ualberta",))
        with pytest.raises(SelectionError, match="routable"):
            drive(world, ProbeSelector().choose(ctx))
