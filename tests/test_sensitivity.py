"""Calibration sensitivity analysis machinery."""

import pytest

from repro.analysis import render_sensitivity, run_sensitivity
from repro.analysis.sensitivity import CONCLUSIONS, RATE_KNOBS, _Evaluator
from repro.testbed import DEFAULT_PARAMS
from repro.units import mbps


class TestEvaluator:
    def test_time_measures_and_caches(self):
        e = _Evaluator(DEFAULT_PARAMS, size_mb=20)
        t1 = e.time("ubc", "gdrive")
        t2 = e.time("ubc", "gdrive")
        assert t1 == t2  # cached
        assert 14 < t1 < 22  # 20 MB at 9.6 Mbit/s

    def test_detour_route(self):
        e = _Evaluator(DEFAULT_PARAMS, size_mb=20)
        assert e.time("ubc", "gdrive", "ualberta") < e.time("ubc", "gdrive")


class TestConclusions:
    def test_all_hold_at_baseline(self):
        e = _Evaluator(DEFAULT_PARAMS, size_mb=50)
        for c in CONCLUSIONS:
            assert c.check(e), c.description

    def test_extreme_perturbation_flips_the_right_conclusion(self):
        """Open the pacificwave policer to 60 Mbit/s: the UBC detour must
        stop winning — confirming the sensitivity machinery can detect
        flips at all (no always-true predicates)."""
        params = DEFAULT_PARAMS.with_overrides(pacificwave_policer_bps=mbps(60))
        e = _Evaluator(params, size_mb=50)
        by_name = {c.name: c for c in CONCLUSIONS}
        assert not by_name["ubc_gdrive_detour_wins"].check(e)
        assert by_name["ubc_dropbox_direct_wins"].check(e)  # untouched


class TestRunSensitivity:
    def test_small_run_structure(self):
        results = run_sensitivity(knobs=("ubc_access_bps",), factors=(0.8, 1.25),
                                  size_mb=30)
        assert len(results) == 2
        for r in results:
            assert set(r.conclusions) == {c.name for c in CONCLUSIONS}
            assert r.all_hold
            assert r.flipped == []

    def test_render(self):
        results = run_sensitivity(knobs=("ubc_access_bps",), factors=(1.25,),
                                  size_mb=30)
        text = render_sensitivity(results)
        assert "ubc_access_bps" in text and "x1.25" in text

    def test_knob_list_matches_params(self):
        for knob in RATE_KNOBS:
            assert hasattr(DEFAULT_PARAMS, knob)
