"""Shared directory service: snapshots, file tier, two-tier cache.

Includes the cross-process stress test docs/SHARDING.md points at: N
processes racing publishes of one name while the parent reads, with
every fetch required to parse as one of the candidate payloads (the
atomic-rename guarantee of ``repro.core.atomic``).
"""

import json
import multiprocessing

import pytest

from repro.broker import BrokerConfig, DirectorySnapshot, RouteDirectory
from repro.broker.directory import DirectoryEntry
from repro.errors import ShardError
from repro.obs.metrics import MetricsRegistry
from repro.shard import DirectoryFileTier, SharedDirectoryService, SiteReport
from repro.testbed import build_case_study
from repro.units import mb

pytestmark = pytest.mark.shard


def entry(site="ubc", provider="gdrive", cls="le8MB", route="via ualberta",
          installed=10.0, expires=510.0, source="probe"):
    return DirectoryEntry(site, provider, cls, route, installed, expires, source)


@pytest.fixture
def world():
    return build_case_study(seed=0, cross_traffic=False)


class TestDirectorySnapshot:
    def test_round_trips_through_canonical_dict(self):
        snap = DirectorySnapshot((entry(), entry(site="purdue", route="direct")))
        again = DirectorySnapshot.from_dict(snap.to_dict())
        assert again == snap
        assert again.content_hash() == snap.content_hash()

    def test_rejects_unknown_version(self):
        from repro.errors import BrokerError

        with pytest.raises(BrokerError, match="version"):
            DirectorySnapshot.from_dict({"version": 99, "entries": []})

    def test_restricted_keeps_only_served_pairs(self):
        snap = DirectorySnapshot((entry(), entry(site="purdue")))
        only = snap.restricted([("ubc", "gdrive")])
        assert [e.client_site for e in only.entries] == ["ubc"]

    def test_merged_is_freshest_wins_per_cohort(self):
        older = DirectorySnapshot((entry(installed=10.0, route="via ualberta"),))
        newer = DirectorySnapshot((entry(installed=20.0, route="via umich"),))
        merged = DirectorySnapshot.merged([newer, older])
        assert [e.route_descr for e in merged.entries] == ["via umich"]
        # tie on installed_s: the later snapshot in the fold order wins
        tied = DirectorySnapshot((entry(installed=20.0, route="direct"),))
        assert DirectorySnapshot.merged([newer, tied]).entries[0].route_descr \
            == "direct"

    def test_merged_unions_distinct_cohorts(self):
        a = DirectorySnapshot((entry(),))
        b = DirectorySnapshot((entry(site="purdue"), entry(cls="gt64MB")))
        merged = DirectorySnapshot.merged([a, b])
        assert len(merged) == 3
        assert merged.max_expires_s == 510.0


class TestRouteDirectorySnapshotting:
    def test_snapshot_preload_round_trip(self, world):
        directory = RouteDirectory(world, BrokerConfig(ttl_s=500.0))
        directory.install("ubc", "gdrive", int(mb(4)), "via ualberta",
                          source="probe")
        snap = directory.snapshot()
        assert len(snap) == 1

        sibling = RouteDirectory(build_case_study(seed=1, cross_traffic=False),
                                 BrokerConfig(ttl_s=500.0))
        loaded, stale = sibling.preload(snap)
        assert (loaded, stale) == (1, 0)
        hit = sibling.lookup("ubc", "gdrive", int(mb(4)))
        assert hit is not None and hit.route_descr == "via ualberta"
        assert sibling.warm_hits == 1

    def test_preload_skips_entries_already_expired(self, world):
        directory = RouteDirectory(world, BrokerConfig(ttl_s=50.0))
        directory.install("ubc", "gdrive", int(mb(4)), "via ualberta",
                          source="probe")
        snap = directory.snapshot()
        world.sim.run(100.0)  # past the snapshot's expiry
        fresh = RouteDirectory(world, BrokerConfig(ttl_s=50.0))
        assert fresh.preload(snap) == (0, 1)
        assert len(fresh) == 0

    def test_lazy_expiry_counts_an_eviction(self):
        world = build_case_study(seed=0, cross_traffic=False, metrics=True)
        directory = RouteDirectory(world, BrokerConfig(ttl_s=50.0))
        directory.install("ubc", "gdrive", int(mb(4)), "via ualberta",
                          source="probe")
        world.sim.run(51.0)
        assert directory.lookup("ubc", "gdrive", int(mb(4))) is None
        assert directory.evictions == 1
        samples = {(s.name, s.labels): s.value
                   for s in world.metrics.collect()}
        assert samples[("repro_broker_directory_evictions_total",
                        (("client", "ubc"), ("provider", "gdrive")))] == 1.0

    def test_eviction_series_exists_before_any_eviction(self):
        world = build_case_study(seed=0, cross_traffic=False, metrics=True)
        RouteDirectory(world, BrokerConfig())
        names = {s.name: s.value for s in world.metrics.collect()}
        assert names["repro_broker_directory_evictions_total"] == 0.0


class TestDirectoryFileTier:
    def test_publish_fetch_names(self, tmp_path):
        tier = DirectoryFileTier(tmp_path / "dir")
        tier.publish("alpha", {"x": 1})
        tier.publish("beta", {"y": 2})
        assert tier.fetch("alpha") == {"x": 1}
        assert tier.fetch("missing") is None
        assert tier.names() == ["alpha", "beta"]
        assert "alpha" in tier and "missing" not in tier
        assert len(tier) == 2

    def test_publish_is_atomic_replace(self, tmp_path):
        tier = DirectoryFileTier(tmp_path)
        tier.publish("doc", {"v": 1})
        tier.publish("doc", {"v": 2})
        assert tier.fetch("doc") == {"v": 2}
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_rejects_path_escaping_names(self, tmp_path):
        tier = DirectoryFileTier(tmp_path)
        for bad in ("../escape", "a/b", ".hidden", ""):
            with pytest.raises(ShardError, match="invalid"):
                tier.publish(bad, {})

    def test_corrupt_document_is_an_error_not_none(self, tmp_path):
        tier = DirectoryFileTier(tmp_path)
        path = tier.publish("doc", {"v": 1})
        path.write_text("{torn", encoding="utf-8")
        with pytest.raises(ShardError, match="corrupt"):
            tier.fetch("doc")

    def test_clean_tmp_sweeps_orphans_only(self, tmp_path):
        tier = DirectoryFileTier(tmp_path)
        tier.publish("doc", {"v": 1})
        # orphans a killed writer would leave: <name>.<pid>.tmp
        (tmp_path / "doc.json.1234.tmp").write_text("{half",
                                                    encoding="utf-8")
        (tmp_path / "other.json.77.tmp").write_text("", encoding="utf-8")
        assert tier.clean_tmp() == 2
        assert tier.fetch("doc") == {"v": 1}
        assert tier.names() == ["doc"]
        assert tier.clean_tmp() == 0


def _racing_publisher(root, name, worker_id, n_rounds):
    tier = DirectoryFileTier(root)
    for i in range(n_rounds):
        tier.publish(name, {"worker": worker_id, "round": i})


class TestCrossProcessPublishes:
    def test_racing_publishers_never_tear_a_document(self, tmp_path):
        root = tmp_path / "dir"
        tier = DirectoryFileTier(root)
        tier.publish("doc", {"worker": -1, "round": -1})
        n_workers, n_rounds = 4, 50
        procs = [multiprocessing.Process(
                    target=_racing_publisher,
                    args=(root, "doc", w, n_rounds))
                 for w in range(n_workers)]
        for p in procs:
            p.start()
        reads = 0
        try:
            while any(p.is_alive() for p in procs):
                payload = tier.fetch("doc")  # raises ShardError if torn
                assert set(payload) == {"worker", "round"}
                assert -1 <= payload["worker"] < n_workers
                assert -1 <= payload["round"] < n_rounds
                reads += 1
        finally:
            for p in procs:
                p.join()
        assert reads > 0
        assert all(p.exitcode == 0 for p in procs)
        # the final document is some worker's last round, whole
        final = tier.fetch("doc")
        assert final["round"] == n_rounds - 1
        # no temp debris: every publish either landed or was replaced
        assert tier.clean_tmp() == 0
        assert tier.names() == ["doc"]


class TestSiteReport:
    def _report(self, snapshot=None):
        return SiteReport(site="ubc", mode="broker", seed=3, warm_hash="abc",
                          n_uploads=20, probes_issued=6, directory_hits=10,
                          directory_misses=10, directory_evictions=1,
                          directory_warm_hits=4, invalidations=0,
                          admission_spills=2, snapshot=snapshot)

    def test_round_trips_with_snapshot(self):
        report = self._report(DirectorySnapshot((entry(),)))
        assert SiteReport.from_dict(report.to_dict()) == report

    def test_round_trips_json_via_file_tier(self, tmp_path):
        tier = DirectoryFileTier(tmp_path)
        report = self._report()
        tier.publish("site-abc", report.to_dict())
        payload = json.loads(tier.path_for("site-abc").read_text())
        assert SiteReport.from_dict(payload) == report

    def test_rejects_unknown_version(self):
        payload = self._report().to_dict()
        payload["version"] = 99
        with pytest.raises(ShardError, match="version"):
            SiteReport.from_dict(payload)


class TestSharedDirectoryService:
    def test_fetch_prefers_memory_then_disk(self, tmp_path):
        service = SharedDirectoryService(tmp_path)
        snap = DirectorySnapshot((entry(),))
        service.publish_snapshot("gen0", snap)
        assert service.fetch_snapshot("gen0") == snap
        assert service.memory_hits == 1 and service.disk_hits == 0

        # a fresh service (new process) starts cold: memory miss, disk
        # hit, then the backfilled snapshot serves from memory
        cold = SharedDirectoryService(tmp_path)
        assert cold.fetch_snapshot("gen0") == snap
        assert (cold.memory_misses, cold.disk_hits) == (1, 1)
        assert cold.fetch_snapshot("gen0") == snap
        assert cold.memory_hits == 1

    def test_unknown_name_is_a_double_miss(self, tmp_path):
        service = SharedDirectoryService(tmp_path)
        assert service.fetch_snapshot("nope") is None
        assert (service.memory_misses, service.disk_misses) == (1, 1)

    def test_publish_returns_content_hash_and_writes_through(self, tmp_path):
        service = SharedDirectoryService(tmp_path)
        snap = DirectorySnapshot((entry(),))
        assert service.publish_snapshot("gen0", snap) == snap.content_hash()
        assert "gen0" in service.tier
        assert service.publishes == 1

    def test_memory_tier_evicts_lru(self, tmp_path):
        service = SharedDirectoryService(tmp_path, max_memory_snapshots=2)
        snaps = {f"g{i}": DirectorySnapshot((entry(installed=float(i)),))
                 for i in range(3)}
        for name in ("g0", "g1"):
            service.publish_snapshot(name, snaps[name])
        service.fetch_snapshot("g0")  # g1 becomes the LRU victim
        service.publish_snapshot("g2", snaps["g2"])
        assert service.evictions == 1
        assert len(service) == 2
        service.fetch_snapshot("g1")  # evicted from memory, still on disk
        assert (service.memory_misses, service.disk_hits) == (1, 1)

    def test_fully_stale_snapshot_is_withheld(self, tmp_path):
        service = SharedDirectoryService(tmp_path)
        service.publish_snapshot(
            "gen0", DirectorySnapshot((entry(expires=100.0),)))
        assert service.fetch_snapshot("gen0", now_s=50.0) is not None
        assert service.fetch_snapshot("gen0", now_s=100.0) is None
        assert service.stale == 1
        # the empty snapshot is never "stale" — there is nothing to expire
        service.publish_snapshot("empty", DirectorySnapshot())
        assert service.fetch_snapshot("empty", now_s=1e9) == DirectorySnapshot()

    def test_counters_dict_and_metrics_series(self, tmp_path):
        registry = MetricsRegistry()
        service = SharedDirectoryService(tmp_path, max_memory_snapshots=1,
                                         metrics=registry)
        service.publish_snapshot("a", DirectorySnapshot((entry(),)))
        service.publish_snapshot("b", DirectorySnapshot((entry(site="x"),)))
        service.fetch_snapshot("a")
        service.fetch_snapshot("nope")
        counters = service.counters()
        # two evictions: publishing "b" evicts "a", and the disk-hit
        # backfill of "a" then evicts "b"
        assert counters == {
            "memory_hits": 0, "memory_misses": 2, "disk_hits": 1,
            "disk_misses": 1, "evictions": 2, "stale": 0, "publishes": 2}
        series = {(s.name, s.labels): s.value for s in registry.collect()}
        assert series[("repro_shard_directory_tier_total",
                       (("outcome", "hit"), ("tier", "disk")))] == 1.0
        assert series[("repro_shard_directory_tier_total",
                       (("outcome", "miss"), ("tier", "memory")))] == 2.0
        assert series[("repro_shard_directory_evictions_total", ())] == 2.0
        assert series[("repro_shard_directory_publishes_total", ())] == 2.0

    def test_reports_ride_the_durable_tier(self, tmp_path):
        service = SharedDirectoryService(tmp_path)
        report = SiteReport(site="ubc", mode="direct", seed=0, warm_hash="",
                            n_uploads=2, probes_issued=0, directory_hits=0,
                            directory_misses=0, directory_evictions=0,
                            directory_warm_hits=0, invalidations=0,
                            admission_spills=0)
        service.publish_report("site-x", report)
        assert service.fetch_report("site-x") == report
        assert service.fetch_report("site-y") is None

    def test_rejects_nonpositive_capacity(self, tmp_path):
        with pytest.raises(ShardError, match="max_memory_snapshots"):
            SharedDirectoryService(tmp_path, max_memory_snapshots=0)
