"""Shard planning: stable partition, cell identity, streaming aggregation."""

import pytest

from repro.broker.fleet import FleetResult, FleetUploadRecord, score_fleet
from repro.errors import ShardError
from repro.shard import FleetAggregator, ShardCell, ShardPlan, SiteReport
from repro.shard.plan import site_report_name

pytestmark = pytest.mark.shard

SITES = ("ubc", "purdue", "ucla", "umich")


def make_plan(**kw):
    defaults = dict(sites=SITES, n_uploads_per_site=2,
                    modes=("direct", "broker"), cross_traffic=False)
    defaults.update(kw)
    return ShardPlan(**defaults)


class TestPartition:
    def test_partition_is_a_stable_hash(self):
        plan = make_plan(n_shards=3)
        again = make_plan(n_shards=3)
        assert [plan.shard_of(s) for s in SITES] == \
            [again.shard_of(s) for s in SITES]

    def test_partition_independent_of_site_listing_order(self):
        plan = make_plan(n_shards=3)
        flipped = make_plan(sites=tuple(reversed(SITES)), n_shards=3)
        assert {s: plan.shard_of(s) for s in SITES} == \
            {s: flipped.shard_of(s) for s in SITES}

    def test_shards_cover_every_site_exactly_once(self):
        plan = make_plan(n_shards=3)
        seen = [s for bucket in plan.shards() for s in bucket]
        assert sorted(seen) == sorted(SITES)

    def test_single_shard_holds_the_whole_fleet(self):
        plan = make_plan(n_shards=1)
        assert plan.shards() == (SITES,)

    def test_partition_depends_on_seed(self):
        a = {s: make_plan(n_shards=4, seed=0).shard_of(s) for s in SITES}
        b = {s: make_plan(n_shards=4, seed=7).shard_of(s) for s in SITES}
        assert a != b  # sha256-derived; all-equal would be a 1/256 fluke


class TestPlanValidation:
    def test_rejects_duplicate_sites(self):
        with pytest.raises(ShardError, match="repeat"):
            make_plan(sites=("ubc", "ubc"))

    def test_rejects_empty_sites_and_modes(self):
        with pytest.raises(ShardError):
            make_plan(sites=())
        with pytest.raises(ShardError):
            make_plan(modes=())

    def test_rejects_bad_mode_and_shard_count(self):
        with pytest.raises(Exception):
            make_plan(modes=("teleport",))
        with pytest.raises(ShardError, match="n_shards"):
            make_plan(n_shards=0)

    def test_canonical_dict_round_trips(self):
        plan = make_plan(n_shards=3, seed=5, mean_size_mb=12.5)
        assert ShardPlan.from_dict(plan.canonical_dict()) == plan
        assert ShardPlan.from_dict(plan.canonical_dict()).plan_key == \
            plan.plan_key


class TestExpansion:
    def test_expand_is_shard_major_then_mode(self):
        plan = make_plan(n_shards=2)
        cells = plan.expand()
        assert [c.mode for c in cells] == ["direct", "broker"] * 2
        assert cells[0].shard_index == cells[1].shard_index
        assert all(isinstance(c, ShardCell) for c in cells)
        # every cell's sites match the partition
        shards = [s for s in plan.shards() if s]
        assert [c.sites for c in cells[::2]] == shards

    def test_warm_rides_only_broker_cells(self):
        from repro.broker.directory import DirectoryEntry, DirectorySnapshot

        snap = DirectorySnapshot((DirectoryEntry(
            "ubc", "gdrive", "le8MB", "direct", 10.0, 500.0, "probe"),))
        plan = make_plan(n_shards=1)
        cells = plan.expand(warm=snap)
        by_mode = {c.mode: c for c in cells}
        assert by_mode["broker"].warm is snap
        assert by_mode["broker"].warm_hash == snap.content_hash()[:24]
        assert by_mode["direct"].warm is None
        assert by_mode["direct"].warm_hash == ""

    def test_identity_only_expand_needs_no_snapshot(self):
        plan = make_plan(n_shards=2)
        cells = plan.expand(warm_hash="abc123")
        assert all(c.warm is None for c in cells)
        assert {c.warm_hash for c in cells if c.mode == "broker"} == {"abc123"}

    def test_cell_identity_round_trips(self):
        plan = make_plan(n_shards=2, seed=3)
        for cell in plan.expand(warm_hash="deadbeef"):
            rebuilt = ShardCell.from_identity(cell.identity())
            assert rebuilt == cell
            assert rebuilt.key == cell.key

    def test_warm_changes_broker_identity_only(self):
        plan = make_plan(n_shards=1)
        cold = {c.mode: c.key for c in plan.expand()}
        warm = {c.mode: c.key for c in plan.expand(warm_hash="abc")}
        assert cold["direct"] == warm["direct"]
        assert cold["broker"] != warm["broker"]

    def test_executing_warm_identity_without_snapshot_raises(self):
        plan = make_plan(n_shards=1)
        cell = [c for c in plan.expand(warm_hash="abc")
                if c.mode == "broker"][0]
        with pytest.raises(ShardError, match="carries no snapshot"):
            cell.run_measurement()


class TestSiteUnitIdentity:
    def test_report_name_is_partition_independent(self):
        one = make_plan(n_shards=1)
        four = make_plan(n_shards=4)
        for site in SITES:
            for mode in one.modes:
                assert one.site_report_name(site, mode) == \
                    four.site_report_name(site, mode)

    def test_report_name_ignores_warm_for_non_broker(self):
        plan = make_plan()
        assert plan.site_report_name("ubc", "direct", warm_hash="abc") == \
            plan.site_report_name("ubc", "direct")
        assert plan.site_report_name("ubc", "broker", warm_hash="abc") != \
            plan.site_report_name("ubc", "broker")

    def test_site_world_seed_excludes_mode_and_partition(self):
        one = make_plan(n_shards=1)
        cells_one = {c.mode: c for c in one.expand()}
        four = make_plan(n_shards=4)
        cells_four = [c for c in four.expand() if "ubc" in c.sites]
        seeds = {c.site_world_seed("ubc")
                 for c in list(cells_one.values()) + cells_four}
        assert len(seeds) == 1

    def test_site_report_name_helper_is_content_addressed(self):
        kw = dict(site="ubc", provider="gdrive", mode="broker",
                  n_uploads_per_site=2, mean_interarrival_s=60.0,
                  mean_size_mb=40.0, size_dist="lognormal", seed=0,
                  cross_traffic=False, config=None, topo=None, warm_hash="")
        assert site_report_name(**kw) == site_report_name(**kw)
        assert site_report_name(**kw).startswith("site-")
        assert site_report_name(**{**kw, "seed": 1}) != site_report_name(**kw)


def _record(i, site, duration, mode="x"):
    return FleetUploadRecord(index=i, client_site=site, provider_name="gdrive",
                             size_bytes=1000, start_s=float(i),
                             route_descr="direct", source=mode, spilled=False,
                             staleness_s=0.0, duration_s=duration)


def _report(site, mode, **kw):
    defaults = dict(site=site, mode=mode, seed=0, warm_hash="", n_uploads=2,
                    probes_issued=3, directory_hits=1, directory_misses=1,
                    directory_evictions=0, directory_warm_hits=0,
                    invalidations=0, admission_spills=0, snapshot=None)
    defaults.update(kw)
    return SiteReport(**defaults)


class TestAggregator:
    def test_matches_score_fleet_per_site(self):
        """Folding per-site streams reproduces score_fleet's aggregates."""
        durations = {"a": {"s1": [4.0, 2.0], "s2": [6.0, 8.0]},
                     "b": {"s1": [3.0, 5.0], "s2": [5.0, 1.0]}}
        agg = FleetAggregator(("a", "b"))
        for site in ("s1", "s2"):
            agg.fold_site(site, {m: iter(durations[m][site])
                                 for m in ("a", "b")})
        score = agg.score(("s1", "s2"))

        records = {m: [_record(i, site, d)
                       for site in ("s1", "s2")
                       for i, d in enumerate(durations[m][site])]
                   for m in ("a", "b")}
        expected = score_fleet(records)
        assert score.by_site == expected.by_site
        assert score.n_uploads == expected.n_uploads
        # mode means agree (summation order differs, so compare approx)
        for m in ("a", "b"):
            assert score.by_mode[m] == pytest.approx(expected.by_mode[m])

    def test_score_order_is_callers_not_fold_order(self):
        durations = {"a": {"s1": [4.0], "s2": [6.0], "s3": [1.0]},
                     "b": {"s1": [3.0], "s2": [5.0], "s3": [2.0]}}

        def folded(order):
            agg = FleetAggregator(("a", "b"))
            for site in order:
                agg.fold_site(site, {m: durations[m][site]
                                     for m in ("a", "b")})
            return agg.score(("s1", "s2", "s3"))

        assert folded(("s1", "s2", "s3")) == folded(("s3", "s1", "s2"))

    def test_state_is_o_sites(self):
        agg = FleetAggregator(("a", "b"))
        for i in range(10):
            agg.fold_site(f"s{i}", {"a": [1.0] * 50, "b": [2.0] * 50})
        assert agg.records_folded == 10 * 50 * 2
        assert agg.state_cells == 10 * (2 + 1)

    def test_double_fold_and_mismatches_raise(self):
        agg = FleetAggregator(("a", "b"))
        agg.fold_site("s1", {"a": [1.0], "b": [2.0]})
        with pytest.raises(ShardError, match="folded twice"):
            agg.fold_site("s1", {"a": [1.0], "b": [2.0]})
        with pytest.raises(ShardError, match="do not match"):
            agg.fold_site("s2", {"a": [1.0]})
        with pytest.raises(ShardError, match="disagree"):
            agg.fold_site("s3", {"a": [1.0, 2.0], "b": [2.0]})
        with pytest.raises(ShardError, match="never folded"):
            agg.score(("s1", "s2"))

    def test_rollup_aggregates_reports_per_mode(self):
        agg = FleetAggregator(("direct", "broker"))
        agg.fold_report(_report("s1", "broker", directory_hits=3,
                                directory_misses=1, directory_warm_hits=2,
                                n_uploads=4, probes_issued=6))
        agg.fold_report(_report("s2", "broker", directory_hits=1,
                                directory_misses=3, n_uploads=4,
                                probes_issued=2))
        agg.fold_report(_report("s1", "direct", probes_issued=0,
                                directory_hits=0, directory_misses=0))
        rollup = agg.rollup()
        broker = rollup["broker"]
        assert broker["uploads"] == 8.0
        assert broker["probes_per_upload"] == 1.0
        assert broker["hit_rate"] == 0.5
        assert broker["warm_hit_rate"] == 0.25
        assert rollup["direct"]["hit_rate"] == 0.0
        with pytest.raises(ShardError, match="not one of"):
            agg.fold_report(_report("s1", "static:via umich"))


class TestStreamingScoreFleet:
    """Satellite: score_fleet takes bare record iterators, single pass."""

    def test_iterators_match_fleet_results(self):
        recs_a = [_record(0, "s1", 4.0), _record(1, "s2", 6.0)]
        recs_b = [_record(0, "s1", 3.0), _record(1, "s2", 8.0)]
        full = score_fleet({
            "a": FleetResult("a", 0, tuple(recs_a), 0, 0, 0, 0),
            "b": FleetResult("b", 0, tuple(recs_b), 0, 0, 0, 0)})
        streamed = score_fleet({"a": iter(recs_a), "b": iter(recs_b)})
        assert streamed == full

    def test_one_shot_generators_are_consumed_once(self):
        def gen(records):
            yield from records

        score = score_fleet({"a": gen([_record(0, "s1", 4.0)]),
                             "b": gen([_record(0, "s1", 2.0)])})
        assert score.oracle_mean_s == 2.0
        assert score.by_mode["a"] == (4.0, 2.0)

    def test_length_mismatch_raises_mid_stream(self):
        from repro.errors import BrokerError

        with pytest.raises(BrokerError, match="disagree"):
            score_fleet({"a": iter([_record(0, "s1", 4.0)]),
                         "b": iter([_record(0, "s1", 2.0),
                                    _record(1, "s1", 3.0)])})
