"""Sharded fleet runs: byte-identical merges, SIGKILL resume, warm restarts."""

import os
import signal
import time

import pytest

from repro.campaign.store import ResultStore
from repro.errors import ShardError
from repro.obs.metrics import MetricsRegistry
from repro.shard import (
    ShardMergeResult,
    ShardPlan,
    ShardRunResult,
    merge_sharded,
    run_sharded,
    shard_status,
)
from repro.shard.runner import read_run_file

pytestmark = pytest.mark.shard

SITES = ("ubc", "purdue", "ucla", "umich")


def make_plan(**kw):
    defaults = dict(sites=SITES, n_uploads_per_site=2,
                    modes=("direct", "broker"), cross_traffic=False)
    defaults.update(kw)
    return ShardPlan(**defaults)


def site_samples(registry):
    """Every metric sample stamped with a site label, order-normalized."""
    return sorted((s.name, s.labels, s.value) for s in registry.collect()
                  if any(k == "site" for k, _v in s.labels))


class TestByteIdentity:
    def test_four_shards_merge_identically_to_one(self, tmp_path):
        """The headline contract: shards=4 across worker processes is
        byte-identical to shards=1 in-process."""
        one, four = make_plan(n_shards=1), make_plan(n_shards=4)
        m_one, m_four = MetricsRegistry(), MetricsRegistry()
        r_one = run_sharded(one, tmp_path / "one", jobs=1, metrics=m_one)
        r_four = run_sharded(four, tmp_path / "four", jobs=2, metrics=m_four)
        assert isinstance(r_one, ShardRunResult)
        assert isinstance(r_one.merge, ShardMergeResult)

        assert r_four.merge.score == r_one.merge.score
        assert r_four.merge.rollup == r_one.merge.rollup
        assert r_four.merge.merged_snapshot_hash == \
            r_one.merge.merged_snapshot_hash
        assert r_four.merge.records_folded == r_one.merge.records_folded

        # the published merged snapshots are byte-identical documents
        # (their *names* differ — n_shards is part of the plan key)
        path_one = (tmp_path / "one" / "directory" /
                    f"{one.merged_snapshot_name}.json")
        path_four = (tmp_path / "four" / "directory" /
                     f"{four.merged_snapshot_name}.json")
        assert path_one.read_bytes() == path_four.read_bytes()

        # every site-labeled metric series matches: each series comes
        # from exactly one site unit, so the partition cannot move it
        assert site_samples(m_four) == site_samples(m_one)
        assert site_samples(m_one)  # non-vacuous: the units did report

    def test_merge_is_reproducible_offline(self, tmp_path):
        plan = make_plan(sites=("ubc", "purdue"), n_shards=2)
        result = run_sharded(plan, tmp_path, jobs=1)
        again = merge_sharded(plan, tmp_path)
        assert again == result.merge


class TestResume:
    def test_kill_mid_run_then_resume(self, tmp_path):
        """SIGKILL a sharded run; resuming recomputes only the lost cells."""
        # cross-traffic makes each cell slow enough (~0.5 s) that the
        # kill lands mid-run instead of after the last cell
        plan = make_plan(n_shards=4, cross_traffic=True)
        n_cells = len(plan.expand())
        assert n_cells == 8

        pid = os.fork()  # simlint: ignore[SL502] -- the test *is* the killer
        if pid == 0:  # child: run the fleet serially until killed
            os.closerange(0, 3)
            run_sharded(plan, tmp_path, jobs=1)
            os._exit(0)

        try:  # parent: wait for some—not all—cells, then kill -9
            deadline = time.monotonic() + 300.0
            while time.monotonic() < deadline:
                if len(ResultStore(tmp_path / "cells")) >= 2:
                    break
                time.sleep(0.02)
        finally:
            os.kill(pid, signal.SIGKILL)
            os.waitpid(pid, 0)

        survived = len(ResultStore(tmp_path / "cells"))
        assert survived >= 2
        # the run file landed before execution, so status works post-crash
        assert read_run_file(tmp_path)["plan"] == plan.canonical_dict()

        result = run_sharded(plan, tmp_path, jobs=1)
        assert result.cached == survived
        assert result.executed == n_cells - survived
        assert result.merge.score.n_uploads == plan.n_uploads

        status = shard_status(plan, tmp_path)
        assert status["missing"] == 0
        assert status["reports_published"] == status["reports_expected"]
        assert status["merged_published"]


class TestMergeGuards:
    def test_merge_before_any_run_is_an_error(self, tmp_path):
        with pytest.raises(ShardError, match="not computed"):
            merge_sharded(make_plan(), tmp_path)

    def test_run_file_is_required_for_status_tools(self, tmp_path):
        with pytest.raises(ShardError, match="no shard run"):
            read_run_file(tmp_path)

    def test_partial_store_is_still_an_error(self, tmp_path):
        plan = make_plan(sites=("ubc", "purdue"), n_shards=2)
        run_sharded(plan, tmp_path, jobs=1)
        # a *different* partitioning finds none of its cells
        with pytest.raises(ShardError, match="not computed"):
            merge_sharded(make_plan(sites=("ubc", "purdue"), n_shards=1),
                          tmp_path)


class TestWarmGenerations:
    def test_second_generation_warms_from_the_merged_snapshot(self, tmp_path):
        plan = make_plan(sites=("ubc", "purdue"), n_shards=2)
        cold = run_sharded(plan, tmp_path, jobs=1)
        assert cold.warm_from is None and cold.warm_entries == 0
        assert cold.merge.merged_entries > 0

        telemetry = []
        warm = run_sharded(plan, tmp_path, jobs=1,
                           warm_from=plan.merged_snapshot_name,
                           telemetry=telemetry.append)
        # direct cells are warm-free, so the store answers them; only
        # the broker cells (new warm identity) execute
        cells = plan.expand()
        assert warm.cached == sum(1 for c in cells if c.mode == "direct")
        assert warm.executed == sum(1 for c in cells if c.mode == "broker")
        assert warm.warm_from == plan.merged_snapshot_name
        assert warm.warm_entries == cold.merge.merged_entries
        # the warmed directory serves lookups the cold run missed
        assert warm.merge.rollup["broker"]["warm_hits"] > 0
        assert warm.merge.rollup["broker"]["hit_rate"] > \
            cold.merge.rollup["broker"]["hit_rate"]
        # direct-mode numbers are untouched by warming
        assert warm.merge.score.by_site[("direct", "ubc")] == \
            cold.merge.score.by_site[("direct", "ubc")]
        assert [e.kind for e in telemetry if e.kind.startswith("shard")] == \
            ["shard_warmed", "shard_published", "shard_merged"]

        run_file = read_run_file(tmp_path)
        assert run_file["warm_from"] == plan.merged_snapshot_name
        assert run_file["warm_hash"]

    def test_missing_warm_snapshot_is_an_error(self, tmp_path):
        plan = make_plan(sites=("ubc",))
        with pytest.raises(ShardError, match="not published"):
            run_sharded(plan, tmp_path, warm_from="merged-nonexistent")


class TestStatus:
    def test_status_tracks_the_run_lifecycle(self, tmp_path):
        plan = make_plan(sites=("ubc", "purdue"), n_shards=2)
        before = shard_status(plan, tmp_path)
        assert before["ok"] == 0
        assert before["missing"] == len(plan.expand())
        assert before["reports_published"] == 0
        assert not before["merged_published"]
        # the stable hash needn't balance: only coverage is guaranteed
        assert sum(s["sites"] for s in before["shards"]) == 2

        run_sharded(plan, tmp_path, jobs=1)
        after = shard_status(plan, tmp_path)
        assert after["ok"] == len(plan.expand())
        assert after["missing"] == 0
        assert after["reports_published"] == after["reports_expected"] == 4
        assert after["merged_published"]
