"""Discrete-event kernel: scheduling, processes, signals, combinators."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Interrupt, Signal, Simulator, Timeout


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_callbacks_run_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, lambda: seen.append(("b", sim.now)))
        sim.schedule(1.0, lambda: seen.append(("a", sim.now)))
        sim.schedule(3.0, lambda: seen.append(("c", sim.now)))
        sim.run()
        assert seen == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_fifo_at_equal_times(self):
        sim = Simulator()
        seen = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: seen.append(i))
        sim.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append("low"), priority=5)
        sim.schedule(1.0, lambda: seen.append("high"), priority=-5)
        sim.run()
        assert seen == ["high", "low"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        times = []
        sim.schedule_at(4.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [4.5]

    def test_cancel(self):
        sim = Simulator()
        seen = []
        h = sim.schedule(1.0, lambda: seen.append("x"))
        h.cancel()
        assert not h.active
        sim.run()
        assert seen == []

    def test_run_until_stops_clock_at_horizon(self):
        sim = Simulator()
        seen = []
        sim.schedule(10.0, lambda: seen.append("late"))
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert seen == []
        sim.run()  # finish the rest
        assert seen == ["late"]

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(1.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [1.0, 2.0]

    def test_peek(self):
        sim = Simulator()
        assert sim.peek() is None
        sim.schedule(3.0, lambda: None)
        assert sim.peek() == 3.0


class TestProcesses:
    def test_simple_delay_process(self):
        sim = Simulator()

        def proc():
            yield 2.5
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.finished
        assert p.result == 2.5

    def test_sequential_delays_accumulate(self):
        sim = Simulator()
        marks = []

        def proc():
            for _ in range(3):
                yield 1.0
                marks.append(sim.now)

        sim.process(proc())
        sim.run()
        assert marks == [1.0, 2.0, 3.0]

    def test_join_returns_child_result(self):
        sim = Simulator()

        def child():
            yield 1.0
            return 42

        def parent():
            result = yield sim.process(child())
            return result + 1

        p = sim.process(parent())
        sim.run()
        assert p.result == 43

    def test_join_already_finished_process(self):
        sim = Simulator()

        def child():
            yield 0.5
            return "done"

        def parent(c):
            yield 2.0  # child finished long ago
            value = yield c
            return (sim.now, value)

        c = sim.process(child())
        p = sim.process(parent(c))
        sim.run()
        assert p.result == (2.0, "done")

    def test_exception_propagates_to_joiner(self):
        sim = Simulator()

        def child():
            yield 1.0
            raise ValueError("boom")

        def parent():
            try:
                yield sim.process(child())
            except ValueError as exc:
                return f"caught {exc}"

        p = sim.process(parent())
        sim.run()
        assert p.result == "caught boom"

    def test_unjoined_exception_surfaces_via_result(self):
        sim = Simulator()

        def bad():
            yield 1.0
            raise RuntimeError("unseen")

        p = sim.process(bad())
        sim.run()
        assert isinstance(p.error, RuntimeError)
        with pytest.raises(RuntimeError):
            _ = p.result

    def test_result_before_finish_raises(self):
        sim = Simulator()

        def proc():
            yield 1.0

        p = sim.process(proc())
        with pytest.raises(SimulationError):
            _ = p.result

    def test_yield_bad_object_raises_inside_process(self):
        sim = Simulator()

        def proc():
            try:
                yield object()
            except SimulationError:
                return "rejected"

        p = sim.process(proc())
        sim.run()
        assert p.result == "rejected"

    def test_immediate_return(self):
        sim = Simulator()

        def proc():
            return 7
            yield  # pragma: no cover

        p = sim.process(proc())
        sim.run()
        assert p.result == 7


class TestSignals:
    def test_trigger_wakes_waiter_with_value(self):
        sim = Simulator()
        sig = Signal(sim)

        def waiter():
            value = yield sig
            return (sim.now, value)

        def trigger():
            yield 3.0
            sig.trigger("hello")

        p = sim.process(waiter())
        sim.process(trigger())
        sim.run()
        assert p.result == (3.0, "hello")

    def test_multiple_waiters_all_wake(self):
        sim = Simulator()
        sig = Signal(sim)
        results = []

        def waiter(i):
            value = yield sig
            results.append((i, value))

        for i in range(3):
            sim.process(waiter(i))
        sim.schedule(1.0, lambda: sig.trigger("x"))
        sim.run()
        assert sorted(results) == [(0, "x"), (1, "x"), (2, "x")]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        sig = Signal(sim)
        sig.trigger(1)
        with pytest.raises(SimulationError):
            sig.trigger(2)

    def test_fail_raises_in_waiter(self):
        sim = Simulator()
        sig = Signal(sim)

        def waiter():
            try:
                yield sig
            except KeyError:
                return "failed as expected"

        p = sim.process(waiter())
        sim.schedule(1.0, lambda: sig.fail(KeyError("nope")))
        sim.run()
        assert p.result == "failed as expected"

    def test_value_before_trigger_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            _ = Signal(sim).value


class TestCombinators:
    def test_allof_collects_in_order(self):
        sim = Simulator()

        def child(dt, value):
            yield dt
            return value

        def parent():
            results = yield AllOf([sim.process(child(3, "a")), sim.process(child(1, "b"))])
            return (sim.now, results)

        p = sim.process(parent())
        sim.run()
        assert p.result == (3.0, ["a", "b"])

    def test_allof_empty(self):
        sim = Simulator()

        def parent():
            results = yield AllOf([])
            return results

        p = sim.process(parent())
        sim.run()
        assert p.result == []

    def test_yield_list_is_implicit_allof(self):
        sim = Simulator()

        def child(dt):
            yield dt
            return dt

        def parent():
            results = yield [sim.process(child(1)), sim.process(child(2))]
            return results

        p = sim.process(parent())
        sim.run()
        assert p.result == [1, 2]

    def test_anyof_returns_first(self):
        sim = Simulator()

        def child(dt, value):
            yield dt
            return value

        def parent():
            index, value = yield AnyOf([sim.process(child(5, "slow")), sim.process(child(1, "fast"))])
            return (sim.now, index, value)

        p = sim.process(parent())
        sim.run()
        assert p.result == (1.0, 1, "fast")

    def test_anyof_empty_rejected(self):
        with pytest.raises(SimulationError):
            AnyOf([])

    def test_timeout_expires(self):
        sim = Simulator()
        sig = Signal(sim)

        def waiter():
            done, value = yield Timeout(sig, 2.0)
            return (sim.now, done, value)

        p = sim.process(waiter())
        sim.run()
        assert p.result == (2.0, False, None)

    def test_timeout_beaten_by_completion(self):
        sim = Simulator()

        def child():
            yield 1.0
            return "quick"

        def waiter():
            done, value = yield Timeout(sim.process(child()), 10.0)
            return (sim.now, done, value)

        p = sim.process(waiter())
        sim.run()
        assert p.result == (1.0, True, "quick")


class TestInterrupts:
    def test_interrupt_wakes_sleeping_process(self):
        sim = Simulator()

        def sleeper():
            try:
                yield 100.0
            except Interrupt as intr:
                return (sim.now, intr.cause)

        p = sim.process(sleeper())
        sim.schedule(2.0, lambda: p.interrupt("wake up"))
        sim.run()
        assert p.result == (2.0, "wake up")

    def test_unhandled_interrupt_cancels_quietly(self):
        sim = Simulator()

        def sleeper():
            yield 100.0
            return "never"

        p = sim.process(sleeper())
        sim.schedule(1.0, lambda: p.interrupt())
        sim.run()
        assert p.finished
        assert p.result is None

    def test_interrupt_after_done_is_noop(self):
        sim = Simulator()

        def quick():
            yield 1.0
            return "ok"

        p = sim.process(quick())
        sim.run()
        p.interrupt()
        sim.run()
        assert p.result == "ok"
