"""Counted resources: FIFO queueing, reservation semantics, statistics."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.sim.resources import Resource


def worker(sim, resource, hold_s, log, tag):
    slot = yield from resource.acquire()
    log.append(("start", tag, sim.now))
    yield hold_s
    resource.release(slot)
    log.append(("end", tag, sim.now))


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), 0)

    def test_immediate_grant_when_free(self):
        sim = Simulator()
        r = Resource(sim, 2)
        log = []
        sim.process(worker(sim, r, 5.0, log, "a"))
        sim.process(worker(sim, r, 5.0, log, "b"))
        sim.run()
        starts = [t for ev, _, t in log if ev == "start"]
        assert starts == [0.0, 0.0]  # both run concurrently

    def test_queueing_when_full(self):
        sim = Simulator()
        r = Resource(sim, 1)
        log = []
        for tag in "abc":
            sim.process(worker(sim, r, 10.0, log, tag))
        sim.run()
        starts = {tag: t for ev, tag, t in log if ev == "start"}
        assert starts == {"a": 0.0, "b": 10.0, "c": 20.0}

    def test_fifo_order(self):
        sim = Simulator()
        r = Resource(sim, 1)
        order = []

        def w(tag, delay):
            yield delay
            slot = yield from r.acquire()
            order.append(tag)
            yield 5.0
            r.release(slot)

        for i, tag in enumerate("abcd"):
            sim.process(w(tag, i * 0.1))
        sim.run()
        assert order == ["a", "b", "c", "d"]

    def test_try_acquire(self):
        sim = Simulator()
        r = Resource(sim, 1)
        slot = r.try_acquire()
        assert slot is not None
        assert r.try_acquire() is None
        r.release(slot)
        assert r.try_acquire() is not None

    def test_release_foreign_slot_rejected(self):
        import dataclasses

        sim = Simulator()
        r1 = Resource(sim, 1, name="one")
        r2 = Resource(sim, 1, name="two")
        slot = r1.try_acquire()
        with pytest.raises(SimulationError):
            r2.release(slot)
        with pytest.raises(SimulationError):
            r1.release(dataclasses.replace(slot, token=999))

    def test_double_release_rejected(self):
        sim = Simulator()
        r = Resource(sim, 1)
        slot = r.try_acquire()
        r.release(slot)
        with pytest.raises(SimulationError):
            r.release(slot)


class TestReservationRace:
    def test_woken_waiter_keeps_its_slot(self):
        """A late try_acquire must not steal the slot earmarked for a
        woken waiter."""
        sim = Simulator()
        r = Resource(sim, 1)
        got = []

        def holder():
            slot = yield from r.acquire()
            yield 5.0
            r.release(slot)

        def waiter():
            yield 1.0
            slot = yield from r.acquire()
            got.append(("waiter", sim.now))
            yield 1.0
            r.release(slot)

        def thief():
            yield 5.0  # exactly when holder releases
            slot = r.try_acquire()
            got.append(("thief", slot))

        sim.process(holder())
        sim.process(waiter())
        sim.process(thief())
        sim.run()
        assert ("waiter", 5.0) in got
        assert ("thief", None) in got

    def test_capacity_never_exceeded(self):
        sim = Simulator()
        r = Resource(sim, 2)
        concurrency = []

        def w(delay):
            yield delay
            slot = yield from r.acquire()
            concurrency.append(r.in_use)
            yield 3.0
            r.release(slot)

        for i in range(8):
            sim.process(w(i * 0.5))
        sim.run()
        assert max(concurrency) <= 2
        assert r.peak_in_use == 2


class TestUsingAndStats:
    def test_using_releases_on_success(self):
        sim = Simulator()
        r = Resource(sim, 1)

        def work():
            yield 2.0
            return "done"

        def proc():
            result = yield from r.using(work())
            return result

        p = sim.process(proc())
        sim.run()
        assert p.result == "done"
        assert r.in_use == 0

    def test_using_releases_on_failure(self):
        sim = Simulator()
        r = Resource(sim, 1)

        def bad_work():
            yield 1.0
            raise ValueError("boom")

        def proc():
            yield from r.using(bad_work())

        p = sim.process(proc())
        sim.run()
        assert isinstance(p.error, ValueError)
        assert r.in_use == 0  # slot returned despite the exception

    def test_wait_statistics(self):
        sim = Simulator()
        r = Resource(sim, 1)
        log = []
        for tag in "ab":
            sim.process(worker(sim, r, 10.0, log, tag))
        sim.run()
        assert r.total_acquisitions == 2
        assert r.total_waits == 1
        assert r.mean_wait_s == pytest.approx(10.0)


class TestDtnSessionLimit:
    def test_executor_serializes_on_dtn_slots(self):
        """Three concurrent detours through a 1-slot DTN run back to back."""
        from repro.core import DetourRoute, PlanExecutor, TransferPlan
        from repro.testbed import build_case_study
        from repro.transfer import FileSpec
        from repro.units import mb

        world = build_case_study(seed=0, cross_traffic=False)
        world.add_dtn("ualberta-limited", "ualberta-dtn", max_sessions=1)
        # point the limited DTN at the same host; use it for all plans
        executor = PlanExecutor(world)
        done = []

        def one(i):
            plan = TransferPlan("ubc", "gdrive",
                                FileSpec(f"f{i}.bin", int(mb(20))),
                                DetourRoute("ualberta-limited"))
            result = yield from executor.execute(plan)
            done.append((i, result.end_time))

        for i in range(3):
            world.sim.process(one(i))
        world.sim.run(until=1e5)
        assert len(done) == 3
        ends = sorted(t for _, t in done)
        # serialized: each ~7-9 s apart, not all finishing together
        assert ends[1] - ends[0] > 4
        assert ends[2] - ends[1] > 4
        dtn = world.dtn_of("ualberta-limited")
        assert dtn.sessions.total_waits == 2

    def test_invalid_session_limit(self):
        from repro.transfer import DataTransferNode
        from repro.errors import TransferError

        with pytest.raises(TransferError):
            DataTransferNode("h", max_sessions=0)
