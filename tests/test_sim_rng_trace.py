"""RNG registry determinism and tracer behaviour."""

import pytest

from repro.sim import Tracer
from repro.sim.rng import RngRegistry, derive_seed


class TestRng:
    def test_same_seed_same_stream(self):
        a = RngRegistry(7).stream("x").random(5)
        b = RngRegistry(7).stream("x").random(5)
        assert (a == b).all()

    def test_different_names_independent(self):
        r = RngRegistry(7)
        assert (r.stream("x").random(5) != r.stream("y").random(5)).any()

    def test_stream_is_cached(self):
        r = RngRegistry(0)
        assert r.stream("a") is r.stream("a")

    def test_order_independence(self):
        r1 = RngRegistry(3)
        r1.stream("first").random()
        v1 = r1.stream("second").random()
        r2 = RngRegistry(3)
        v2 = r2.stream("second").random()
        assert v1 == v2

    def test_fork_runs_are_independent_but_reproducible(self):
        base = RngRegistry(11)
        run0a = base.fork(0).stream("jitter").random(3)
        run1 = base.fork(1).stream("jitter").random(3)
        run0b = RngRegistry(11).fork(0).stream("jitter").random(3)
        assert (run0a == run0b).all()
        assert (run0a != run1).any()

    def test_derive_seed_stable(self):
        assert derive_seed(5, "abc") == derive_seed(5, "abc")
        assert derive_seed(5, "abc") != derive_seed(6, "abc")
        assert derive_seed(5, "abc") != derive_seed(5, "abd")

    def test_lognormal_factor_unit_when_sigma_zero(self):
        assert RngRegistry(1).lognormal_factor("j", 0.0) == 1.0

    def test_lognormal_factor_positive(self):
        r = RngRegistry(1)
        for _ in range(100):
            assert r.lognormal_factor("j", 0.5) > 0

    def test_lognormal_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(1).lognormal_factor("j", -0.1)


class TestRngEdgeCases:
    """Edge cases the simlint determinism rules (SL1xx) rely on."""

    def test_derive_seed_golden_values(self):
        """sha256-derived seeds are stable across runs, platforms and
        Python versions — pin them so a silent derivation change fails."""
        assert derive_seed(0, "crosstraffic.purdue") == 16259456307670556307
        assert derive_seed(42, "run:3") == 6378230201956422539
        assert derive_seed(2**63, "x") == 10726633575767780457
        assert derive_seed(-1, "x") == 2944804684400440491

    def test_derive_seed_is_64_bit(self):
        for seed, name in [(0, ""), (1, "a"), (2**64, "long.name:here")]:
            value = derive_seed(seed, name)
            assert 0 <= value < 2**64

    def test_no_collision_between_seed_and_name_prefixes(self):
        """(1, "2:x") and (12, "x") must hash differently — the ':'
        separator keeps (seed, name) framing unambiguous."""
        assert derive_seed(1, "2:x") != derive_seed(12, "x")
        assert derive_seed(1, "") != derive_seed(10, "")
        assert derive_seed(42, "run:1") != derive_seed(421, "run:")

    def test_similar_stream_names_are_distinct(self):
        r = RngRegistry(9)
        draws = {
            name: float(r.stream(name).random())
            for name in ("a.b", "a:b", "a_b", "ab", "a.b ", " a.b")
        }
        assert len(set(draws.values())) == len(draws)

    def test_construction_order_never_matters(self):
        """Any permutation of stream creation gives identical streams."""
        names = [f"component.{i}" for i in range(6)]
        r_forward = RngRegistry(123)
        forward = {n: r_forward.stream(n).random(4) for n in names}
        r_backward = RngRegistry(123)
        backward = {n: r_backward.stream(n).random(4) for n in reversed(names)}
        for n in names:
            assert (forward[n] == backward[n]).all()

    def test_interleaved_draws_do_not_couple_streams(self):
        """Draws on one stream must not perturb another (no shared state)."""
        r1 = RngRegistry(5)
        r1.stream("noise").random(1000)  # heavy traffic on another stream
        lonely_after_noise = r1.stream("lonely").random(3)
        r2 = RngRegistry(5)
        lonely_fresh = r2.stream("lonely").random(3)
        assert (lonely_after_noise == lonely_fresh).all()

    def test_fork_matches_explicit_derivation(self):
        """fork(i) is exactly RngRegistry(derive_seed(seed, "run:i"))."""
        base = RngRegistry(77)
        forked = base.fork(4).stream("s").random(3)
        explicit = RngRegistry(derive_seed(77, "run:4")).stream("s").random(3)
        assert (forked == explicit).all()

    def test_master_seed_is_coerced_to_int(self):
        assert RngRegistry(True).master_seed == 1
        a = RngRegistry(1).stream("x").random()
        b = RngRegistry(True).stream("x").random()
        assert a == b

    def test_lognormal_factor_sequence_reproducible(self):
        seq1 = [RngRegistry(3).lognormal_factor("j", 0.4) for _ in range(1)]
        r = RngRegistry(3)
        seq2 = [r.lognormal_factor("j", 0.4)]
        assert seq1 == seq2


class TestTracer:
    def test_emit_and_filter(self):
        t = Tracer()
        t.emit(1.0, "net.link.a", "flow_start", flow=1)
        t.emit(2.0, "net.link.b", "flow_end", flow=1)
        t.emit(3.0, "cloud.gdrive", "chunk", index=0)
        assert len(t) == 3
        assert [e.kind for e in t.filter(component="net.link")] == ["flow_start", "flow_end"]
        assert len(t.filter(kind="chunk")) == 1
        assert len(t.filter(since=1.5)) == 2
        assert len(t.filter(until=1.5)) == 1

    def test_disabled_tracer_is_noop(self):
        t = Tracer(enabled=False)
        t.emit(1.0, "x", "y")
        assert len(t) == 0

    def test_ring_buffer_drops_oldest(self):
        t = Tracer(max_events=3)
        for i in range(5):
            t.emit(float(i), "c", "k", i=i)
        assert len(t) == 3
        assert t.dropped == 2
        assert [e.fields["i"] for e in t] == [2, 3, 4]

    def test_subscribe_sees_live_events(self):
        t = Tracer()
        seen = []
        t.subscribe(lambda ev: seen.append(ev.kind))
        t.emit(0.0, "c", "one")
        t.emit(0.0, "c", "two")
        assert seen == ["one", "two"]

    def test_dump_is_readable(self):
        t = Tracer()
        t.emit(1.25, "net", "start", x=1)
        out = t.dump()
        assert "net" in out and "start" in out and "x=1" in out

    def test_clear(self):
        t = Tracer()
        t.emit(0.0, "c", "k")
        t.clear()
        assert len(t) == 0 and t.dropped == 0
