"""The calibrated case-study world: routing fidelity and calibration."""

import numpy as np
import pytest

from repro.net import format_traceroute, traceroute
from repro.testbed import (
    CLIENTS,
    PROVIDERS,
    VIAS,
    build_case_study,
    build_geo_registry,
    experiment_label,
    paper_route_set,
    world_factory,
)
from repro.testbed.build import AS_NUMBERS
from repro.testbed.params import DEFAULT_PARAMS
from repro.units import bps_to_mbps, mb


@pytest.fixture(scope="module")
def world():
    return build_case_study(seed=0, cross_traffic=False)


class TestTopologyConstruction:
    def test_builds_and_validates(self, world):
        assert len(world.topology.nodes) > 30
        assert len(world.topology.links) > 35
        world.topology.validate()
        world.as_graph.validate()

    def test_all_paper_actors_present(self, world):
        for host in ["ubc-pl", "purdue-pl", "ucla-pl", "umich-pl", "ualberta-dtn",
                     "gdrive-frontend", "dropbox-frontend", "onedrive-frontend"]:
            assert world.topology.node(host).is_host

    def test_providers_registered(self, world):
        assert set(world.providers) == {"gdrive", "dropbox", "onedrive"}

    def test_dtns_registered(self, world):
        assert set(world.dtns) == {"ualberta", "umich"}

    def test_scenario_constants(self):
        assert CLIENTS == ("ubc", "purdue", "ucla")
        assert PROVIDERS == ("gdrive", "dropbox", "onedrive")
        assert VIAS == ("ualberta", "umich")

    def test_paper_route_set_excludes_self(self):
        descrs = [r.describe() for r in paper_route_set("ubc")]
        assert descrs == ["direct", "via ualberta", "via umich"]

    def test_experiment_label_stable(self):
        from repro.core import DirectRoute

        assert experiment_label("ubc", "gdrive", DirectRoute(), 100) == \
            "ubc->gdrive [direct] 100MB"

    def test_same_seed_same_world_behaviour(self):
        from repro.core import PlanExecutor, TransferPlan, DirectRoute
        from repro.transfer import FileSpec

        def once(seed):
            w = build_case_study(seed=seed)
            return PlanExecutor(w).run(
                TransferPlan("purdue", "gdrive", FileSpec("f", int(mb(20))))).total_s

        assert once(5) == once(5)
        assert once(5) != once(6)


class TestRoutingFidelity:
    def test_ubc_google_goes_via_pacificwave(self, world):
        """Fig. 5: UBC -> Google crosses vncv1rtr2 then pacificwave."""
        path = world.router.resolve("ubc-pl", "gdrive-frontend")
        assert "canarie-vncv" in path.nodes
        assert "pacwave-sea" in path.nodes
        assert "google-peer-vncv" not in path.nodes

    def test_ualberta_google_uses_direct_peering(self, world):
        """Fig. 6: UAlberta -> Google crosses vncv1rtr2 then the peering."""
        path = world.router.resolve("ualberta-dtn", "gdrive-frontend")
        assert "canarie-vncv" in path.nodes
        assert "google-peer-vncv" in path.nodes
        assert "pacwave-sea" not in path.nodes

    def test_both_cross_the_same_canarie_router(self, world):
        """'Both network routes cross the middle-box vncv1rtr2.canarie.ca'."""
        ubc = world.router.resolve("ubc-pl", "gdrive-frontend")
        ua = world.router.resolve("ualberta-dtn", "gdrive-frontend")
        assert "canarie-vncv" in ubc.nodes and "canarie-vncv" in ua.nodes

    def test_pacificwave_policer_is_ubc_bottleneck(self, world):
        path = world.router.resolve("ubc-pl", "gdrive-frontend")
        assert bps_to_mbps(path.bottleneck_bps) == pytest.approx(9.6)

    def test_purdue_commercial_traffic_uses_commodity(self, world):
        """TR-CPS asymmetry: Purdue's Google traffic uses TransitA..."""
        path = world.router.resolve("purdue-pl", "gdrive-frontend")
        assert any(n.startswith("transita") for n in path.nodes)
        assert AS_NUMBERS["internet2"] not in path.as_sequence

    def test_umich_commercial_traffic_uses_internet2(self, world):
        """...while UMich's rides Internet2's commercial peering."""
        path = world.router.resolve("umich-pl", "gdrive-frontend")
        assert AS_NUMBERS["internet2"] in path.as_sequence
        assert not any(n.startswith("transita") for n in path.nodes)

    def test_purdue_research_traffic_uses_internet2(self, world):
        path = world.router.resolve("purdue-pl", "ualberta-dtn")
        assert AS_NUMBERS["internet2"] in path.as_sequence
        assert AS_NUMBERS["canarie"] in path.as_sequence

    def test_ucla_bottleneck_is_last_mile(self, world):
        for dst in ["gdrive-frontend", "dropbox-frontend", "ualberta-dtn"]:
            path = world.router.resolve("ucla-pl", dst)
            assert bps_to_mbps(path.bottleneck_bps) == pytest.approx(1.35)

    def test_geo_dns_resolves_provider_endpoints(self, world):
        gd = world.provider("gdrive")
        assert gd.frontend_for(world.dns, "ubc-pl") == "gdrive-frontend"


class TestTracerouteFigures:
    def test_fig5_ubc_trace_shape(self, world):
        """Fig. 5: campus hops, BCNET, vncv1rtr2, pacificwave, Google."""
        hops = traceroute(world.router, "ubc-pl", "gdrive-frontend",
                          rng=np.random.default_rng(1))
        names = [h.hostname for h in hops]
        assert "vncv1rtr2.canarie.ca" in names
        assert any(n and "pacificwave" in n for n in names if n)
        assert names[-1] == "sea15s01-in-f138.1e100.net"
        # every hop on the UBC path responds (Fig. 5 has no stars)
        assert all(h.responded for h in hops)

    def test_fig6_ualberta_trace_shape(self, world):
        """Fig. 6: firewall, hidden hop, cybera, edmn/vncv, silent peering."""
        hops = traceroute(world.router, "ualberta-dtn", "gdrive-frontend",
                          rng=np.random.default_rng(1))
        names = [h.hostname for h in hops]
        assert names[0] == "ww-fw.cs.ualberta.ca"
        assert None in names  # the hidden hops render as * * *
        assert "uofa-p-1-edm.cybera.ca" in names
        assert "edmn1rtr2.canarie.ca" in names
        assert "vncv1rtr2.canarie.ca" in names
        assert not any(n and "pacificwave" in n for n in names if n)
        assert names[-1] == "sea15s01-in-f138.1e100.net"

    def test_trace_formatting_matches_paper(self, world):
        hops = traceroute(world.router, "ubc-pl", "gdrive-frontend",
                          rng=np.random.default_rng(1))
        text = format_traceroute(hops, "www.googleapis.com", "216.58.216.138")
        assert text.startswith("traceroute to www.googleapis.com (216.58.216.138)")
        assert "vncv1rtr2.canarie.ca (199.212.24.1)" in text


class TestGeoRegistry:
    def test_registry_covers_all_nodes(self, world):
        reg = build_geo_registry()
        for node in world.topology.nodes.values():
            assert reg.lookup(node.address) is not None, f"{node.name} unlocated"

    def test_paper_geolocations(self):
        reg = build_geo_registry()
        assert reg.site_of("216.58.216.138").name == "gdrive-dc"     # Mountain View
        assert reg.site_of("108.160.166.62").name == "dropbox-dc"    # Ashburn
        assert reg.site_of("134.170.108.26").name == "onedrive-dc"   # Seattle
        assert reg.site_of("142.103.78.10").name == "ubc"

    def test_detour_is_geographic_backtrack(self):
        """Fig. 3: UBC -> UAlberta -> Mountain View doubles the distance."""
        from repro.geo import haversine_km, site

        direct = haversine_km(site("ubc").location, site("gdrive-dc").location)
        via = (haversine_km(site("ubc").location, site("ualberta").location)
               + haversine_km(site("ualberta").location, site("gdrive-dc").location))
        assert via > 1.8 * direct


class TestCalibration:
    """Effective path rates against DESIGN.md Sec. 6 targets (no noise)."""

    @pytest.mark.parametrize("client,provider,lo,hi", [
        ("ubc", "gdrive", 75, 100),       # paper 86.92 s
        ("ubc", "dropbox", 52, 75),       # ~60 s
        ("ubc", "onedrive", 20, 32),      # ~25 s
        ("purdue", "dropbox", 150, 200),  # 177.89 s
        ("umich", "gdrive", 20, 32),      # ~25 s
        ("umich", "dropbox", 58, 80),     # ~68 s
        ("umich", "onedrive", 32, 48),    # ~39 s
        ("ualberta", "gdrive", 14, 22),   # ~17 s
        ("ualberta", "dropbox", 52, 75),  # ~60 s
        ("ualberta", "onedrive", 20, 32), # ~24 s
    ])
    def test_direct_upload_100mb(self, client, provider, lo, hi):
        from repro.core import PlanExecutor, TransferPlan, DirectRoute
        from repro.transfer import FileSpec

        w = build_case_study(seed=0, cross_traffic=False)
        result = PlanExecutor(w).run(
            TransferPlan(client, provider, FileSpec("t", int(mb(100))), DirectRoute()))
        assert lo < result.total_s < hi, f"{client}->{provider}: {result.total_s:.1f}s"

    def test_rsync_hop_calibration(self):
        """UBC->UAlberta ~19 s, UBC->UMich ~105 s for 100 MB (Fig. 2)."""
        from repro.net import NetworkEngine
        from repro.transfer import FileSpec, RsyncSession

        w = build_case_study(seed=0, cross_traffic=False)

        def push(src, dst):
            session = RsyncSession(w.engine, w.router, w.tcp)

            def proc():
                start = w.sim.now
                yield from session.push(src, dst, FileSpec("t", int(mb(100))))
                return w.sim.now - start

            p = w.sim.process(proc())
            w.sim.run_until_triggered(p.done, horizon=1e6)
            return p.result

        assert 15 < push("ubc-pl", "ualberta-dtn") < 24
        assert 90 < push("ubc-pl", "umich-pl") < 125

    def test_with_overrides_changes_one_knob(self):
        params = DEFAULT_PARAMS.with_overrides(pacificwave_policer_bps=50e6)
        w = build_case_study(seed=0, params=params, cross_traffic=False)
        path = w.router.resolve("ubc-pl", "gdrive-frontend")
        assert path.bottleneck_bps == pytest.approx(45e6)  # now the access link

    def test_world_factory_passes_seed(self):
        factory = world_factory(cross_traffic=False)
        assert factory(7).seed == 7
