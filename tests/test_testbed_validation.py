"""Calibration validation: the testbed stays true to the paper targets."""

import pytest

from repro.cli import main
from repro.testbed import (
    DEFAULT_PARAMS,
    CalibrationCheck,
    render_validation,
    validate_calibration,
)
from repro.units import mbps


class TestValidation:
    @pytest.fixture(scope="class")
    def checks(self):
        return validate_calibration(size_mb=100)

    def test_all_calibrated_paths_within_tolerance(self, checks):
        drifted = [c for c in checks if not c.ok(0.35)]
        assert not drifted, render_validation(checks)

    def test_covers_all_clean_paths(self, checks):
        pairs = {(c.src, c.dst) for c in checks}
        assert ("ubc", "gdrive") in pairs
        assert ("ubc", "ualberta") in pairs
        assert ("purdue", "umich") in pairs
        assert len(checks) == 14

    def test_smaller_sizes_within_looser_band(self):
        """Targets scale linearly with size; the fixed overheads make
        small transfers relatively slower, so a 10 MB check needs a
        looser tolerance but must still be in the ballpark."""
        checks = validate_calibration(size_mb=10)
        for c in checks:
            assert 0.4 < c.ratio < 2.2, c.render()

    def test_detects_a_detuned_world(self):
        bad = DEFAULT_PARAMS.with_overrides(canarie_google_bps=mbps(5))
        checks = validate_calibration(params=bad, size_mb=100)
        broken = {(c.src, c.dst) for c in checks if not c.ok(0.35)}
        assert ("ualberta", "gdrive") in broken
        # unrelated paths untouched
        ok = {(c.src, c.dst) for c in checks if c.ok(0.35)}
        assert ("ubc", "dropbox") in ok

    def test_render(self, checks):
        text = render_validation(checks)
        assert "calibration validation" in text
        assert "all paths within tolerance" in text

    def test_render_reports_drift(self):
        checks = [CalibrationCheck("api", "a", "b", 100.0, 300.0)]
        text = render_validation(checks)
        assert "DRIFTED" in text and "1 path(s) drifted" in text


class TestValidateCli:
    def test_cli_exit_zero_when_calibrated(self, capsys):
        assert main(["validate", "--size-mb", "30"]) == 0
        out = capsys.readouterr().out
        assert "calibration validation" in out
