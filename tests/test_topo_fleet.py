"""Broker fleets and campaign cells on generated (repro.topo) worlds.

Pins the integration seams: weighted site sampling, fleet determinism on
a generated world, topo-carrying cell identity (the world is referenced
by content hash), and pooled-vs-serial byte identity with a topo spec
riding through the worker-pool pickle boundary.
"""

import json

import pytest

from repro.broker import BrokerSweepSpec, FleetCell, run_fleet
from repro.campaign import CampaignRunner, PoolConfig
from repro.errors import BrokerError, CampaignError, MeasurementError
from repro.topo import generate, preset_spec
from repro.workloads import sample_sites

pytestmark = [pytest.mark.topo, pytest.mark.broker, pytest.mark.campaign]

SMOKE = preset_spec("smoke", seed=0)
GRAPH = generate(SMOKE)
SITES = sample_sites(GRAPH.populations, 2, seed=0)

FLEET_KW = dict(sites=SITES, provider="gdrive", n_uploads_per_site=3,
                mean_interarrival_s=60.0, mean_size_mb=10.0,
                cross_traffic=False)


class TestSampleSites:
    def test_deterministic_and_ordered(self):
        again = sample_sites(GRAPH.populations, 2, seed=0)
        assert again == SITES
        order = [name for name, _ in GRAPH.populations]
        assert sorted(SITES, key=order.index) == list(SITES)

    def test_seed_changes_the_draw(self):
        draws = {sample_sites(GRAPH.populations, 2, seed=s) for s in range(8)}
        assert len(draws) > 1

    def test_validates_inputs(self):
        with pytest.raises(MeasurementError):
            sample_sites(GRAPH.populations, 0)
        with pytest.raises(MeasurementError):
            sample_sites(GRAPH.populations, len(GRAPH.populations) + 1)
        with pytest.raises(MeasurementError):
            sample_sites((("a", 1.0), ("a", 2.0)), 1)
        with pytest.raises(MeasurementError):
            sample_sites((("a", 0.0),), 1)


class TestFleetOnGeneratedWorld:
    def test_direct_fleet_is_deterministic(self):
        a = run_fleet(0, mode="direct", topo=SMOKE, **FLEET_KW)
        b = run_fleet(0, mode="direct", topo=SMOKE, **FLEET_KW)
        assert json.dumps(a.to_dict(), sort_keys=True) == \
            json.dumps(b.to_dict(), sort_keys=True)
        assert len(a.records) == 2 * 3

    def test_unknown_site_is_rejected_with_context(self):
        with pytest.raises(BrokerError, match="not in the world's host map"):
            run_fleet(0, mode="direct", topo=SMOKE,
                      **{**FLEET_KW, "sites": ("atlantis",)})

    def test_route_cache_dir_is_honored(self, tmp_path):
        a = run_fleet(0, mode="direct", topo=SMOKE,
                      cache_dir=str(tmp_path), **FLEET_KW)
        assert list(tmp_path.glob("routes-*.npz"))
        b = run_fleet(0, mode="direct", topo=SMOKE,
                      cache_dir=str(tmp_path), **FLEET_KW)
        assert a.to_dict() == b.to_dict()


class TestTopoCellIdentity:
    def test_identity_round_trip(self):
        cell = FleetCell(mode="direct", topo=SMOKE, **FLEET_KW)
        clone = FleetCell.from_identity(json.loads(json.dumps(cell.identity())))
        assert clone == cell and clone.key == cell.key
        assert clone.topo is not None
        assert clone.topo.content_hash() == SMOKE.content_hash()

    def test_identity_references_world_by_content_hash(self):
        ident = FleetCell(mode="direct", topo=SMOKE, **FLEET_KW).identity()
        assert ident["topo"]["hash"] == SMOKE.content_hash()
        tampered = json.loads(json.dumps(ident))
        tampered["topo"]["hash"] = "0" * 64
        with pytest.raises(CampaignError):
            FleetCell.from_identity(tampered)

    def test_cells_without_topo_keep_their_pre_topo_identity(self):
        ident = FleetCell(mode="direct", **{**FLEET_KW, "sites": ("ubc",)}
                          ).identity()
        assert "topo" not in ident

    def test_label_distinguishes_worlds(self):
        on_topo = FleetCell(mode="direct", topo=SMOKE, **FLEET_KW)
        on_paper = FleetCell(mode="direct",
                             **{**FLEET_KW, "sites": ("ubc",)})
        assert f"@{SMOKE.content_hash()[:12]}" in on_topo.workload_label
        assert "@" not in on_paper.workload_label


class TestPooledSweep:
    def test_jobs4_matches_serial_byte_for_byte(self):
        spec = BrokerSweepSpec(sites=SITES, modes=("direct", "broker"),
                               n_uploads_per_site=2, mean_interarrival_s=60.0,
                               mean_size_mb=10.0, seeds=(0,),
                               cross_traffic=False, topo=SMOKE)
        serial = CampaignRunner(spec).run()
        pooled = CampaignRunner(spec, pool=PoolConfig(jobs=4)).run()
        assert [r.measurement.all_durations_s for r in serial.records] == \
            [r.measurement.all_durations_s for r in pooled.records]
        assert serial.errors == 0 and pooled.errors == 0
