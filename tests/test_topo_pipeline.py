"""repro.topo: specs, the generator, compiled arrays, the route cache.

The invariants pinned here are the subsystem's contract (see
``docs/TOPOLOGY.md``):

* a spec's content hash is stable and names the world;
* generation and compilation are pure functions of the spec — two
  *processes* agree on every compiled byte (``content_digest``);
* ITDK export → ingest reproduces the exact compiled arrays;
* the on-disk route cache hits when warm, recomputes when absent, and
  survives (counts, ignores, overwrites) corrupt entries.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.errors import TopoError, TopologyError
from repro.net import Node, NodeKind, Topology
from repro.testbed import build_geo_registry, case_study_topo_spec
from repro.topo import (
    CompiledTopology,
    PRESETS,
    RouteCache,
    TopoInstrumentation,
    TopoSpec,
    build_skeleton,
    compile_graph,
    compile_spec,
    export_itdk,
    generate,
    ingest_itdk,
    materialize,
    preset_spec,
)
from repro.topo.compiled import ARRAY_FIELDS

pytestmark = pytest.mark.topo

SMOKE = preset_spec("smoke", seed=0)


class TestSpec:
    def test_content_hash_stable_and_seed_sensitive(self):
        assert SMOKE.content_hash() == preset_spec("smoke", seed=0).content_hash()
        assert SMOKE.content_hash() != preset_spec("smoke", seed=1).content_hash()
        assert SMOKE.tag == f"w{SMOKE.content_hash()[:6]}"

    def test_json_round_trip(self):
        clone = TopoSpec.from_json(SMOKE.to_json())
        assert clone == SMOKE
        assert clone.content_hash() == SMOKE.content_hash()

    def test_rejects_unknown_preset_and_bad_source(self):
        with pytest.raises(TopoError):
            preset_spec("galaxy")
        with pytest.raises(TopoError):
            TopoSpec(name="x", source="telepathic")

    def test_presets_cover_the_scale_ladder(self):
        assert set(PRESETS) == {"smoke", "metro", "internet"}
        stats = generate(preset_spec("internet", seed=7)).stats()
        assert stats["ases"] >= 1000 and stats["sites"] >= 2000


class TestGenerator:
    def test_deterministic(self):
        assert generate(SMOKE) == generate(SMOKE)

    def test_seed_changes_the_graph(self):
        other = generate(preset_spec("smoke", seed=1))
        assert generate(SMOKE) != other

    def test_graph_shape(self):
        g = generate(SMOKE)
        stats = g.stats()
        assert stats["dtns"] == 1 and stats["providers"] == 2
        assert stats["hosts"] > 0 and stats["links"] >= stats["nodes"] - 1


class TestCompiled:
    def test_digest_identical_across_processes(self, tmp_path):
        compiled = compile_spec(SMOKE, routes=True)
        src_dir = Path(__file__).resolve().parent.parent / "src"
        script = (
            "from repro.topo import compile_spec, preset_spec\n"
            "spec = preset_spec('smoke', seed=0)\n"
            "print(compile_spec(spec, routes=True).content_digest())\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": str(src_dir), "PATH": "/usr/bin:/bin"},
        )
        assert proc.stdout.strip() == compiled.content_digest()

    def test_save_load_round_trip(self, tmp_path):
        compiled = compile_spec(SMOKE, routes=True)
        path = str(tmp_path / "smoke.npz")
        compiled.save(path)
        clone = CompiledTopology.load(path)
        assert clone.content_digest() == compiled.content_digest()
        assert clone.describe() == compiled.describe()

    def test_to_graph_is_lossless(self):
        compiled = compile_spec(SMOKE, routes=False)
        assert compiled.to_graph() == generate(SMOKE)

    def test_routes_off_means_no_routes(self):
        assert compile_spec(SMOKE, routes=False).n_routes == 0
        assert compile_spec(SMOKE, routes=True).n_routes > 0

    def test_skeleton_carries_no_simulator(self):
        topo, as_graph, policy = build_skeleton(generate(SMOKE))
        assert len(topo.nodes) == generate(SMOKE).stats()["nodes"]
        assert as_graph is not None and policy is not None


class TestItdkRoundTrip:
    def test_reingested_arrays_are_byte_identical(self, tmp_path):
        graph = generate(SMOKE)
        files = export_itdk(graph, str(tmp_path))
        assert all(Path(f).exists() for f in files)
        spec2 = ingest_itdk(str(tmp_path), name="back")
        graph2 = generate(spec2)
        a = compile_graph(graph, "a", "synthetic", "0" * 64, "wa")
        b = compile_graph(graph2, "b", "explicit", "1" * 64, "wb")
        for field in ARRAY_FIELDS:
            x, y = a[field], b[field]
            assert x.dtype == y.dtype and x.shape == y.shape, field
            assert x.tobytes() == y.tobytes(), field

    def test_ingest_rejects_missing_dir(self, tmp_path):
        with pytest.raises(TopoError):
            ingest_itdk(str(tmp_path / "nope"), name="x")


class TestRouteCache:
    def test_absent_then_hit(self, tmp_path):
        cold = compile_spec(SMOKE, cache_dir=str(tmp_path))
        warm = compile_spec(SMOKE, cache_dir=str(tmp_path))
        cache = RouteCache(str(tmp_path))
        assert cache.load(SMOKE.content_hash()) is not None
        assert cache.hits == 1
        assert warm.content_digest() == cold.content_digest()

    def test_counters_reach_the_metrics_registry(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        obs = TopoInstrumentation(metrics=MetricsRegistry())
        compile_spec(SMOKE, cache_dir=str(tmp_path), instrumentation=obs)
        compile_spec(SMOKE, cache_dir=str(tmp_path), instrumentation=obs)
        assert obs.cache_misses.value() == 1.0
        assert obs.cache_hits.value() == 1.0
        assert obs.cache_corrupt.value() == 0.0

    def test_corrupt_payload_is_recomputed_and_healed(self, tmp_path):
        cold = compile_spec(SMOKE, cache_dir=str(tmp_path))
        key = SMOKE.content_hash()
        cache = RouteCache(str(tmp_path))
        Path(cache.payload_path(key)).write_bytes(b"not an npz")
        again = compile_spec(SMOKE, cache_dir=str(tmp_path))
        assert again.content_digest() == cold.content_digest()
        healed = RouteCache(str(tmp_path))
        assert healed.load(key) is not None and healed.hits == 1

    def test_corrupt_sidecar_version_is_rejected(self, tmp_path):
        compile_spec(SMOKE, cache_dir=str(tmp_path))
        key = SMOKE.content_hash()
        cache = RouteCache(str(tmp_path))
        sidecar = Path(cache.sidecar_path(key))
        doc = json.loads(sidecar.read_text())
        doc["version"] = 999
        sidecar.write_text(json.dumps(doc))
        fresh = RouteCache(str(tmp_path))
        assert fresh.load(key) is None and fresh.corrupt == 1

    def test_rejects_non_hex_key(self, tmp_path):
        with pytest.raises(TopoError):
            RouteCache(str(tmp_path)).payload_path("../escape")


class TestMaterialize:
    def test_deterministic_world(self):
        compiled = compile_spec(SMOKE, routes=True)
        w1 = materialize(compiled, seed=3)
        w2 = materialize(compiled, seed=3)
        assert sorted(w1.hosts) == sorted(w2.hosts)
        caps1 = {name: link.capacity_bps for name, link in w1.topology.links.items()}
        caps2 = {name: link.capacity_bps for name, link in w2.topology.links.items()}
        assert caps1 == caps2
        assert len(w1.topology.nodes) == compiled.n_nodes

    def test_case_study_spec_flows_through_the_same_path(self):
        spec = case_study_topo_spec()
        assert spec.source == "explicit"
        assert spec.content_hash() == case_study_topo_spec().content_hash()
        compiled = compile_spec(spec, routes=True)
        world = materialize(compiled, seed=0)
        assert set(world.hosts) == {"ubc", "purdue", "ucla", "umich", "ualberta"}


class TestCli:
    def test_generate_inspect_compile_export_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = str(tmp_path / "w.topo.json")
        assert main(["topo", "generate", "--preset", "smoke", "--seed", "0",
                     "-o", spec_path]) == 0
        assert main(["topo", "inspect", spec_path]) == 0
        out = capsys.readouterr().out
        assert SMOKE.content_hash()[:16] in out

        npz_path = str(tmp_path / "w.npz")
        assert main(["topo", "compile", spec_path, "-o", npz_path,
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        assert main(["topo", "inspect", npz_path]) == 0
        out = capsys.readouterr().out
        assert "routes" in out

        snap = str(tmp_path / "snap")
        assert main(["topo", "export", spec_path, "-o", snap]) == 0
        back_path = str(tmp_path / "back.topo.json")
        assert main(["topo", "generate", "--from-itdk", snap,
                     "-o", back_path]) == 0
        back = TopoSpec.from_json(Path(back_path).read_text())
        assert back.source == "explicit"
        assert generate(back).stats() == generate(SMOKE).stats()


class TestSiteValidation:
    def test_unknown_site_gets_nearest_match_hint(self):
        build_geo_registry()
        topo = Topology()
        with pytest.raises(TopologyError, match="did you mean 'ubc'"):
            topo.add_node(Node("n1", NodeKind.HOST, 1, "10.0.0.1",
                               site_name="ubcc"))
