"""DTN staging areas and the pipelined relay coroutine."""

import pytest

from repro.errors import TransferError
from repro.sim import Simulator
from repro.transfer import DataTransferNode, FileSpec, pipelined_relay
from repro.units import mb


class TestStaging:
    def test_stage_and_delete(self):
        dtn = DataTransferNode("ualberta-dtn")
        spec = FileSpec("f.bin", int(mb(10)))
        dtn.stage(spec)
        assert dtn.has("f.bin")
        assert dtn.used_bytes == mb(10)
        assert dtn.delete("f.bin")
        assert not dtn.has("f.bin")
        assert not dtn.delete("f.bin")  # second delete reports absence

    def test_paper_protocol_clears_before_each_run(self):
        dtn = DataTransferNode("dtn")
        for i in range(3):
            dtn.stage(FileSpec(f"f{i}", 1000))
        dtn.clear()
        assert dtn.staged_names() == []
        assert dtn.used_bytes == 0

    def test_capacity_enforced(self):
        dtn = DataTransferNode("dtn", capacity_bytes=mb(15))
        dtn.stage(FileSpec("a", int(mb(10))))
        with pytest.raises(TransferError, match="capacity"):
            dtn.stage(FileSpec("b", int(mb(10))))

    def test_restage_same_name_replaces(self):
        dtn = DataTransferNode("dtn", capacity_bytes=mb(15))
        dtn.stage(FileSpec("a", int(mb(10))))
        dtn.stage(FileSpec("a", int(mb(12))))  # replacement fits
        assert dtn.used_bytes == mb(12)

    def test_digest_available_for_staged(self):
        dtn = DataTransferNode("dtn")
        spec = FileSpec("a", 4096, seed=1)
        dtn.stage(spec)
        assert dtn.digest_of("a") == spec.content_digest()
        with pytest.raises(TransferError):
            dtn.digest_of("missing")


class TestPipelinedRelay:
    @staticmethod
    def _leg(sim, seconds_per_byte):
        def run(chunk_bytes, index):
            yield chunk_bytes * seconds_per_byte
        return run

    def test_overlap_beats_store_and_forward(self):
        sim = Simulator()
        leg_in = self._leg(sim, 1e-6)   # 1 MB/s
        leg_out = self._leg(sim, 1e-6)

        def proc():
            elapsed = yield from pipelined_relay(
                sim, total_bytes=mb(10), leg_in=leg_in, leg_out=leg_out,
                chunk_bytes=mb(1),
            )
            return elapsed

        p = sim.process(proc())
        sim.run()
        store_and_forward = 10.0 + 10.0
        pipelined = p.result
        # ~ max(t1, t2) + one chunk on the slower leg
        assert pipelined == pytest.approx(11.0, rel=0.01)
        assert pipelined < store_and_forward * 0.6

    def test_slow_egress_dominates(self):
        sim = Simulator()

        def proc():
            elapsed = yield from pipelined_relay(
                sim, total_bytes=mb(8),
                leg_in=self._leg(sim, 1e-6),    # 8 s total
                leg_out=self._leg(sim, 3e-6),   # 24 s total
                chunk_bytes=mb(1),
            )
            return elapsed

        p = sim.process(proc())
        sim.run()
        assert p.result == pytest.approx(25.0, rel=0.02)  # 1 s fill + 24 s drain

    def test_buffer_bound_stalls_producer(self):
        sim = Simulator()
        in_times = []

        def leg_in(chunk_bytes, index):
            yield chunk_bytes * 1e-7  # fast ingest: 0.1 s per 1 MB chunk
            in_times.append(sim.now)

        def proc():
            elapsed = yield from pipelined_relay(
                sim, total_bytes=mb(6),
                leg_in=leg_in,
                leg_out=self._leg(sim, 1e-6),   # slow egress
                chunk_bytes=mb(1), max_buffered_chunks=2,
            )
            return elapsed

        p = sim.process(proc())
        sim.run()
        # with an unbounded buffer all ingests would finish by 0.6 s;
        # bounded at 2 the later chunks wait for egress slots (1 s each)
        assert in_times[-1] > 3.0
        assert p.result == pytest.approx(6.0 + 0.1 + 0.1, abs=0.3)

    def test_tail_chunk_handled(self):
        sim = Simulator()

        def proc():
            return (yield from pipelined_relay(
                sim, total_bytes=mb(2.5),
                leg_in=self._leg(sim, 1e-6),
                leg_out=self._leg(sim, 1e-6),
                chunk_bytes=mb(1),
            ))

        p = sim.process(proc())
        sim.run()
        assert p.result > 0

    def test_invalid_parameters(self):
        sim = Simulator()

        def bad(**kw):
            def proc():
                yield from pipelined_relay(sim, **kw)

            p = sim.process(proc())
            sim.run()
            return p.error

        err = bad(total_bytes=0, leg_in=self._leg(sim, 1), leg_out=self._leg(sim, 1))
        assert isinstance(err, TransferError)
        err = bad(total_bytes=10, leg_in=self._leg(sim, 1), leg_out=self._leg(sim, 1),
                  chunk_bytes=0)
        assert isinstance(err, TransferError)

    def test_leg_failure_propagates(self):
        sim = Simulator()

        def failing_leg(chunk_bytes, index):
            yield 0.1
            raise ValueError("link down")

        def proc():
            yield from pipelined_relay(
                sim, total_bytes=mb(2), leg_in=failing_leg,
                leg_out=self._leg(sim, 1e-6), chunk_bytes=mb(1),
            )

        p = sim.process(proc())
        sim.run()
        assert isinstance(p.error, ValueError)
