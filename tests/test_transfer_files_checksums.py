"""File specs, generation, and checksum primitives."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TransferError
from repro.transfer import (
    FileSpec,
    RollingChecksum,
    block_signatures,
    generate_bytes,
    make_test_files,
    strong_checksum,
)
from repro.transfer.files import Entropy, PAPER_SIZES_MB
from repro.units import mb


class TestFileSpec:
    def test_paper_file_set(self):
        specs = make_test_files()
        assert [s.size_mb for s in specs] == list(PAPER_SIZES_MB)
        assert all(s.entropy is Entropy.RANDOM for s in specs)

    def test_materialize_deterministic(self):
        spec = FileSpec("f", 4096, seed=7)
        assert spec.materialize() == spec.materialize()

    def test_different_seeds_differ(self):
        a = FileSpec("a", 4096, seed=1).materialize()
        b = FileSpec("b", 4096, seed=2).materialize()
        assert a != b

    def test_materialize_size_guard(self):
        big = FileSpec("big", int(mb(100)))
        with pytest.raises(TransferError, match="cost model"):
            big.materialize()

    def test_digest_stable_for_large_files(self):
        big = FileSpec("big", int(mb(100)), seed=3)
        assert big.content_digest() == FileSpec("x", int(mb(100)), seed=3).content_digest()

    def test_zero_size_rejected(self):
        with pytest.raises(TransferError):
            FileSpec("empty", 0)

    def test_random_data_incompressible(self):
        spec = FileSpec("r", 1000, entropy=Entropy.RANDOM)
        assert spec.compressed_bytes() == 1000

    def test_compressible_classes(self):
        assert FileSpec("t", 1000, entropy=Entropy.TEXT).compressed_bytes() < 500
        assert FileSpec("z", 1000, entropy=Entropy.ZEROS).compressed_bytes() < 50

    def test_generated_entropy_actually_differs(self):
        import zlib

        rnd = generate_bytes(50_000, Entropy.RANDOM, seed=1)
        txt = generate_bytes(50_000, Entropy.TEXT, seed=1)
        zer = generate_bytes(50_000, Entropy.ZEROS)
        assert len(zlib.compress(rnd)) > 0.95 * len(rnd)   # incompressible
        assert len(zlib.compress(txt)) < 0.70 * len(txt)   # compressible
        assert len(zlib.compress(zer)) < 0.01 * len(zer)   # trivial


class TestRollingChecksum:
    def test_empty_block_rejected(self):
        with pytest.raises(ValueError):
            RollingChecksum(b"")

    def test_roll_equals_recompute(self):
        data = generate_bytes(600, seed=5)
        window = 64
        rc = RollingChecksum(data[:window])
        for i in range(window, len(data)):
            rc.roll(data[i - window], data[i])
            expected = RollingChecksum(data[i - window + 1:i + 1]).digest()
            assert rc.digest() == expected

    @given(st.binary(min_size=2, max_size=256), st.binary(min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_roll_property(self, data, extra):
        window = max(1, len(data) // 2)
        stream = data + extra
        rc = RollingChecksum(stream[:window])
        for i in range(window, len(stream)):
            rc.roll(stream[i - window], stream[i])
        assert rc.digest() == RollingChecksum(stream[-window:]).digest()

    def test_digest_is_32_bits(self):
        d = RollingChecksum(b"x" * 1000).digest()
        assert 0 <= d < 2**32


class TestStrongChecksum:
    def test_length(self):
        assert len(strong_checksum(b"abc")) == 16

    def test_sensitivity(self):
        assert strong_checksum(b"abc") != strong_checksum(b"abd")


class TestBlockSignatures:
    def test_count_excludes_partial_tail(self):
        sigs = block_signatures(b"x" * 2500, block_size=1000)
        assert [s.index for s in sigs] == [0, 1]

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            block_signatures(b"x", 0)

    def test_signatures_match_blocks(self):
        data = generate_bytes(4096, seed=9)
        sigs = block_signatures(data, 1024)
        for s in sigs:
            block = data[s.index * 1024:(s.index + 1) * 1024]
            assert s.weak == RollingChecksum(block).digest()
            assert s.strong == strong_checksum(block)
