"""rsync: the real delta algorithm plus the network cost model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import NetworkEngine
from repro.sim import Simulator
from repro.transfer import FileSpec, RsyncSession, apply_delta, compute_delta, generate_bytes
from repro.transfer.rsync import DEFAULT_BLOCK_SIZE, FILE_LIST_BYTES
from repro.units import mb, mbps


class TestDeltaAlgorithm:
    def test_identical_files_all_copies(self):
        data = generate_bytes(8192, seed=1)
        delta = compute_delta(data, data, block_size=1024)
        assert delta.literal_bytes == 0
        assert delta.matched_bytes == 8192
        assert apply_delta(data, delta) == data

    def test_empty_basis_all_literals(self):
        new = generate_bytes(5000, seed=2)
        delta = compute_delta(b"", new, block_size=1024)
        assert delta.literal_bytes == 5000
        assert delta.matched_bytes == 0
        assert apply_delta(b"", delta) == new

    def test_random_new_file_gets_no_matches(self):
        """The paper's protocol: fresh random file, no delta advantage."""
        old = generate_bytes(20_000, seed=3)
        new = generate_bytes(20_000, seed=4)  # unrelated content
        delta = compute_delta(old, new, block_size=1024)
        assert delta.matched_bytes == 0
        assert delta.literal_bytes == 20_000

    def test_insertion_in_middle(self):
        old = generate_bytes(8192, seed=5)
        new = old[:4096] + b"INSERTED!" + old[4096:]
        delta = compute_delta(old, new, block_size=512)
        assert apply_delta(old, delta) == new
        # most of the file should be matched, literals only around the insert
        assert delta.matched_bytes >= 7000
        assert delta.literal_bytes <= 1200

    def test_tail_shorter_than_block_is_literal(self):
        old = generate_bytes(2048, seed=6)
        new = old + b"tail"
        delta = compute_delta(old, new, block_size=1024)
        assert apply_delta(old, delta) == new
        assert delta.literal_bytes == 4

    def test_reordered_blocks_still_match(self):
        a, b = generate_bytes(1024, seed=7), generate_bytes(1024, seed=8)
        old = a + b
        new = b + a
        delta = compute_delta(old, new, block_size=1024)
        assert apply_delta(old, delta) == new
        assert delta.matched_bytes == 2048

    def test_bad_block_size(self):
        from repro.errors import TransferError

        with pytest.raises(TransferError):
            compute_delta(b"a", b"b", block_size=0)

    def test_corrupt_delta_detected(self):
        from repro.errors import TransferError
        from repro.transfer.rsync import RsyncDelta

        with pytest.raises(TransferError):
            apply_delta(b"short", RsyncDelta((("copy", 5),), 1024))

    @given(
        old=st.binary(min_size=0, max_size=4096),
        new=st.binary(min_size=0, max_size=4096),
        block=st.sampled_from([64, 128, 512, 700]),
    )
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_property(self, old, new, block):
        """apply(old, delta(old, new)) == new, always."""
        delta = compute_delta(old, new, block_size=block)
        assert apply_delta(old, delta) == new

    @given(data=st.binary(min_size=1, max_size=4096), block=st.sampled_from([64, 256]))
    @settings(max_examples=100, deadline=None)
    def test_self_delta_has_no_literals_beyond_tail(self, data, block):
        delta = compute_delta(data, data, block_size=block)
        assert delta.literal_bytes == len(data) % block


class TestRsyncPlan:
    def _session(self):
        sim = Simulator()
        # plan() needs no network; engine/router unused
        return RsyncSession.__new__(RsyncSession), sim

    def test_fresh_file_wire_bytes_near_size(self, mini_world):
        topo, _, _, router = mini_world
        sim = Simulator()
        session = RsyncSession(NetworkEngine(sim, topo), router)
        spec = FileSpec("f", int(mb(10)))
        stats = session.plan(spec, basis=None)
        assert stats.literal_bytes == mb(10)
        assert stats.signature_bytes == 0
        assert mb(10) < stats.wire_bytes < mb(10) * 1.01
        assert stats.speedup < 1.0  # overhead makes it slightly worse

    def test_identical_basis_wire_tiny(self, mini_world):
        topo, _, _, router = mini_world
        sim = Simulator()
        session = RsyncSession(NetworkEngine(sim, topo), router)
        spec = FileSpec("f", 64 * 1024, seed=3)
        stats = session.plan(spec, basis=spec.materialize())
        assert stats.matched_bytes == 64 * 1024
        assert stats.wire_bytes < 4096
        assert stats.speedup > 10


class TestCompression:
    """The paper's methodology point: random payloads defeat rsync -z."""

    def _sessions(self, mini_world):
        topo, _, _, router = mini_world
        sim = Simulator()
        engine = NetworkEngine(sim, topo)
        return (RsyncSession(engine, router, compress=False),
                RsyncSession(engine, router, compress=True))

    def test_random_data_resists_compression(self, mini_world):
        from repro.transfer.files import Entropy

        plain, compressed = self._sessions(mini_world)
        spec = FileSpec("r.bin", int(mb(10)), entropy=Entropy.RANDOM)
        assert compressed.plan(spec).wire_bytes == pytest.approx(
            plain.plan(spec).wire_bytes)

    def test_text_data_shrinks_on_the_wire(self, mini_world):
        from repro.transfer.files import Entropy

        plain, compressed = self._sessions(mini_world)
        spec = FileSpec("t.txt", int(mb(10)), entropy=Entropy.TEXT)
        assert compressed.plan(spec).wire_bytes < 0.5 * plain.plan(spec).wire_bytes
        assert compressed.plan(spec).speedup > 2.0


class TestRsyncSession:
    def test_push_duration_dominated_by_bottleneck(self, mini_world):
        topo, _, _, router = mini_world
        sim = Simulator()
        engine = NetworkEngine(sim, topo)
        session = RsyncSession(engine, router)
        spec = FileSpec("f", int(mb(10)))

        def proc():
            result, stats = yield from session.push("hostA", "hostB", spec)
            return sim.now, result, stats

        p = sim.process(proc())
        sim.run()
        total, result, stats = p.result
        # bottleneck hostA->hostB is 100 Mbps links: 10 MB ~ 0.8 s + handshakes
        assert 0.8 < total < 1.5
        assert stats.wire_bytes >= mb(10)

    def test_push_respects_contention(self, mini_world):
        topo, _, _, router = mini_world
        sim = Simulator()
        engine = NetworkEngine(sim, topo)
        session = RsyncSession(engine, router)
        spec = FileSpec("f", int(mb(10)))
        # saturate the r1--r2 link with a competing flow
        d = topo.link("r1--r2").direction_from("r1")
        engine.start_transfer([d], mb(1000))

        def proc():
            result, stats = yield from session.push("hostA", "hostB", spec)
            return sim.now

        p = sim.process(proc())
        sim.run(until=100)
        assert p.result > 1.5  # roughly halved bandwidth
