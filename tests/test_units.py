"""Unit-conversion helpers: exactness and error handling."""

import math

import pytest

from repro import units


class TestSizes:
    def test_decimal_sizes(self):
        assert units.mb(10) == 10_000_000
        assert units.mb(0.5) == 500_000
        assert units.KB == 1000 and units.MB == 10**6 and units.GB == 10**9

    def test_binary_sizes(self):
        assert units.mib(8) == 8 * 2**20
        assert units.KiB == 1024 and units.MiB == 2**20 and units.GiB == 2**30

    def test_bytes_to_mb_roundtrip(self):
        assert units.bytes_to_mb(units.mb(37)) == pytest.approx(37)


class TestRates:
    def test_mbps(self):
        assert units.mbps(10) == 10e6
        assert units.gbps(1) == 1e9
        assert units.bps_to_mbps(units.mbps(42)) == pytest.approx(42)

    def test_bytes_per_sec(self):
        assert units.bytes_per_sec(units.mbps(8)) == pytest.approx(1e6)

    def test_transfer_seconds(self):
        # 100 MB at 10 Mbps = 80 seconds
        assert units.transfer_seconds(units.mb(100), units.mbps(10)) == pytest.approx(80.0)

    def test_throughput_inverse_of_transfer(self):
        t = units.transfer_seconds(units.mb(60), units.mbps(13))
        assert units.throughput_bps(units.mb(60), t) == pytest.approx(units.mbps(13))

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            units.transfer_seconds(1000, 0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            units.throughput_bps(1000, 0)


class TestTime:
    def test_ms(self):
        assert units.ms(25) == pytest.approx(0.025)
        assert units.seconds_to_ms(0.1) == pytest.approx(100)


class TestPropagation:
    def test_fiber_slower_than_light(self):
        assert units.FIBER_PROPAGATION_KM_S < units.SPEED_OF_LIGHT_KM_S

    def test_propagation_delay_scale(self):
        # ~800 km (Vancouver-Edmonton) with stretch 1.6 ~ 6-7 ms one way
        d = units.propagation_delay_s(800)
        assert 0.004 < d < 0.010

    def test_zero_distance(self):
        assert units.propagation_delay_s(0) == 0.0

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            units.propagation_delay_s(-1)

    def test_stretch_scales_linearly(self):
        assert units.propagation_delay_s(100, stretch=3.2) == pytest.approx(
            2 * units.propagation_delay_s(100, stretch=1.6)
        )
