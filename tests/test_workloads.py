"""Workload generators: sweeps and population schedules."""

import pytest

from repro.errors import MeasurementError
from repro.sim.rng import derive_seed
from repro.workloads import (
    UploadSchedule,
    client_population_schedule,
    fleet_population_schedule,
    size_sweep,
)


class TestSizeSweep:
    def test_linear(self):
        assert size_sweep(10, 100, 4) == [10, 40, 70, 100]

    def test_log(self):
        sweep = size_sweep(1, 100, 3, log_spaced=True)
        assert sweep == pytest.approx([1, 10, 100], rel=1e-3)

    def test_validation(self):
        with pytest.raises(MeasurementError):
            size_sweep(10, 100, 1)
        with pytest.raises(MeasurementError):
            size_sweep(100, 10, 3)
        with pytest.raises(MeasurementError):
            size_sweep(0, 10, 3)


class TestPopulationSchedule:
    def test_deterministic(self):
        a = client_population_schedule("ubc", "gdrive", 10, 60.0, 20.0, seed=4)
        b = client_population_schedule("ubc", "gdrive", 10, 60.0, 20.0, seed=4)
        assert a == b
        c = client_population_schedule("ubc", "gdrive", 10, 60.0, 20.0, seed=5)
        assert a != c

    def test_arrivals_increase(self):
        sched = client_population_schedule("ubc", "gdrive", 20, 30.0, 10.0, seed=1)
        starts = [u.start_s for u in sched.uploads]
        assert starts == sorted(starts)
        assert starts[0] > 0

    def test_sizes_bounded_below(self):
        sched = client_population_schedule("ubc", "gdrive", 50, 10.0, 2.0, seed=2,
                                           min_size_mb=1.0)
        assert all(u.file.size_bytes >= 1_000_000 for u in sched.uploads)

    def test_mean_size_roughly_respected(self):
        sched = client_population_schedule("ubc", "gdrive", 300, 10.0, 20.0, seed=3)
        mean_mb = sched.total_bytes / len(sched.uploads) / 1e6
        assert 12 < mean_mb < 32

    def test_aggregates(self):
        sched = client_population_schedule("purdue", "dropbox", 5, 10.0, 10.0, seed=1)
        assert sched.duration_s == sched.uploads[-1].start_s
        assert list(sched.by_client()) == ["purdue"]
        assert len(sched.by_client()["purdue"]) == 5

    def test_validation(self):
        with pytest.raises(MeasurementError):
            client_population_schedule("ubc", "gdrive", 0, 1.0, 1.0)
        with pytest.raises(MeasurementError):
            client_population_schedule("ubc", "gdrive", 1, 0.0, 1.0)


class TestSizeDistributions:
    def test_fixed_sizes_are_exact(self):
        sched = client_population_schedule("ubc", "gdrive", 10, 30.0, 25.0,
                                           seed=1, size_dist="fixed")
        assert all(u.file.size_bytes == 25_000_000 for u in sched.uploads)

    def test_lognormal_is_the_default_and_heavy_tailed(self):
        default = client_population_schedule("ubc", "gdrive", 200, 30.0, 20.0, seed=1)
        explicit = client_population_schedule("ubc", "gdrive", 200, 30.0, 20.0,
                                              seed=1, size_dist="lognormal")
        assert default == explicit
        sizes = sorted(u.file.size_bytes for u in default.uploads)
        # heavy tail: the max dwarfs the median
        assert sizes[-1] > 4 * sizes[len(sizes) // 2]

    def test_fixed_keeps_arrival_process(self):
        a = client_population_schedule("ubc", "gdrive", 10, 30.0, 25.0, seed=1)
        b = client_population_schedule("ubc", "gdrive", 10, 30.0, 25.0,
                                       seed=1, size_dist="fixed")
        assert [u.start_s for u in a.uploads] == [u.start_s for u in b.uploads]

    def test_unknown_dist_rejected(self):
        with pytest.raises(MeasurementError):
            client_population_schedule("ubc", "gdrive", 1, 1.0, 1.0,
                                       size_dist="pareto")


class TestFleetPopulationSchedule:
    def test_deterministic(self):
        a = fleet_population_schedule(("ubc", "purdue"), "gdrive", 10, 60.0,
                                      20.0, seed=4)
        b = fleet_population_schedule(("ubc", "purdue"), "gdrive", 10, 60.0,
                                      20.0, seed=4)
        assert a == b
        c = fleet_population_schedule(("ubc", "purdue"), "gdrive", 10, 60.0,
                                      20.0, seed=5)
        assert a != c

    def test_merged_in_start_order(self):
        sched = fleet_population_schedule(("ubc", "purdue", "ucla"), "gdrive",
                                          15, 30.0, 10.0, seed=2)
        starts = [u.start_s for u in sched.uploads]
        assert starts == sorted(starts)
        assert len(sched.uploads) == 45
        assert sorted(sched.by_client()) == ["purdue", "ubc", "ucla"]

    def test_per_site_streams_match_solo_schedules(self):
        fleet = fleet_population_schedule(("ubc", "purdue"), "gdrive", 8,
                                          45.0, 15.0, seed=9)
        for site in ("ubc", "purdue"):
            solo = client_population_schedule(
                site, "gdrive", 8, 45.0, 15.0,
                seed=derive_seed(9, f"fleet:{site}"))
            assert fleet.by_client()[site] == list(solo.uploads)

    def test_site_order_does_not_change_draws(self):
        a = fleet_population_schedule(("ubc", "purdue"), "gdrive", 5, 30.0,
                                      10.0, seed=3)
        b = fleet_population_schedule(("purdue", "ubc"), "gdrive", 5, 30.0,
                                      10.0, seed=3)
        assert a == b

    def test_validation(self):
        with pytest.raises(MeasurementError):
            fleet_population_schedule((), "gdrive", 5, 30.0, 10.0)
        with pytest.raises(MeasurementError):
            fleet_population_schedule(("ubc", "ubc"), "gdrive", 5, 30.0, 10.0)
