"""Workload generators: sweeps and population schedules."""

import pytest

from repro.errors import MeasurementError
from repro.workloads import UploadSchedule, client_population_schedule, size_sweep


class TestSizeSweep:
    def test_linear(self):
        assert size_sweep(10, 100, 4) == [10, 40, 70, 100]

    def test_log(self):
        sweep = size_sweep(1, 100, 3, log_spaced=True)
        assert sweep == pytest.approx([1, 10, 100], rel=1e-3)

    def test_validation(self):
        with pytest.raises(MeasurementError):
            size_sweep(10, 100, 1)
        with pytest.raises(MeasurementError):
            size_sweep(100, 10, 3)
        with pytest.raises(MeasurementError):
            size_sweep(0, 10, 3)


class TestPopulationSchedule:
    def test_deterministic(self):
        a = client_population_schedule("ubc", "gdrive", 10, 60.0, 20.0, seed=4)
        b = client_population_schedule("ubc", "gdrive", 10, 60.0, 20.0, seed=4)
        assert a == b
        c = client_population_schedule("ubc", "gdrive", 10, 60.0, 20.0, seed=5)
        assert a != c

    def test_arrivals_increase(self):
        sched = client_population_schedule("ubc", "gdrive", 20, 30.0, 10.0, seed=1)
        starts = [u.start_s for u in sched.uploads]
        assert starts == sorted(starts)
        assert starts[0] > 0

    def test_sizes_bounded_below(self):
        sched = client_population_schedule("ubc", "gdrive", 50, 10.0, 2.0, seed=2,
                                           min_size_mb=1.0)
        assert all(u.file.size_bytes >= 1_000_000 for u in sched.uploads)

    def test_mean_size_roughly_respected(self):
        sched = client_population_schedule("ubc", "gdrive", 300, 10.0, 20.0, seed=3)
        mean_mb = sched.total_bytes / len(sched.uploads) / 1e6
        assert 12 < mean_mb < 32

    def test_aggregates(self):
        sched = client_population_schedule("purdue", "dropbox", 5, 10.0, 10.0, seed=1)
        assert sched.duration_s == sched.uploads[-1].start_s
        assert list(sched.by_client()) == ["purdue"]
        assert len(sched.by_client()["purdue"]) == 5

    def test_validation(self):
        with pytest.raises(MeasurementError):
            client_population_schedule("ubc", "gdrive", 0, 1.0, 1.0)
        with pytest.raises(MeasurementError):
            client_population_schedule("ubc", "gdrive", 1, 0.0, 1.0)
