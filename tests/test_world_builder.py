"""WorldBuilder: declarative scenario construction."""

import pytest

from repro.cloud import make_gdrive_protocol
from repro.core import DetourPlanner, DirectRoute, PlanExecutor, TransferPlan
from repro.errors import TopologyError
from repro.geo.sites import SITES, Site, SiteKind, register_site
from repro.geo.coords import GeoPoint
from repro.testbed import WorldBuilder
from repro.transfer import FileSpec
from repro.units import mb, mbps, ms


def tiny_world(seed=0):
    """Minimal two-campus world: client -> isp -> provider, plus a DTN."""
    b = WorldBuilder(seed=seed)
    b.add_site("campus-x", 40.0, -100.0, "Nowhere, KS")
    b.add_site("dtn-y", 45.0, -95.0, "Elsewhere, MN")
    b.add_site("dc-z", 38.0, -120.0, "DC Valley, CA")
    campus = b.autonomous_system("campus-x")
    dtn_as = b.autonomous_system("dtn-y")
    isp = b.autonomous_system("tiny-isp")
    cloud = b.autonomous_system("tiny-cloud")
    b.customer(isp, campus).customer(isp, dtn_as).peer(isp, cloud)
    b.router("isp-core", isp, site="dc-z")
    b.campus("campus-x", campus, access_bps=mbps(50), site="campus-x")
    b.dtn("dtn-y", dtn_as, attach_to="isp-core", uplink_bps=mbps(200), site="dtn-y")
    b.link("campus-x-border", "isp-core", mbps(1000), ms(5))
    provider = b.provider("tiny-cloud", cloud, attach_to="isp-core",
                          protocol=make_gdrive_protocol(), site="dc-z",
                          peering_bps=mbps(100))
    return b, provider


class TestRegisterSite:
    def test_idempotent_for_identical(self):
        s = Site("repeat-site", SiteKind.CLIENT, GeoPoint(1.0, 2.0), "X")
        assert register_site(s) is register_site(s) or register_site(s) == s
        assert "repeat-site" in SITES

    def test_conflicting_redefinition_rejected(self):
        register_site(Site("conflict-site", SiteKind.CLIENT, GeoPoint(1, 2), "X"))
        with pytest.raises(ValueError):
            register_site(Site("conflict-site", SiteKind.CLIENT, GeoPoint(3, 4), "Y"))


class TestBuilderConstruction:
    def test_build_produces_working_world(self):
        b, provider = tiny_world()
        world = b.build()
        result = PlanExecutor(world).run(TransferPlan(
            "campus-x", "tiny-cloud", FileSpec("f.bin", int(mb(10))), DirectRoute()))
        # 10 MB at 50 Mbit/s access = 1.6 s + overheads
        assert 1.5 < result.total_s < 4.0
        assert provider.store.exists("f.bin")

    def test_dtn_registered_and_usable(self):
        b, _ = tiny_world(seed=1)
        world = b.build()
        planner = DetourPlanner(world, runs_per_route=1, discard_runs=0)
        routes = [r.describe() for r in planner.candidate_routes("campus-x")]
        assert routes == ["direct", "via dtn-y"]
        comparison = planner.compare("campus-x", "tiny-cloud", int(mb(10)))
        # no inefficiency here: direct wins (detour doubles the ISP hops)
        assert comparison.best.route.is_direct

    def test_auto_asn_assignment_in_private_range(self):
        b = WorldBuilder()
        asn = b.autonomous_system("auto")
        assert 64512 <= asn < 65536

    def test_explicit_asn(self):
        b = WorldBuilder()
        assert b.autonomous_system("explicit", number=65001) == 65001

    def test_addresses_unique_across_ases(self):
        b, _ = tiny_world(seed=2)
        world = b.build()
        addrs = [n.address for n in world.topology.nodes.values()]
        assert len(set(addrs)) == len(addrs)

    def test_campus_requires_known_site(self):
        b = WorldBuilder()
        asn = b.autonomous_system("x")
        with pytest.raises(TopologyError, match="add_site"):
            b.campus("ghost-site-key", asn, access_bps=mbps(10))

    def test_router_in_undeclared_as_rejected(self):
        b = WorldBuilder()
        with pytest.raises(TopologyError, match="autonomous_system"):
            b.router("r", 99999)

    def test_build_only_once(self):
        b, _ = tiny_world(seed=3)
        b.build()
        with pytest.raises(TopologyError, match="only be called once"):
            b.build()

    def test_firewalled_router_is_middlebox(self):
        b = WorldBuilder()
        asn = b.autonomous_system("x")
        b.router("fw", asn, firewall_per_flow_bps=mbps(10))
        from repro.net.topology import NodeKind

        node = b.topology.node("fw")
        assert node.kind is NodeKind.MIDDLEBOX
        assert node.firewall_per_flow_bps == mbps(10)


class TestMultiPop:
    def test_add_pop_extends_frontends_and_geodns(self):
        b, provider = tiny_world(seed=4)
        cloud2_site = b.add_site("dc-east", 39.0, -77.0, "East DC")
        b.router("isp-east", b.autonomous_system("tiny-isp-east"), site="dc-east")
        # attach the new POP to the existing isp-core for simplicity
        b.add_pop(provider, b.as_graph.by_name("tiny-cloud").number,
                  attach_to="isp-core", site="dc-east")
        world = b.build()
        assert len(provider.frontend_nodes) == 2
        # client in Kansas: Cali DC (dc-z) is nearer than the east DC
        assert provider.frontend_for(world.dns, world.host_of("campus-x")) == \
            "tiny-cloud-frontend"

    def test_add_pop_foreign_provider_rejected(self):
        b, _ = tiny_world(seed=5)
        from repro.cloud import CloudProvider

        b2, other_provider = tiny_world(seed=6)
        with pytest.raises(TopologyError, match="not created by this builder"):
            b.add_pop(other_provider, 65000, attach_to="isp-core", site="dc-z")


class TestCrossTrafficAttachment:
    def test_cross_traffic_runs(self):
        b, _ = tiny_world(seed=7)
        link_name = b.topology.link_between("isp-core", "tiny-cloud-frontend").name
        b.cross_traffic(link_name, "isp-core", utilization=0.5, mean_flow_bytes=2e6)
        world = b.build()
        world.sim.run(until=120)
        assert world.sim.now >= 120  # background kept the sim alive
